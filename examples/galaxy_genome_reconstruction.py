#!/usr/bin/env python3
"""Galaxy integration: the 23-step Genome Reconstruction workflow.

Shows both halves of the paper's Galaxy story:

1. **Standalone Galaxy** — configure an instance with an admin user
   (the paper's ``admin_users`` config change), register the 23-step
   workflow, invoke it through the API with real payloads, and inspect
   the Pangolin-style lineage calls in the history.
2. **Managed by SpotVerse** — the same workload, 20 copies, run as a
   spot fleet that survives interruptions.

Run:
    python examples/galaxy_genome_reconstruction.py
"""

from repro.cloud.provider import CloudProvider
from repro.core import SpotVerse, SpotVerseConfig
from repro.galaxy import GalaxyInstance
from repro.workloads import (
    build_genome_reconstruction_workflow,
    genome_reconstruction_workload,
)


def run_standalone_galaxy() -> None:
    """Invoke the workflow on a local Galaxy instance with real tools."""
    galaxy = GalaxyInstance(admin_users=["admin@spotverse.example"])
    api_key = galaxy.api_key_for("admin@spotverse.example")

    workflow = build_genome_reconstruction_workflow(duration_hours=0.5)
    galaxy.register_workflow(api_key, workflow)
    history = galaxy.create_history(api_key, name="genome-reconstruction-run")

    print(f"Invoking {workflow.name!r} ({len(workflow)} steps) through the Galaxy API...")
    invocation = galaxy.invoke_workflow(
        api_key, workflow.name, history=history, execute_payloads=True
    )
    assert invocation.ok

    print("Lineage calls from the Pangolin steps:")
    for label in workflow.labels():
        if not label.startswith("lineage-"):
            continue
        calls = invocation.results[label].outputs["calls"]
        for call in calls:
            print(
                f"  {call.genome:14s} -> {call.lineage:10s} "
                f"(confidence {call.confidence:.2f})"
            )
    print(f"History {history.name!r} holds {len(history)} datasets.\n")


def run_managed_fleet() -> None:
    """Run the same workload as a SpotVerse-managed spot fleet."""
    provider = CloudProvider(seed=11)
    spotverse = SpotVerse(
        provider,
        SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",  # the cheapest — and flakiest
        ),
    )
    fleet = [genome_reconstruction_workload(f"galaxy-{i:02d}") for i in range(20)]
    result = spotverse.run(fleet)
    print("=== SpotVerse-managed Genome Reconstruction fleet ===")
    print(result.summary())
    worst = max(result.records, key=lambda record: record.n_interruptions)
    print(
        f"\nmost-interrupted workload: {worst.workload_id} "
        f"({worst.n_interruptions} interruptions, visited {worst.regions})"
    )
    from repro.experiments.gantt import render_lifelines

    print()
    print(render_lifelines(result, bin_hours=1.0))


def main() -> None:
    run_standalone_galaxy()
    run_managed_fleet()


if __name__ == "__main__":
    main()
