#!/usr/bin/env python3
"""Resequencing: reads -> variants -> consensus -> lineage, end to end.

Closes the full bioinformatics loop with the toolkit's real
implementations: simulate reads from a mutated isolate, align them
back to the reference and call SNPs (the pileup caller), apply the
calls to reconstruct the isolate's genome, and classify its lineage —
then verify the reconstruction equals the true isolate.

Run:
    python examples/resequencing_pipeline.py
"""

import numpy as np

from repro.bio import (
    align_read,
    apply_variants,
    build_pileup,
    call_variants,
    classify_lineage,
    default_lineage_signatures,
    random_genome,
    simulate_reads,
)
from repro.bio.fasta import FastaRecord


def main() -> None:
    rng = np.random.default_rng(2024)

    # 1. The truth: a reference genome and an isolate carrying a
    #    lineage signature plus a few private mutations.
    reference = random_genome(2000, rng)
    signatures = default_lineage_signatures(len(reference))
    true_lineage = "B.1.1.7"
    isolate = list(reference)
    for pos, base in signatures[true_lineage]:
        isolate[pos - 1] = base
    for pos in (333, 777, 1444):
        isolate[pos - 1] = "A" if isolate[pos - 1] != "A" else "G"
    isolate = "".join(isolate)

    # 2. Sequencing: reads from the isolate (with the error model).
    reads = simulate_reads(isolate, 700, read_length=80, rng=rng, base_quality=39)
    print(f"simulated {len(reads)} reads of 80 bp (~{len(reads) * 80 / len(reference):.0f}x coverage)")

    sample = align_read(reference, reads[0].sequence)
    print(f"example alignment: pos {sample.ref_start}, CIGAR {sample.cigar}, "
          f"identity {sample.identity():.2f}")

    # 3. Variant calling: align every read, pile up, call SNPs.
    pileup = build_pileup(reference, reads, reference_name="ref")
    variants = call_variants(reference, pileup)
    print(f"pileup used {pileup.n_reads_used} reads "
          f"({pileup.n_reads_discarded} discarded); called {len(variants)} SNPs:")
    for variant in variants:
        print(f"  pos {variant.pos:5d} {variant.ref}->{variant.alt} "
              f"depth={variant.info['DP']} af={variant.info['AF']}")

    # 4. Consensus reconstruction and verification against the truth.
    consensus = apply_variants(reference, variants)
    mismatches = sum(1 for a, b in zip(consensus, isolate) if a != b)
    print(f"reconstructed consensus differs from the true isolate at "
          f"{mismatches} position(s)")

    # 5. Lineage classification of the reconstruction.
    call = classify_lineage(FastaRecord("consensus", "", consensus), signatures)
    print(f"lineage call: {call.lineage} (confidence {call.confidence:.2f}; "
          f"truth {true_lineage})")
    assert call.lineage == true_lineage, "reconstruction must recover the lineage"
    print("OK: the full reads -> variants -> consensus -> lineage loop closes.")


if __name__ == "__main__":
    main()
