#!/usr/bin/env python3
"""Predictive scheduling: learning a market's true reclaim rate.

The Spot Instance Advisor shows ca-central-1's m5.xlarge at ~19 %
interruption frequency (stability 2) — but the live market reclaims
much harder than the historical bucket suggests.  The Section 7
predictor learns this during the run: it blends the advisor prior with
observed interruptions over observed instance-hours, so by the end of
the fleet its posterior hazard for ca-central-1 is far above the prior
— and its migration choices rank regions by *predicted effective
cost* rather than sticker price.

Run:
    python examples/predictive_scheduling.py
"""

from repro.cloud.provider import CloudProvider
from repro.core import FleetController, Monitor, SpotVerseConfig
from repro.core.prediction import InterruptionPredictor, PredictiveOptimizer
from repro.workloads import genome_reconstruction_workload


def main() -> None:
    provider = CloudProvider(seed=7)
    provider.warmup_markets(48)
    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",  # walk into the trap on purpose
    )
    monitor = Monitor(provider, ["m5.xlarge"])
    predictor = InterruptionPredictor(provider, "m5.xlarge", prior_weight_hours=30.0)
    policy = PredictiveOptimizer(monitor, config, predictor=predictor)
    controller = FleetController(provider, policy, config, monitor=monitor)

    fleet = [genome_reconstruction_workload(f"wl-{i:02d}") for i in range(30)]
    result = controller.run(fleet)
    print(result.summary())
    print()

    print("What the predictor learned (advisor prior vs posterior, per hour):")
    for metrics in sorted(
        monitor.snapshot("m5.xlarge"), key=lambda m: m.region
    ):
        exposure = predictor.observed_exposure_hours(metrics.region)
        if exposure < 1.0:
            continue
        prior = metrics.interruption_frequency * 0.007
        posterior = predictor.predicted_hazard(metrics)
        events = predictor.observed_interruptions(metrics.region)
        print(
            f"  {metrics.region:16s} prior={prior:.3f}/h "
            f"posterior={posterior:.3f}/h "
            f"({events} interruptions over {exposure:.0f} instance-hours)"
        )
    snapshot = monitor.snapshot("m5.xlarge")
    ca_posterior = predictor.predicted_hazard(
        next(m for m in snapshot if m.region == "ca-central-1")
    )
    best_region, best_posterior = min(
        (
            (m.region, predictor.predicted_hazard(m))
            for m in snapshot
            if predictor.observed_exposure_hours(m.region) >= 10.0
            and m.region != "ca-central-1"
        ),
        key=lambda pair: pair[1],
    )
    print(
        f"\nLearned ranking: ca-central-1 at {ca_posterior:.3f}/h is "
        f"{ca_posterior / best_posterior:.0f}x riskier than {best_region} "
        f"({best_posterior:.3f}/h) — evidence the effective-cost ranking "
        "acts on, where price-only ranking sees only the discount."
    )


if __name__ == "__main__":
    main()
