#!/usr/bin/env python3
"""Spot market data: the advisor, placement scores, and SpotLake.

Generates the synthetic six-month datasets SpotVerse consumes (the
Spot Instance Advisor's Interruption Frequency and the Spot Placement
Score), archives them in a SpotLake-style service, answers
point-in-time queries, and writes a 30-day price trace to CSV.

Run:
    python examples/spot_market_explorer.py
"""

from repro.data import (
    SpotLakeArchive,
    generate_advisor_dataset,
    generate_placement_dataset,
    generate_price_traces,
)


def main() -> None:
    types = ["m5.2xlarge", "p3.2xlarge"]
    print("Generating six-month advisor + placement datasets...")
    advisor = generate_advisor_dataset(days=180, instance_types=types, seed=0)
    placement = generate_placement_dataset(days=180, instance_types=types, seed=0)

    archive = SpotLakeArchive()
    archive.ingest_advisor(advisor)
    archive.ingest_placement(placement)
    print(f"archive coverage: {archive.coverage()}\n")

    print("Point-in-time snapshots (day 90, m5.2xlarge), the Optimizer's view:")
    for snapshot in archive.snapshots_for_type("m5.2xlarge", day=90):
        print(
            f"  {snapshot.region:16s} freq={snapshot.interruption_freq_pct:5.1f}% "
            f"stability={snapshot.stability_score} "
            f"placement={snapshot.placement_score:.2f} "
            f"combined={snapshot.combined_score:.2f}"
        )

    print("\nStability score trajectory (m5.2xlarge, cross-region mean):")
    series = advisor.average_stability_series("m5.2xlarge")
    for day in (0, 45, 90, 135, 179):
        print(f"  day {day:3d}: {series[day]:.2f}")

    print("\nWriting a 30-day hourly price trace to /tmp/m5_2xlarge_use1a.csv ...")
    traces = generate_price_traces(["m5.2xlarge"], days=30, seed=0)
    target = next(trace for trace in traces if trace.az == "us-east-1a")
    with open("/tmp/m5_2xlarge_use1a.csv", "w") as handle:
        handle.write(target.to_csv())
    print(
        f"  mean=${target.mean():.4f}/h, "
        f"coefficient of variation={100 * target.coefficient_of_variation():.1f}%"
    )


if __name__ == "__main__":
    main()
