#!/usr/bin/env python3
"""Quickstart: run a fleet of bioinformatics workloads under SpotVerse.

Builds a simulated multi-region cloud, asks SpotVerse where it would
place work right now, runs a small fleet of 10-hour Galaxy genome
reconstruction workloads, and prints the outcome next to the
single-region and on-demand alternatives.

Run:
    python examples/quickstart.py
"""

from repro.cloud.provider import CloudProvider
from repro.core import FleetController, SpotVerse, SpotVerseConfig
from repro.strategies import OnDemandPolicy, SingleRegionPolicy
from repro.workloads import genome_reconstruction_workload


def build_fleet(n: int = 12):
    """A dozen 10.5-hour standard Galaxy workloads."""
    return [genome_reconstruction_workload(f"wl-{i:02d}") for i in range(n)]


def main() -> None:
    # --- SpotVerse -----------------------------------------------------
    provider = CloudProvider(seed=42)
    spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))

    print("SpotVerse's current recommendation for m5.xlarge:")
    for metrics in spotverse.recommended_regions():
        print(
            f"  {metrics.region:16s} spot=${metrics.spot_price:.4f}/h "
            f"placement={metrics.placement_score:.1f} "
            f"stability={metrics.stability_score} "
            f"combined={metrics.combined_score:.1f}"
        )
    print()

    result = spotverse.run(build_fleet())
    print("=== SpotVerse ===")
    print(result.summary())
    print()

    # --- Baselines (fresh providers so ledgers stay separate) ---------
    for name, policy in [
        ("single-region (cheapest spot region)", SingleRegionPolicy(instance_type="m5.xlarge")),
        ("on-demand (cheapest OD region)", OnDemandPolicy(instance_type="m5.xlarge")),
    ]:
        baseline_provider = CloudProvider(seed=42)
        baseline_provider.warmup_markets(48)
        controller = FleetController(
            baseline_provider, policy, SpotVerseConfig(instance_type="m5.xlarge")
        )
        baseline = controller.run(build_fleet())
        print(f"=== {name} ===")
        print(baseline.summary())
        print()


if __name__ == "__main__":
    main()
