#!/usr/bin/env python3
"""DAG-aware placement: schedule Galaxy workflow *steps*, not workloads.

An EuPathGalaxy-style amplicon study — one shared prep step fanning
out into eight per-sample pipelines that meet again in a summary
report — is compiled into a step DAG and run by the fleet controller:

* independent sample steps run **concurrently on separate spot
  instances**, each placed by the same batched Algorithm-1 round a
  whole fleet launch uses;
* every cross-stage edge ships the producer's output bytes, so a
  consumer placed outside its producer's region pays the S3
  cross-region rate (and re-pays it if a migration moves the step);
* an interrupted step is rescheduled alone — the rest of the DAG keeps
  running where it is;
* the per-step causal chain (`spotverse obs explain <dag id>`) shows
  which decision placed which steps and how big the ready set was.

Run:
    python examples/dag_workflow.py
"""

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.dag import compile_workflow
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.galaxy.workflow import StepInput, Workflow, WorkflowStep
from repro.obs import render_explanation
from repro.sim.clock import HOUR

N_SAMPLES = 8
GiB = 1024**3


def build_amplicon_workflow() -> Workflow:
    """Shared trim -> per-sample QC/denoise chains -> aggregate report."""
    steps = [WorkflowStep("trim", "cutadapt", duration=0.5 * HOUR)]
    for i in range(N_SAMPLES):
        steps.append(
            WorkflowStep(
                f"qc-{i}",
                "fastqc",
                inputs={"reads": StepInput("trim", "out")},
                duration=0.5 * HOUR,
            )
        )
        steps.append(
            WorkflowStep(
                f"denoise-{i}",
                "demux",
                inputs={"reads": StepInput(f"qc-{i}", "out")},
                duration=1.5 * HOUR,
            )
        )
    steps.append(
        WorkflowStep(
            "report",
            "multiqc",
            inputs={
                f"sample{i}": StepInput(f"denoise-{i}", "out")
                for i in range(N_SAMPLES)
            },
            duration=0.5 * HOUR,
        )
    )
    return Workflow("amplicon-study", steps)


def main() -> None:
    workflow = build_amplicon_workflow()
    # Each qc-i -> denoise-i pair condenses into one stage (they can
    # never run concurrently), so the DAG schedules 10 placement units
    # for the 18 steps.
    dag = compile_workflow(workflow, "study1", output_bytes=2 * GiB)
    print(f"{workflow.name}: {len(workflow)} steps -> {dag.n_stages} stages")
    for stage in dag.stages:
        deps = f"  after {list(stage.deps)}" if stage.deps else ""
        print(f"  {stage.stage_id:20s} steps={list(stage.step_labels)}{deps}")

    provider = CloudProvider(seed=11)
    provider.warmup_markets(24)
    config = SpotVerseConfig(instance_type="m5.xlarge")
    monitor = Monitor(provider, [config.instance_type],
                      collect_interval=config.collect_interval)
    controller = FleetController(
        provider, SpotVerseOptimizer(monitor, config), config, monitor=monitor
    )

    result = controller.run_dags([dag], max_hours=48.0)

    serial_hours = dag.serial_duration() / HOUR
    print(f"\nserial makespan : {serial_hours:.2f} h (one instance)")
    print(f"DAG makespan    : {result.makespan_hours:.2f} h "
          f"({serial_hours / result.makespan_hours:.1f}x faster)")
    print(f"interruptions   : {result.total_interruptions} "
          f"(each migrated only its own step)")
    print(f"total cost      : ${result.total_cost:.2f}")

    print("\nPer-step causal chain (obs explain study1):")
    text = render_explanation(list(provider.telemetry.bus), "study1")
    for line in text.splitlines()[:18]:
        print(f"  {line}")
    print("  ...")
    provider.shutdown()


if __name__ == "__main__":
    main()
