#!/usr/bin/env python3
"""Checkpoint workloads: NGS preprocessing that survives interruptions.

Runs the checkpointable NGS Data Preprocessing workload (FastQC +
trimming per file, MultiQC at the end) with *real* payloads in a flaky
single region, then inspects the DynamoDB checkpoint table to show how
progress survived each interruption — the paper's bolt-on for Galaxy's
missing checkpointing.

Run:
    python examples/ngs_checkpoint_pipeline.py
"""

from repro.cloud.provider import CloudProvider
from repro.core import FleetController, SpotVerseConfig
from repro.strategies import SingleRegionPolicy
from repro.workloads import ngs_preprocessing_workload


def main() -> None:
    provider = CloudProvider(seed=5)
    provider.warmup_markets(48)
    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        execute_payloads=True,  # actually run FastQC/trimming per segment
    )
    controller = FleetController(
        provider, SingleRegionPolicy(region="ca-central-1"), config
    )
    fleet = [
        ngs_preprocessing_workload(f"ngs-{i:02d}", n_segments=20, with_payload=True)
        for i in range(8)
    ]
    result = controller.run(fleet)
    print(result.summary())
    print()

    print("Checkpoint trail (DynamoDB 'spotverse-checkpoints'):")
    for record in result.records:
        item = provider.dynamodb.get_item("spotverse-checkpoints", record.workload_id)
        segments = item["completed_segments"] if item else 0
        interruption_times = ", ".join(
            f"{time / 3600:.1f}h@{region}" for time, region in record.interruptions
        )
        print(
            f"  {record.workload_id}: {segments}/20 segments durable, "
            f"{record.n_interruptions} interruptions"
            + (f" ({interruption_times})" if interruption_times else "")
        )

    checkpoint_objects = provider.s3.list_objects(
        config.results_bucket, prefix="checkpoints/"
    )
    print(f"\n{len(checkpoint_objects)} checkpoint uploads landed in S3 "
          f"(one per interruption, within the 2-minute notice window).")
    transfer = provider.ledger.by_category().get("s3-transfer", 0.0)
    print(f"cross-region checkpoint transfer cost: ${transfer:.4f}")


if __name__ == "__main__":
    main()
