#!/usr/bin/env python3
"""Threshold explorer: where does chasing cheap spot stop paying off?

Sweeps Algorithm 1's score threshold over {4, 5, 6} and workload
durations {5, 10, 20} hours on the threshold-study market snapshot,
printing the region set each threshold selects (the paper's Table 3)
and the cost relative to on-demand (Figure 10).  A reduced-size
version of ``benchmarks/test_bench_fig10_thresholds.py``.

Run:
    python examples/threshold_explorer.py
"""

from repro.experiments.thresholds import run_threshold_study


def main() -> None:
    result = run_threshold_study(n_workloads=20)
    print(result.render())
    print()

    print("Reading the grid:")
    for threshold in (6, 5, 4):
        cells = [result.normalized_cost[(threshold, d)] for d in (5, 10, 20)]
        trend = " -> ".join(f"{value:.2f}" for value in cells)
        verdict = (
            "saves at every duration"
            if all(value < 1 for value in cells)
            else "loses to on-demand at long durations"
        )
        print(f"  threshold {threshold}: {trend}  ({verdict})")
    print(
        "\nThe paper's takeaway holds: reliability-blind threshold 4 picks the\n"
        "cheapest regions but pays for it in rework once workloads run long."
    )


if __name__ == "__main__":
    main()
