#!/usr/bin/env python3
"""Chaos quickstart: break the cloud on purpose, verify nothing breaks.

Runs the built-in default fault campaign (API throttling, dropped event
deliveries, corrupted checkpoints, a reclaim storm, a region blackout)
against SpotVerse, prints the resilience scorecard, then does it again
with a hand-rolled campaign that kills the controller mid-run and
proves crash recovery is bit-identical to an unkilled run.

Everything is seeded: run this twice, get the same bytes.

Run:
    python examples/chaos_campaign.py

See also:
    spotverse chaos run --policy spotverse --export scorecard.json
    spotverse chaos report scorecard.json
"""

from repro.chaos import (
    CampaignSpec,
    Injection,
    default_campaign,
    render_scorecard,
    run_campaign,
)

HOUR = 3600.0


def main() -> None:
    # 1. The standard battery: every fault mode fires during the first
    #    day while a six-workload fleet runs under SpotVerse.
    outcome = run_campaign(policy="spotverse")
    print(render_scorecard(outcome.scorecard))
    print()

    # 2. A custom campaign: hammer DynamoDB, drop every interruption
    #    notice for two hours, and crash the controller at hour five.
    #    The control plane must reconcile the lost events from its
    #    durable state store and recover from the crash without the
    #    result changing at all (--verify-resume semantics).
    campaign = CampaignSpec(
        name="store-stress",
        injections=(
            Injection(kind="dynamodb-throttle", at=0.5 * HOUR, duration=2 * HOUR, rate=0.5),
            Injection(kind="eventbridge-drop", at=1 * HOUR, duration=2 * HOUR, rate=1.0),
            Injection(kind="controller-kill", at=5 * HOUR),
        ),
    )
    outcome = run_campaign(
        policy="spotverse", campaign=campaign, verify_resume_equivalence=True
    )
    print(render_scorecard(outcome.scorecard))

    # 3. Campaigns serialise: hand the JSON to `spotverse chaos run
    #    --campaign` or commit it next to an experiment.
    print()
    print(f"campaign spec round-trips through JSON: {campaign.to_dict()}")


if __name__ == "__main__":
    main()
