"""Setuptools shim.

Package metadata lives in pyproject.toml; this file exists so
``pip install -e .`` also works on minimal toolchains where the PEP 660
editable path is unavailable (no ``wheel`` package, no network), via
the legacy ``setup.py develop`` fallback.
"""

from setuptools import setup

setup()
