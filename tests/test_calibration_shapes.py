"""Fast calibration-regression tests.

The full paper-shape assertions run in ``benchmarks/``; these reduced
fleets (~12 workloads) protect the calibration from accidental edits
when only ``pytest tests/`` runs.  They assert *orderings*, never
absolute values, so they are robust to small retunes while still
catching anything that flips a paper conclusion.
"""

import pytest

from repro.cloud.profiles import THRESHOLD_EPOCH_OVERRIDES
from repro.core.config import SpotVerseConfig
from repro.experiments.harness import ArmSpec, run_arm, run_arms, spotverse_policy
from repro.strategies import OnDemandPolicy, SingleRegionPolicy, SkyPilotPolicy
from repro.workloads import genome_reconstruction_workload, synthetic_workload

N = 12
SEED = 7


def spec(name, policy_factory, config=None, factory=None, overrides=None):
    return ArmSpec(
        name=name,
        policy_factory=policy_factory,
        config=config or SpotVerseConfig(instance_type="m5.xlarge"),
        workload_factory=factory
        or (lambda i: genome_reconstruction_workload(f"w{i:02d}", duration_hours=8.0)),
        n_workloads=N,
        seed=SEED,
        max_hours=150,
        profile_overrides=overrides,
    )


@pytest.fixture(scope="module")
def core_arms():
    spotverse_config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",
    )
    return run_arms(
        [
            spec("single", lambda p, c, m: SingleRegionPolicy(region="ca-central-1")),
            spec("spotverse", spotverse_policy, config=spotverse_config),
            spec("on-demand", lambda p, c, m: OnDemandPolicy(instance_type="m5.xlarge")),
        ]
    )


class TestCoreOrdering:
    def test_everyone_completes(self, core_arms):
        for arm in core_arms.values():
            assert arm.fleet.all_complete, arm.name

    def test_interruption_ordering(self, core_arms):
        assert core_arms["on-demand"].fleet.total_interruptions == 0
        assert (
            core_arms["spotverse"].fleet.total_interruptions
            < core_arms["single"].fleet.total_interruptions
        )

    def test_cost_ordering(self, core_arms):
        spotverse = core_arms["spotverse"].fleet.total_cost
        single = core_arms["single"].fleet.total_cost
        on_demand = core_arms["on-demand"].fleet.total_cost
        assert spotverse < single < on_demand

    def test_time_ordering(self, core_arms):
        assert (
            core_arms["on-demand"].fleet.makespan
            < core_arms["spotverse"].fleet.makespan
            < core_arms["single"].fleet.makespan
        )


class TestSkyPilotShape:
    def test_skypilot_tracks_cheapest_market(self):
        arm = run_arm(
            spec(
                "skypilot",
                lambda p, c, m: SkyPilotPolicy(instance_type="m5.xlarge"),
                factory=lambda i: synthetic_workload(f"w{i}", duration_hours=8.0),
            )
        )
        regions = arm.fleet.regions_used()
        assert max(regions, key=regions.get) == "ca-central-1"


class TestThresholdShape:
    def test_threshold_4_worse_than_6_at_long_duration(self):
        def factory(i):
            return synthetic_workload(f"w{i}", duration_hours=16.0)

        arms = run_arms(
            [
                spec(
                    f"t{threshold}",
                    spotverse_policy,
                    config=SpotVerseConfig(
                        instance_type="m5.xlarge", score_threshold=float(threshold)
                    ),
                    factory=factory,
                    overrides=THRESHOLD_EPOCH_OVERRIDES,
                )
                for threshold in (4, 6)
            ]
        )
        assert arms["t4"].fleet.total_cost > arms["t6"].fleet.total_cost
        assert (
            arms["t4"].fleet.total_interruptions
            > arms["t6"].fleet.total_interruptions
        )
