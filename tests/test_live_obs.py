"""The live observability plane: segments, rollups, flight recorder.

Load-bearing guarantees under test:

* a closed segmented stream is byte-identical to a post-hoc
  ``write_jsonl`` of the same bundle, so every offline tool keeps
  working on live exports;
* :meth:`TelemetryStream.load` reads single files, segment
  directories, and manifests alike, and tolerates a live writer's
  half-written final line;
* with ``trim_bus=True`` the plane bounds bus memory by the trim
  threshold instead of the run length — without losing export lines;
* the flight recorder snapshots on its trigger sources, caps its
  artifact volume, and stays read-only with respect to the run.
"""

import json
import os

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.errors import ReproError
from repro.obs import (
    EventBus,
    EventType,
    FleetRollup,
    FlightRecorder,
    LivePlane,
    SegmentWriter,
    Telemetry,
    TelemetryStream,
    WindowAggregator,
    write_jsonl,
)
from repro.obs.flight import DEFAULT_MAX_ARTIFACTS
from repro.obs.live import STREAM_FORMAT
from repro.obs.slo import SLOSpec, SLOTarget
from repro.sim.clock import HOUR
from repro.sim.engine import SimulationEngine
from repro.strategies import SingleRegionPolicy
from repro.workloads.base import synthetic_workload


@pytest.fixture()
def fleet_run(tmp_path):
    """A short seeded fleet run with the live plane + recorder armed."""
    provider = CloudProvider(seed=7)
    provider.warmup_markets(24)
    recorder = FlightRecorder(provider.telemetry, directory=str(tmp_path / "bb"))
    plane = LivePlane(
        provider.telemetry, directory=str(tmp_path / "stream"), recorder=recorder
    )
    controller = FleetController(
        provider,
        SingleRegionPolicy(instance_type="m5.xlarge"),
        SpotVerseConfig(instance_type="m5.xlarge"),
    )
    fleet = [synthetic_workload(f"wl-{i}", duration_hours=2.0) for i in range(4)]
    result = controller.run(fleet, max_hours=24.0)
    plane.close()
    recorder.snapshot_final()
    recorder.close()
    yield provider, plane, recorder, result, tmp_path
    provider.shutdown()


# ----------------------------------------------------------------------
# Segment writer
# ----------------------------------------------------------------------
class TestSegmentWriter:
    def test_rotates_on_size_and_seals_manifest(self, tmp_path):
        writer = SegmentWriter(str(tmp_path), max_segment_bytes=40, flush_lines=2)
        for i in range(7):
            writer.write_line(json.dumps({"kind": "event", "seq": i}))
        writer.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format"] == STREAM_FORMAT
        assert manifest["complete"] is True
        assert manifest["active"] is None
        assert manifest["total_lines"] == 7
        assert sum(seg["lines"] for seg in manifest["segments"]) == 7
        assert len(manifest["segments"]) > 1  # the byte cap forced rotation
        for seg in manifest["segments"]:
            path = tmp_path / seg["name"]
            assert path.exists()
            assert len(path.read_text().splitlines()) == seg["lines"]
            assert path.stat().st_size == seg["bytes"]

    def test_open_manifest_names_active_tail(self, tmp_path):
        writer = SegmentWriter(str(tmp_path), flush_lines=1)
        writer.write_line('{"kind": "event", "seq": 0}')
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["complete"] is False
        assert manifest["active"] == "segment-000000.jsonl"
        writer.close()

    def test_close_is_idempotent(self, tmp_path):
        writer = SegmentWriter(str(tmp_path))
        writer.write_line('{"kind": "event", "seq": 0}')
        writer.close()
        writer.close()
        assert json.loads((tmp_path / "manifest.json").read_text())["total_lines"] == 1


# ----------------------------------------------------------------------
# Segmented stream round trip
# ----------------------------------------------------------------------
class TestSegmentedRoundTrip:
    def test_concatenated_segments_match_write_jsonl_bytes(self, fleet_run):
        provider, _, _, _, tmp_path = fleet_run
        single = tmp_path / "single.jsonl"
        write_jsonl(str(single), provider.telemetry)
        stream_dir = tmp_path / "stream"
        manifest = json.loads((stream_dir / "manifest.json").read_text())
        concatenated = b"".join(
            (stream_dir / seg["name"]).read_bytes() for seg in manifest["segments"]
        )
        assert concatenated == single.read_bytes()

    def test_stream_loads_from_file_directory_and_manifest(self, fleet_run):
        provider, _, _, _, tmp_path = fleet_run
        single = tmp_path / "single.jsonl"
        write_jsonl(str(single), provider.telemetry)
        by_file = TelemetryStream.load(str(single))
        by_dir = TelemetryStream.load(str(tmp_path / "stream"))
        by_manifest = TelemetryStream.load(str(tmp_path / "stream" / "manifest.json"))
        for other in (by_dir, by_manifest):
            assert [e.to_dict() for e in other.events] == [
                e.to_dict() for e in by_file.events
            ]
            assert other.samples == by_file.samples
            assert other.points == by_file.points
            assert not other.truncated

    def test_rotated_segments_still_load(self, tmp_path):
        telemetry = Telemetry()
        from repro.obs.live import LiveExporter

        exporter = LiveExporter(
            telemetry, str(tmp_path), max_segment_bytes=200, flush_lines=1
        )
        for i in range(24):
            telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id=f"w{i}")
        exporter.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["segments"]) > 1
        stream = TelemetryStream.load(str(tmp_path))
        assert [e.workload_id for e in stream.events] == [f"w{i}" for i in range(24)]


# ----------------------------------------------------------------------
# Truncation tolerance (live writer mid-record)
# ----------------------------------------------------------------------
class TestTruncatedTail:
    def test_cut_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        good = '{"kind": "event", "seq": 0, "time": 1.0, "type": "workload.submitted"}'
        path.write_text(good + "\n" + good[: len(good) // 2])
        stream = TelemetryStream.load(str(path))
        assert stream.truncated
        assert len(stream.events) == 1

    def test_damaged_line_with_newline_still_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind": "event", "seq": 0, "ty\n')
        with pytest.raises(ReproError, match="s.jsonl:1"):
            TelemetryStream.load(str(path))

    def test_damaged_interior_line_still_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        good = '{"kind": "event", "seq": 0, "time": 1.0, "type": "workload.submitted"}'
        path.write_text("not json\n" + good + "\n")
        with pytest.raises(ReproError, match="s.jsonl:1"):
            TelemetryStream.load(str(path))

    def test_truncated_segment_tail_in_directory(self, tmp_path):
        writer = SegmentWriter(str(tmp_path), flush_lines=1)
        good = '{"kind": "event", "seq": 0, "time": 1.0, "type": "workload.submitted"}'
        writer.write_line(good)
        # Simulate the live writer caught mid-record on the active tail.
        with open(tmp_path / "segment-000000.jsonl", "a") as handle:
            handle.write(good[:20])
        stream = TelemetryStream.load(str(tmp_path))
        assert stream.truncated
        assert len(stream.events) == 1


# ----------------------------------------------------------------------
# Rollups and windows
# ----------------------------------------------------------------------
class TestFleetRollup:
    def test_status_market_and_option_rollups(self):
        bus = EventBus()
        rollup = FleetRollup()
        bus.subscribe(rollup.observe)
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w1")
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w2")
        bus.emit(
            EventType.INSTANCE_ATTACHED,
            workload_id="w1",
            instance_id="i-1",
            region="eu-north-1",
            option="spot",
        )
        bus.emit(EventType.WORKLOAD_RUNNING, workload_id="w1")
        assert rollup.by_status() == {"pending": 1, "running": 1}
        assert rollup.by_market() == {"eu-north-1": 1}
        assert rollup.by_option() == {"spot": 1}
        bus.emit(EventType.INTERRUPTION_WARNING, workload_id="w1", instance_id="i-1")
        bus.emit(EventType.INSTANCE_RECLAIMED, workload_id="w1", instance_id="i-1")
        assert rollup.live_instances == 0
        assert rollup.interruptions == 1
        bus.emit(EventType.MIGRATION_COMPLETED, workload_id="w1")
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        assert rollup.reacquires == 1
        assert rollup.done == 1
        assert rollup.total == 2

    def test_done_releases_bound_instance(self):
        rollup = FleetRollup()
        bus = EventBus()
        bus.subscribe(rollup.observe)
        bus.emit(
            EventType.INSTANCE_ATTACHED, workload_id="w1", instance_id="i-9",
            region="us-east-1", option="on-demand",
        )
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        assert rollup.live_instances == 0


class TestWindowAggregator:
    def test_tumbling_windows_align_and_count(self):
        times = iter([0.0, 0.5 * HOUR, 1.25 * HOUR, 2.0 * HOUR])
        bus = EventBus(clock=lambda: next(times))
        agg = WindowAggregator(window_seconds=HOUR, max_windows=48)
        bus.subscribe(agg.observe)
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w1")
        bus.emit(EventType.INTERRUPTION_WARNING, workload_id="w1")
        bus.emit(EventType.MIGRATION_COMPLETED, workload_id="w1")
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        windows = agg.recent(10)
        assert [w.start for w in windows] == [0.0, HOUR, 2 * HOUR]
        assert windows[0].events == 2
        assert windows[0].submitted == 1
        assert windows[0].interruptions == 1
        assert windows[1].reacquires == 1
        assert windows[2].done == 1
        assert windows[0].events_per_hour == pytest.approx(2.0)

    def test_window_history_is_bounded(self):
        agg = WindowAggregator(window_seconds=HOUR, max_windows=3)
        bus_time = [0.0]
        bus = EventBus(clock=lambda: bus_time[0])
        bus.subscribe(agg.observe)
        for hour in range(10):
            bus_time[0] = hour * HOUR
            bus.emit(EventType.CHAOS_FAULT_INJECTED)
        assert len(agg.windows) == 3
        assert agg.recent(3)[0].start == 7 * HOUR


# ----------------------------------------------------------------------
# The live plane
# ----------------------------------------------------------------------
class TestLivePlane:
    def test_trim_bounds_bus_memory_without_losing_lines(self, tmp_path):
        telemetry = Telemetry()
        plane = LivePlane(
            telemetry,
            directory=str(tmp_path),
            trim_bus=True,
            trim_every=64,
            flush_lines=8,
        )
        total = 1000
        for i in range(total):
            telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id=f"w{i}")
        assert plane.peak_bus_events <= 64
        assert plane.trims >= total // 64
        plane.close()
        stream = TelemetryStream.load(str(tmp_path))
        assert len(stream.events) == total
        assert [e.seq for e in stream.events] == list(range(total))

    def test_slo_breach_is_edge_triggered(self):
        telemetry = Telemetry()
        spec = SLOSpec(
            name="test",
            targets=(
                SLOTarget(
                    metric="submit_to_placed_seconds",
                    threshold=10.0,
                    objective=0.9,
                    description="placement",
                ),
            ),
        )
        recorder = FlightRecorder(telemetry)
        plane = LivePlane(telemetry, slo_spec=spec, recorder=recorder)
        times = [0.0]
        telemetry.bus.attach_clock(lambda: times[0])
        for i in range(4):
            telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id=f"w{i}")
            times[0] += 100.0  # every placement blows the 10s threshold
            telemetry.bus.emit(
                EventType.INSTANCE_ATTACHED, workload_id=f"w{i}", instance_id=f"i-{i}"
            )
        # Compliance 0.0 < 0.9 from the first sample on, but only the
        # passing->failing edge snapshots.
        assert len(plane.breaches) == 1
        assert plane.breaches[0].metric == "submit_to_placed_seconds"
        assert [t["reason"] for t in recorder.triggers] == ["slo-breach"]
        results = plane.slo_results()
        assert results[0].samples == 4
        assert results[0].violations == 4
        plane.close()

    def test_plane_emits_nothing_back_onto_the_bus(self, fleet_run):
        provider, plane, recorder, _, _ = fleet_run
        # A read-only plane: every event on the bus was emitted by the
        # run itself, and folding the saved stream reproduces the
        # rollup exactly.
        replayed = FleetRollup()
        for event in provider.telemetry.bus.events():
            replayed.observe(event)
        assert replayed.by_status() == plane.rollup.by_status()
        assert replayed.done == plane.rollup.done == 4

    def test_close_is_idempotent(self, tmp_path):
        telemetry = Telemetry()
        plane = LivePlane(telemetry, directory=str(tmp_path))
        plane.close()
        plane.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["complete"] is True


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def _telemetry(self):
        telemetry = Telemetry()
        times = [0.0]
        telemetry.bus.attach_clock(lambda: times[0])
        return telemetry, times

    def test_ring_is_bounded(self):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry, capacity=8)
        for i in range(40):
            telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id=f"w{i}")
        assert len(recorder.ring) == 8
        payload = recorder.trigger("manual", detail="test")
        assert [e["workload_id"] for e in payload["events"]] == [
            f"w{i}" for i in range(32, 40)
        ]

    def test_artifact_written_and_capped(self, tmp_path):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(
            telemetry, directory=str(tmp_path), max_artifacts=2
        )
        for i in range(5):
            recorder.trigger("invariant-breach", detail=f"breach {i}")
        names = sorted(os.listdir(tmp_path))
        assert names == [
            "BLACKBOX_000_invariant-breach.json",
            "BLACKBOX_001_invariant-breach.json",
        ]
        assert len(recorder.triggers) == 5  # counted past the cap
        payload = json.loads((tmp_path / names[0]).read_text())
        assert payload["format"] == "spotverse-blackbox/1"
        assert payload["reason"] == "invariant-breach"

    def test_snapshot_final_is_outside_the_cap(self, tmp_path):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry, directory=str(tmp_path), max_artifacts=0)
        recorder.trigger("dead-letter")
        path = recorder.snapshot_final()
        assert os.path.basename(path) == "BLACKBOX_final.json"
        assert sorted(os.listdir(tmp_path)) == ["BLACKBOX_final.json"]
        assert json.loads(open(path).read())["reason"] == "run-end"

    def test_default_artifact_cap(self, tmp_path):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry, directory=str(tmp_path))
        for _ in range(DEFAULT_MAX_ARTIFACTS + 3):
            recorder.trigger("dead-letter")
        assert len(os.listdir(tmp_path)) == DEFAULT_MAX_ARTIFACTS

    def test_context_providers_and_error_isolation(self):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry)
        recorder.add_context("fleet", lambda: {"running": 3})
        recorder.add_context("broken", lambda: 1 / 0)
        payload = recorder.trigger("manual")
        assert payload["context"]["fleet"] == {"running": 3}
        assert payload["context"]["broken"].startswith("<context error:")

    def test_dead_letter_watch_triggers(self):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry)
        recorder.watch_dead_letters()
        telemetry.bus.emit(
            EventType.RESILIENCE_DEAD_LETTER,
            scope="fleet-state:save-execution",
            detail="throttled past budget",
        )
        assert len(recorder.triggers) == 1
        assert recorder.triggers[0]["reason"] == "dead-letter"
        assert "fleet-state:save-execution" in recorder.triggers[0]["detail"]

    def test_guard_engine_snapshots_on_exception(self):
        telemetry, _ = self._telemetry()
        engine = SimulationEngine(seed=1)
        telemetry.bus.attach_clock(lambda: engine.now)
        recorder = FlightRecorder(telemetry)
        recorder.guard_engine(engine)

        def boom():
            raise RuntimeError("kaput")

        engine.call_at(1.0, boom, label="explode")
        with pytest.raises(RuntimeError, match="kaput"):
            engine.run_until(2.0)
        assert [t["reason"] for t in recorder.triggers] == ["engine-exception"]
        assert recorder.triggers[0]["detail"] == "RuntimeError: kaput"
        assert recorder.triggers[0]["attrs"]["label"] == "explode"

    def test_close_detaches_subscriptions(self):
        telemetry, _ = self._telemetry()
        recorder = FlightRecorder(telemetry)
        recorder.watch_dead_letters()
        recorder.close()
        recorder.close()
        telemetry.bus.emit(EventType.RESILIENCE_DEAD_LETTER, scope="x", detail="y")
        assert len(recorder.ring) == 0
        assert recorder.triggers == []

    def test_fleet_run_leaves_final_blackbox(self, fleet_run):
        _, _, recorder, _, tmp_path = fleet_run
        final = tmp_path / "bb" / "BLACKBOX_final.json"
        assert final.exists()
        payload = json.loads(final.read_text())
        assert payload["reason"] == "run-end"
        assert payload["events"]  # ring carried the tail of the run
        assert payload["metrics"]
