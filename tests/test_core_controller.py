"""Integration tests for workload executions and the fleet controller."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import InstanceState
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.execution import ExecutionState, WorkloadExecution
from repro.core.fleet import DynamoCheckpointBackend
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.result import FleetResult, WorkloadRecord
from repro.errors import ExperimentError, WorkloadError
from repro.galaxy.checkpoint import InMemoryCheckpointStore
from repro.sim.clock import HOUR, MINUTE
from repro.strategies import OnDemandPolicy, SingleRegionPolicy
from repro.workloads.base import Workload, WorkloadKind, synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


@pytest.fixture()
def provider():
    p = CloudProvider(seed=4)
    p.warmup_markets(24)
    return p


def make_execution(provider, workload, completions, boot_delay=60.0, payloads=False):
    provider.s3.create_bucket("results", "us-east-1")
    store = InMemoryCheckpointStore()
    execution = WorkloadExecution(
        workload=workload,
        provider=provider,
        backend=DynamoCheckpointBackend(provider, "results", progress_store=store),
        results_bucket="results",
        boot_delay=boot_delay,
        execute_payloads=payloads,
        on_complete=lambda e: completions.append(e.workload.workload_id),
    )
    return execution, store


class TestWorkloadExecution:
    def test_runs_to_completion_on_stable_instance(self, provider):
        completions = []
        workload = synthetic_workload("w", duration_hours=1.0, n_segments=4)
        execution, _ = make_execution(provider, workload, completions)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(2 * HOUR)
        assert completions == ["w"]
        assert execution.state is ExecutionState.DONE
        assert execution.record.completed_at == pytest.approx(3600 + 60, abs=1)
        assert instance.state is InstanceState.TERMINATED
        assert provider.s3.head_object("results", "runs/w/complete.json")

    def test_standard_interruption_resets_progress(self, provider):
        completions = []
        workload = synthetic_workload("w", duration_hours=1.0, n_segments=4)
        execution, _ = make_execution(provider, workload, completions)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(30 * MINUTE + 60)  # two segments done
        assert execution.completed_segments == 2
        region = execution.handle_interruption_notice()
        assert region == "us-east-1"
        assert execution.completed_segments == 0
        assert execution.state is ExecutionState.INTERRUPTED
        assert execution.record.n_interruptions == 1

    def test_checkpoint_interruption_keeps_progress(self, provider):
        completions = []
        workload = ngs_preprocessing_workload("w", duration_hours=1.0, n_segments=4)
        execution, store = make_execution(provider, workload, completions)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(30 * MINUTE + 60)
        execution.handle_interruption_notice()
        assert execution.completed_segments == 2
        assert store.load("w") == 2
        # Checkpoint bytes landed in S3.
        keys = provider.s3.list_objects("results", prefix="checkpoints/w/")
        assert len(keys) == 1

    def test_resume_from_checkpoint_on_new_instance(self, provider):
        completions = []
        workload = ngs_preprocessing_workload("w", duration_hours=1.0, n_segments=4)
        execution, store = make_execution(provider, workload, completions)
        first = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(first)
        provider.engine.run_until(30 * MINUTE + 60)
        execution.handle_interruption_notice()
        second = provider.ec2.run_on_demand("eu-west-1", "m5.xlarge", tag="w")
        execution.attach(second)
        provider.engine.run_until(2 * HOUR)
        assert completions == ["w"]
        # Only the remaining two segments ran on the second instance:
        # 30 min work + boot, far less than a full re-run.
        assert second.uptime(provider.engine.now) < 45 * MINUTE

    def test_interruption_during_boot(self, provider):
        completions = []
        workload = synthetic_workload("w", duration_hours=1.0)
        execution, _ = make_execution(provider, workload, completions, boot_delay=600.0)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(300.0)  # still booting
        execution.handle_interruption_notice()
        assert execution.state is ExecutionState.INTERRUPTED
        provider.engine.run_until(2 * HOUR)
        assert completions == []  # boot event was cancelled

    def test_double_attach_rejected(self, provider):
        execution, _ = make_execution(provider, synthetic_workload("w"), [])
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        execution.attach(instance)
        with pytest.raises(WorkloadError):
            execution.attach(instance)

    def test_notice_without_instance_rejected(self, provider):
        execution, _ = make_execution(provider, synthetic_workload("w"), [])
        with pytest.raises(WorkloadError):
            execution.handle_interruption_notice()

    def test_payload_execution(self, provider):
        seen = []
        workload = Workload(
            workload_id="w",
            kind=WorkloadKind.STANDARD,
            segment_durations=(60.0, 60.0),
            payload=lambda index: seen.append(index),
        )
        completions = []
        execution, _ = make_execution(provider, workload, completions, payloads=True)
        execution.attach(provider.ec2.run_on_demand("us-east-1", "m5.xlarge"))
        provider.engine.run_until(HOUR)
        assert seen == [0, 1]

    def test_input_download_charged_cross_region_per_boot(self, provider):
        from repro.cloud.billing import CostCategory
        from repro.workloads.base import Workload, WorkloadKind

        workload = Workload(
            workload_id="w",
            kind=WorkloadKind.STANDARD,
            segment_durations=(600.0,),
            input_bytes=1024 ** 3,
        )
        execution, _ = make_execution(provider, workload, [])
        # Results bucket is in us-east-1; boot in eu-west-1 pays 1 GB.
        execution.attach(provider.ec2.run_on_demand("eu-west-1", "m5.xlarge", tag="w"))
        provider.engine.run_until(HOUR)
        assert provider.ledger.total(CostCategory.S3_TRANSFER) == pytest.approx(0.02)

    def test_input_download_free_in_home_region(self, provider):
        from repro.cloud.billing import CostCategory
        from repro.workloads.base import Workload, WorkloadKind

        workload = Workload(
            workload_id="w",
            kind=WorkloadKind.STANDARD,
            segment_durations=(600.0,),
            input_bytes=1024 ** 3,
        )
        execution, _ = make_execution(provider, workload, [])
        execution.attach(provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w"))
        provider.engine.run_until(HOUR)
        assert provider.ledger.total(CostCategory.S3_TRANSFER) == 0.0

    def test_on_demand_attempt_counted(self, provider):
        execution, _ = make_execution(provider, synthetic_workload("w"), [])
        execution.attach(provider.ec2.run_on_demand("us-east-1", "m5.xlarge"))
        assert execution.record.attempts == 1
        assert execution.record.on_demand_attempts == 1
        assert execution.record.regions == ["us-east-1"]


class TestFleetController:
    def run_fleet(self, policy, workloads, seed=4, config=None):
        provider = CloudProvider(seed=seed)
        provider.warmup_markets(24)
        config = config or SpotVerseConfig(instance_type="m5.xlarge")
        controller = FleetController(provider, policy, config)
        result = controller.run(workloads, max_hours=72)
        return provider, controller, result

    def test_on_demand_fleet_completes_exactly(self):
        workloads = [synthetic_workload(f"w{i}", duration_hours=2.0) for i in range(5)]
        provider, _, result = self.run_fleet(OnDemandPolicy(), workloads)
        assert result.all_complete
        assert result.total_interruptions == 0
        expected = 5 * (2.0 + 180 / 3600) * 0.192
        assert result.instance_cost == pytest.approx(expected, rel=0.01)

    def test_spot_fleet_survives_interruptions(self):
        workloads = [synthetic_workload(f"w{i}", duration_hours=8.0) for i in range(10)]
        provider, _, result = self.run_fleet(
            SingleRegionPolicy(region="ca-central-1"), workloads
        )
        assert result.all_complete
        assert result.total_interruptions > 0
        assert set(result.interruptions_by_region()) == {"ca-central-1"}

    def test_checkpoint_fleet_cheaper_than_standard(self):
        standard = [synthetic_workload(f"s{i}", duration_hours=8.0) for i in range(10)]
        checkpoint = [
            ngs_preprocessing_workload(f"c{i}", duration_hours=8.0) for i in range(10)
        ]
        _, _, standard_result = self.run_fleet(
            SingleRegionPolicy(region="ca-central-1"), standard
        )
        _, _, checkpoint_result = self.run_fleet(
            SingleRegionPolicy(region="ca-central-1"), checkpoint
        )
        assert checkpoint_result.total_cost < standard_result.total_cost
        assert checkpoint_result.makespan <= standard_result.makespan

    def test_spotverse_policy_migrates_away(self):
        provider = CloudProvider(seed=4)
        provider.warmup_markets(24)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = SpotVerseOptimizer(monitor, config)
        controller = FleetController(provider, policy, config, monitor=monitor)
        workloads = [synthetic_workload(f"w{i}", duration_hours=8.0) for i in range(10)]
        result = controller.run(workloads, max_hours=72)
        assert result.all_complete
        # At least one workload migrated out of the start region.
        assert len(result.regions_used()) > 1

    def test_empty_fleet_rejected(self):
        provider = CloudProvider(seed=4)
        controller = FleetController(provider, OnDemandPolicy(), SpotVerseConfig())
        with pytest.raises(ExperimentError):
            controller.run([])

    def test_duplicate_ids_rejected(self):
        provider = CloudProvider(seed=4)
        controller = FleetController(provider, OnDemandPolicy(), SpotVerseConfig())
        with pytest.raises(ExperimentError):
            controller.run([synthetic_workload("same"), synthetic_workload("same")])

    def test_deadline_returns_partial_result(self):
        workloads = [synthetic_workload(f"w{i}", duration_hours=10.0) for i in range(3)]
        provider = CloudProvider(seed=4)
        provider.warmup_markets(24)
        controller = FleetController(provider, OnDemandPolicy(), SpotVerseConfig())
        result = controller.run(workloads, max_hours=1.0)
        assert not result.all_complete
        assert result.ended_at == pytest.approx(HOUR)
        # Deadline cleanup terminated the instances.
        live = provider.ec2.describe_instances(states=[InstanceState.RUNNING])
        assert live == []

    def test_per_workload_cost_attribution(self):
        workloads = [synthetic_workload(f"w{i}", duration_hours=2.0) for i in range(3)]
        _, _, result = self.run_fleet(OnDemandPolicy(), workloads)
        for record in result.records:
            assert record.cost > 0
        assert sum(r.cost for r in result.records) <= result.total_cost + 1e-9

    def test_control_plane_resources_deployed(self):
        provider = CloudProvider(seed=4)
        FleetController(provider, OnDemandPolicy(), SpotVerseConfig())
        assert "spotverse-interruption-handler" in provider.lambda_.functions()
        assert "spotverse-reacquire" in provider.stepfunctions.machines()
        assert "spotverse-open-request-sweep" in provider.cloudwatch.scheduled_rules()
        rule_names = [rule.name for rule in provider.eventbridge.rules()]
        assert "spotverse-on-interruption" in rule_names


class TestFleetResult:
    def make_result(self):
        records = [
            WorkloadRecord(
                "a",
                WorkloadKind.STANDARD,
                submitted_at=0.0,
                completed_at=2 * HOUR,
                interruptions=[(HOUR, "r1")],
                regions=["r1", "r2"],
                attempts=2,
                cost=1.0,
            ),
            WorkloadRecord(
                "b",
                WorkloadKind.STANDARD,
                submitted_at=0.0,
                completed_at=3 * HOUR,
                interruptions=[(0.5 * HOUR, "r1"), (1.5 * HOUR, "r2")],
                regions=["r1", "r2", "r2"],
                attempts=3,
                on_demand_attempts=1,
                cost=2.0,
            ),
        ]
        return FleetResult(
            strategy="test",
            records=records,
            total_cost=3.5,
            instance_cost=3.0,
            overhead_cost=0.5,
            ended_at=3 * HOUR,
        )

    def test_aggregates(self):
        result = self.make_result()
        assert result.all_complete
        assert result.n_complete == 2
        assert result.total_interruptions == 3
        assert result.makespan_hours == pytest.approx(3.0)
        assert result.mean_completion_hours == pytest.approx(2.5)
        assert result.on_demand_share() == pytest.approx(1 / 5)

    def test_series(self):
        result = self.make_result()
        assert result.cumulative_interruptions() == [
            (0.5 * HOUR, 1),
            (HOUR, 2),
            (1.5 * HOUR, 3),
        ]
        assert result.completion_curve() == [(2 * HOUR, 1), (3 * HOUR, 2)]
        assert result.interruptions_by_region() == {"r1": 2, "r2": 1}
        assert result.regions_used() == {"r1": 2, "r2": 3}

    def test_summary_text(self):
        text = self.make_result().summary()
        assert "strategy" in text
        assert "interruption regions" in text

    def test_incomplete_makespan_uses_ended_at(self):
        result = self.make_result()
        result.records[0].completed_at = None
        assert result.makespan == result.ended_at
        assert not result.all_complete
