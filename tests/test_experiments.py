"""Tests for the experiment harness, reporting, and (small) drivers."""

import pytest

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import ArmSpec, mean_over_seeds, run_arm, run_arms, spotverse_policy
from repro.experiments.reporting import (
    fmt_hours,
    fmt_money,
    fmt_pct,
    pct_change,
    render_table,
)
from repro.strategies import OnDemandPolicy, SingleRegionPolicy
from repro.workloads import synthetic_workload


def od_spec(name="od", n=3, seed=1):
    return ArmSpec(
        name=name,
        policy_factory=lambda p, c, m: OnDemandPolicy(instance_type="m5.xlarge"),
        config=SpotVerseConfig(instance_type="m5.xlarge"),
        workload_factory=lambda i: synthetic_workload(f"w{i}", duration_hours=2.0),
        n_workloads=n,
        seed=seed,
        max_hours=24,
    )


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["alpha", 1.5], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]

    def test_numeric_right_alignment(self):
        text = render_table(["val"], [["1.5"], ["22.25"]])
        lines = text.splitlines()
        # Numeric cells are right-aligned within the column width.
        assert lines[2] == "  1.5"
        assert lines[3] == "22.25"

    def test_pct_change(self):
        assert pct_change(100, 50) == -50.0
        assert pct_change(0, 50) == 0.0

    def test_formatters(self):
        assert fmt_money(3.14159) == "$3.14"
        assert fmt_hours(2.5) == "2.5h"
        assert fmt_pct(-12.34) == "-12.3%"


class TestHarness:
    def test_run_arm_produces_complete_fleet(self):
        result = run_arm(od_spec())
        assert result.fleet.all_complete
        assert result.name == "od"
        assert result.provider is not None

    def test_run_arms_keys_by_name(self):
        results = run_arms([od_spec("a"), od_spec("b")])
        assert set(results) == {"a", "b"}

    def test_run_arms_rejects_duplicates(self):
        with pytest.raises(ValueError):
            run_arms([od_spec("same"), od_spec("same")])

    def test_same_seed_same_outcome(self):
        first = run_arm(od_spec(seed=5)).fleet
        second = run_arm(od_spec(seed=5)).fleet
        assert first.total_cost == pytest.approx(second.total_cost)
        assert first.makespan == second.makespan

    def test_mean_over_seeds(self):
        interruptions, hours, cost = mean_over_seeds(od_spec(), seeds=[1, 2])
        assert interruptions == 0
        assert hours > 2.0
        assert cost > 0

    def test_spotverse_policy_factory(self):
        spec = ArmSpec(
            name="sv",
            policy_factory=spotverse_policy,
            config=SpotVerseConfig(instance_type="m5.xlarge"),
            workload_factory=lambda i: synthetic_workload(f"w{i}", duration_hours=2.0),
            n_workloads=2,
            seed=3,
            max_hours=24,
        )
        result = run_arm(spec)
        assert result.fleet.all_complete
        assert result.fleet.strategy == "spotverse"

    def test_profile_overrides_respected(self):
        from repro.cloud.profiles import THRESHOLD_EPOCH_OVERRIDES

        spec = od_spec()
        spec.profile_overrides = THRESHOLD_EPOCH_OVERRIDES
        result = run_arm(spec)
        market = result.provider.market("us-east-1", "m5.xlarge")
        assert market.profile.spot_fraction == pytest.approx(0.26)


class TestSmallDrivers:
    """Reduced-size smoke runs of the figure drivers (the full-size
    versions live in benchmarks/)."""

    def test_price_diversity_small(self):
        from repro.experiments import run_price_diversity

        result = run_price_diversity(days=2)
        assert result.render()
        assert result.stats["m5.2xlarge"]["markets"] == 36

    def test_metrics_analysis_small(self):
        from repro.experiments import run_metrics_analysis

        result = run_metrics_analysis(days=10)
        assert result.render()
        assert len(result.stability_series["m5.2xlarge"]) == 10

    def test_workload_comparison_small(self):
        from repro.experiments import run_workload_comparison

        result = run_workload_comparison(n_workloads=4, seed=7)
        assert result.render()
        assert len(result.arms) == 5
        on_demand = result.arms["standard-on-demand"].fleet
        assert on_demand.total_interruptions == 0

    def test_skypilot_comparison_small(self):
        from repro.experiments import run_skypilot_comparison

        result = run_skypilot_comparison(n_workloads=4, seed=7)
        assert result.render()
        assert result.skypilot.all_complete

    def test_initial_distribution_small(self):
        from repro.experiments import run_initial_distribution_experiment

        result = run_initial_distribution_experiment(n_workloads=4, seed=7)
        assert result.render()
        distributed = result.arms["standard-distributed"].fleet
        assert {record.regions[0] for record in distributed.records} <= {
            "us-west-1",
            "ap-northeast-3",
            "eu-west-1",
            "eu-north-1",
        }

    def test_threshold_region_selection(self):
        from repro.experiments.thresholds import TABLE3_REGIONS, selected_regions_for_threshold

        for threshold in (4, 5, 6):
            assert set(selected_regions_for_threshold(threshold)) == set(
                TABLE3_REGIONS[threshold]
            )

    def test_instance_study_baselines(self):
        from repro.experiments.instance_study import TABLE1_BASELINES, compute_baselines

        assert compute_baselines() == TABLE1_BASELINES
