"""Soak test: the ring-buffer TSDB under a long-run sample volume.

Drives on the order of a million samples through :class:`RingSeries`
and a multi-series :class:`TimeSeriesStore` and asserts the properties
a perpetual service mode depends on:

* peak memory stays bounded (tracemalloc, generous ceiling — the
  point is O(capacity), not an exact byte count);
* no sample is ever dropped from the covered range: bucket counts sum
  to every sample appended, the span reaches from the first sample to
  the last, and global min/max survive every compaction;
* the downsampled tail is numerically faithful: the count-weighted
  mean of the buckets equals the mean of the raw samples.
"""

import math
import tracemalloc

import pytest

from repro.obs import RingSeries, TimeSeriesStore

#: Raw samples pushed through the single-series soak.
N_SAMPLES = 1_000_000

#: Peak-allocation ceiling for the soak loop.  A 256-bucket ring is a
#: few tens of KB; 8 MB leaves two orders of magnitude of headroom so
#: the bound only trips on a real O(n) regression.
MAX_PEAK_BYTES = 8 * 1024 * 1024


def _signal(i: int) -> float:
    """A deterministic, non-trivial sample stream (no RNG in tests)."""
    return 100.0 + 10.0 * math.sin(i / 1000.0) + (i % 97) * 0.01


class TestRingSeriesSoak:
    def test_million_samples_bounded_memory_and_faithful_tail(self):
        series = RingSeries(capacity=256)
        running_sum = 0.0
        lo = float("inf")
        hi = float("-inf")
        tracemalloc.start()
        try:
            for i in range(N_SAMPLES):
                value = _signal(i)
                running_sum += value
                lo = min(lo, value)
                hi = max(hi, value)
                series.append(float(i), value)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        assert peak <= MAX_PEAK_BYTES, f"peak {peak} bytes exceeds soak bound"
        assert len(series) <= series.capacity
        assert series.n_samples == N_SAMPLES

        buckets = series.buckets()
        # Every raw sample is folded into exactly one bucket.
        assert sum(bucket.count for bucket in buckets) == N_SAMPLES
        # The covered range never shrinks under compaction.
        assert series.span() == (0.0, float(N_SAMPLES - 1))
        assert series.first_time == 0.0
        assert buckets[-1].time == float(N_SAMPLES - 1)
        # Global extrema survive pairwise merging.
        assert min(bucket.lo for bucket in buckets) == pytest.approx(lo)
        assert max(bucket.hi for bucket in buckets) == pytest.approx(hi)
        # Count-weighted bucket means reproduce the raw mean.
        weighted = sum(bucket.value * bucket.count for bucket in buckets)
        assert weighted / N_SAMPLES == pytest.approx(
            running_sum / N_SAMPLES, rel=1e-9
        )

    def test_bucket_times_stay_sorted_through_compactions(self):
        series = RingSeries(capacity=16)
        for i in range(10_000):
            series.append(float(i), _signal(i))
        times = series.times()
        assert times == sorted(times)
        assert len(series) <= 16

    def test_stride_doubles_as_the_run_stretches(self):
        series = RingSeries(capacity=8)
        assert series.stride == 1
        for i in range(1000):
            series.append(float(i), 1.0)
        # 1000 samples through an 8-bucket ring needs stride >= 128.
        assert series.stride >= 128
        assert len(series) <= 8


class TestStoreSoak:
    def test_many_series_stay_independent_and_bounded(self):
        store = TimeSeriesStore(capacity=64)
        regions = [f"region-{i}" for i in range(6)]
        per_series = 20_000
        for i in range(per_series):
            for region in regions:
                store.record("spot_price", float(i), _signal(i), region=region)
        assert len(store) == len(regions)
        for region in regions:
            series = store.get("spot_price", region=region)
            assert series is not None
            assert series.n_samples == per_series
            assert len(series) <= 64
            assert sum(b.count for b in series.buckets()) == per_series

    def test_points_export_round_trips_the_downsampled_shape(self):
        store = TimeSeriesStore(capacity=16)
        for i in range(5_000):
            store.record("hazard_per_hour", float(i), _signal(i), region="eu-north-1")
        points = list(store.points())
        assert len(points) <= 16
        rebuilt = TimeSeriesStore.from_points(points)
        series = rebuilt.get("hazard_per_hour", region="eu-north-1")
        original = store.get("hazard_per_hour", region="eu-north-1")
        assert series.times() == original.times()
        assert series.values() == pytest.approx(original.values())
