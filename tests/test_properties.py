"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.consensus import apply_variants
from repro.bio.diversity import bray_curtis, shannon_index, simpson_index
from repro.bio.fasta import FastaRecord, parse_fasta, write_fasta
from repro.bio.fastq import FastqRecord, parse_fastq, write_fastq
from repro.bio.seq import gc_content, hamming_distance, reverse_complement
from repro.bio.trim import trim_quality
from repro.bio.vcf import Variant, parse_vcf, write_vcf
from repro.cloud.interruptions import interruption_probability
from repro.cloud.market import diurnal_factor
from repro.galaxy.checkpoint import InMemoryCheckpointStore
from repro.sim.clock import DAY
from repro.sim.events import EventQueue

dna = st.text(alphabet="ACGT", min_size=1, max_size=200)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=100)


class TestSequenceProperties:
    @given(dna)
    def test_reverse_complement_is_involution(self, sequence):
        assert reverse_complement(reverse_complement(sequence)) == sequence

    @given(dna)
    def test_reverse_complement_preserves_gc(self, sequence):
        assert gc_content(reverse_complement(sequence)) == pytest.approx(
            gc_content(sequence)
        )

    @given(dna, dna)
    def test_hamming_is_metric_on_equal_lengths(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0
        assert 0 <= hamming_distance(a, b) <= n

    @given(st.lists(st.tuples(st.text("abcdefgh", min_size=1, max_size=8), dna_nonempty),
                    min_size=1, max_size=10, unique_by=lambda t: t[0]))
    def test_fasta_roundtrip(self, pairs):
        records = [FastaRecord(name, "", seq) for name, seq in pairs]
        assert parse_fasta(write_fasta(records)) == records

    @given(st.lists(
        st.tuples(
            st.text("rxyz0123456789", min_size=1, max_size=10),
            dna_nonempty,
        ),
        min_size=1,
        max_size=8,
    ))
    def test_fastq_roundtrip(self, pairs):
        records = [
            FastqRecord(name, seq, tuple([30] * len(seq))) for name, seq in pairs
        ]
        assert parse_fastq(write_fastq(records)) == records

    @given(st.lists(st.integers(min_value=0, max_value=41), min_size=1, max_size=80),
           st.integers(min_value=0, max_value=41))
    def test_quality_trim_never_lengthens(self, qualities, cutoff):
        sequence = "A" * len(qualities)
        read = FastqRecord("r", sequence, tuple(qualities))
        trimmed = trim_quality([read], quality_cutoff=cutoff, min_length=0)
        if trimmed:
            survivor = trimmed[0]
            assert len(survivor) <= len(read)
            assert survivor.sequence == sequence[: len(survivor)]
            assert survivor.qualities == tuple(qualities[: len(survivor)])


class TestVcfProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=500),
                  st.sampled_from("ACGT"), st.sampled_from("ACGT")),
        min_size=0, max_size=20, unique_by=lambda t: t[0],
    ))
    def test_vcf_roundtrip(self, triples):
        variants = [Variant("c", pos, ref, alt) for pos, ref, alt in triples]
        parsed = parse_vcf(write_vcf(variants))
        assert [(v.pos, v.ref, v.alt) for v in parsed] == [
            (v.pos, v.ref, v.alt) for v in sorted(variants, key=lambda v: v.pos)
        ]

    @given(dna.filter(lambda s: len(s) >= 20),
           st.sets(st.integers(min_value=1, max_value=20), max_size=8))
    def test_snp_application_preserves_length(self, reference, positions):
        variants = []
        for pos in positions:
            ref_base = reference[pos - 1]
            alt = "A" if ref_base != "A" else "C"
            variants.append(Variant("c", pos, ref_base, alt))
        mutated = apply_variants(reference, variants)
        assert len(mutated) == len(reference)
        assert hamming_distance(reference, mutated) == len(variants)


class TestDiversityProperties:
    counts = st.dictionaries(
        st.text("abcdef", min_size=1, max_size=3),
        st.integers(min_value=0, max_value=100),
        min_size=1,
        max_size=10,
    )

    @given(counts)
    def test_shannon_bounds(self, sample):
        n_features = sum(1 for v in sample.values() if v > 0)
        value = shannon_index(sample)
        assert value >= 0
        if n_features > 0:
            assert value <= math.log(n_features) + 1e-9

    @given(counts)
    def test_simpson_bounds(self, sample):
        assert 0 <= simpson_index(sample) < 1

    @given(counts, counts)
    def test_bray_curtis_symmetric_bounded(self, a, b):
        if sum(a.values()) + sum(b.values()) == 0:
            return
        d = bray_curtis(a, b)
        assert 0 <= d <= 1
        assert d == pytest.approx(bray_curtis(b, a))

    @given(counts.filter(lambda c: sum(c.values()) > 0))
    def test_bray_curtis_identity(self, a):
        assert bray_curtis(a, a) == pytest.approx(0.0)


class TestSimProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_event_queue_pops_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False),
           st.floats(min_value=0, max_value=DAY * 10, allow_nan=False))
    def test_interruption_probability_is_probability(self, hazard, dt):
        p = interruption_probability(hazard, dt)
        assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=0, max_value=10 * DAY, allow_nan=False),
           st.floats(min_value=0, max_value=24, allow_nan=False))
    def test_diurnal_factor_non_negative_and_periodic(self, now, peak):
        factor = diurnal_factor(now, peak)
        assert factor >= 0
        assert factor == pytest.approx(diurnal_factor(now + DAY, peak), abs=1e-6)

    @given(st.floats(min_value=0, max_value=24, allow_nan=False))
    @settings(max_examples=20)
    def test_diurnal_factor_daily_mean_is_one(self, peak):
        samples = [diurnal_factor(t * DAY / 1000, peak) for t in range(1000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)


class TestAlignmentProperties:
    @given(st.integers(min_value=0, max_value=140), st.data())
    @settings(max_examples=30)
    def test_exact_read_recovers_position(self, start, data):
        from repro.bio.align import align_read
        from repro.bio.seq import random_genome

        genome = random_genome(200, np.random.default_rng(5))
        length = data.draw(st.integers(min_value=8, max_value=40))
        start = min(start, len(genome) - length)
        read = genome[start : start + length]
        alignment = align_read(genome, read)
        assert alignment.identity() == 1.0
        assert alignment.cigar == f"{length}M"
        # Repeats can yield other perfect placements, but the aligned
        # window must reproduce the read exactly.
        assert genome[alignment.ref_start : alignment.ref_end] == read

    @given(dna.filter(lambda s: len(s) >= 10))
    @settings(max_examples=30)
    def test_identity_bounds(self, genome):
        from repro.bio.align import align_read

        read = genome[: max(4, len(genome) // 2)]
        alignment = align_read(genome, read)
        assert 0.0 <= alignment.identity() <= 1.0
        assert alignment.score <= 2 * len(read)


class TestPhyloProperties:
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=100))
    @settings(max_examples=20)
    def test_nj_preserves_taxa_and_nonnegative_branches(self, n, seed):
        from repro.bio.phylo import neighbor_joining

        rng = np.random.default_rng(seed)
        raw = rng.random((n, n))
        matrix = (raw + raw.T) / 2
        np.fill_diagonal(matrix, 0.0)
        names = [f"t{i}" for i in range(n)]
        tree = neighbor_joining(names, matrix)
        assert sorted(tree.leaves()) == names
        assert tree.total_branch_length() >= 0

        def check(node):
            for child, length in node.children:
                assert length >= 0
                check(child)

        check(tree)


class TestCheckpointProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    def test_checkpoint_progress_is_monotone(self, saves):
        store = InMemoryCheckpointStore()
        expected = None
        for value in saves:
            advanced = store.save("w", value)
            if expected is None:
                # The very first save always lands.
                assert advanced
                expected = value
            elif value > expected:
                assert advanced
                expected = value
            else:
                assert not advanced
            assert store.load("w") == expected
