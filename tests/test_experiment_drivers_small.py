"""Small-size smoke tests for the remaining experiment drivers.

Full-size runs with shape assertions live in ``benchmarks/``; these
reduced runs keep the drivers themselves under unit-test coverage.
"""


from repro.experiments.ablations import (
    run_checkpoint_backend_ablation,
    run_checkpoint_granularity,
    run_fallback_ablation,
    run_migration_ablation,
    run_predictive_policy_ablation,
)
from repro.experiments.footprint import run_footprint_study
from repro.experiments.motivation import run_motivation_experiment
from repro.experiments.report_all import ALL_EXPERIMENTS
from repro.experiments.time_patterns import run_time_pattern_study


class TestDriversSmall:
    def test_motivation_small(self):
        result = run_motivation_experiment(n_workloads=6, seed=7, duration_hours=4.0)
        assert result.render()
        assert set(result.deltas) == {"standard", "checkpoint"}

    def test_migration_ablation_small(self):
        result = run_migration_ablation(n_workloads=6, seed=7)
        assert result.render()
        assert set(result.arms) == {"random-migration", "cheapest-migration"}

    def test_fallback_ablation_small(self):
        result = run_fallback_ablation(n_workloads=3, seed=7)
        assert result.with_fallback.fleet.on_demand_share() == 1.0

    def test_checkpoint_granularity_small(self):
        result = run_checkpoint_granularity(segment_counts=[1, 10], n_workloads=5, seed=7)
        assert set(result.arms) == {1, 10}

    def test_checkpoint_backend_small(self):
        result = run_checkpoint_backend_ablation(n_workloads=5, seed=7)
        assert set(result.arms) == {"s3", "efs"}

    def test_predictive_ablation_small(self):
        result = run_predictive_policy_ablation(n_workloads=5, seed=7)
        assert result.arms["spotverse-predictive"].fleet.all_complete

    def test_footprint_small(self):
        result = run_footprint_study(fleet_sizes=(5, 15), duration_hours=3.0, seed=7)
        assert set(result.concentrated) == {5, 15}
        rates = result.interruptions_per_workload(result.concentrated)
        assert all(rate >= 0 for rate in rates.values())

    def test_time_patterns_small(self):
        result = run_time_pattern_study(
            n_workloads=10, observation_hours=12.0, seed=7
        )
        assert result.render()
        assert sum(result.by_hour.values()) == result.arm.fleet.total_interruptions


class TestReportAllRegistry:
    def test_experiment_ids_unique(self):
        ids = [experiment_id for experiment_id, _, _ in ALL_EXPERIMENTS]
        assert len(set(ids)) == len(ids)

    def test_every_paper_artifact_covered(self):
        ids = {experiment_id for experiment_id, _, _ in ALL_EXPERIMENTS}
        for required in (
            "fig2", "fig3", "fig4", "fig7", "fig8+table1", "fig9",
            "fig10+tables2-3", "table4",
        ):
            assert required in ids, f"missing paper artifact {required}"

    def test_runners_are_callable(self):
        for _, title, runner in ALL_EXPERIMENTS:
            assert callable(runner)
            assert title
