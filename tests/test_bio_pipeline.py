"""Unit tests for QC, trimming, demux, denoising, phylogeny, diversity,
consensus reconstruction, lineage calling, and the SRA archive."""

import numpy as np
import pytest

from repro.bio.consensus import apply_variants, reconstruct_genome
from repro.bio.dada import denoise, feature_table
from repro.bio.demux import demultiplex
from repro.bio.diversity import (
    beta_diversity_matrix,
    bray_curtis,
    observed_features,
    rarefaction_curve,
    rarefy,
    shannon_index,
    simpson_index,
)
from repro.bio.fasta import FastaRecord
from repro.bio.fastq import FastqRecord, simulate_reads
from repro.bio.lineage import classify_batch, classify_lineage, default_lineage_signatures
from repro.bio.phylo import kmer_distance_matrix, neighbor_joining
from repro.bio.qc import fastqc, multiqc
from repro.bio.seq import mutate, random_genome
from repro.bio.sra import SRAArchive
from repro.bio.trim import trim_adapters, trim_quality
from repro.bio.vcf import Variant
from repro.errors import BioError, SequenceFormatError


def make_reads(n=30, seed=0, **kwargs):
    genome = random_genome(400, np.random.default_rng(seed))
    return simulate_reads(genome, n, rng=np.random.default_rng(seed + 1), **kwargs)


class TestQC:
    def test_report_statistics(self):
        reads = make_reads(50, read_length=80)
        report = fastqc(reads, name="s1")
        assert report.n_reads == 50
        assert report.mean_read_length == 80
        assert 20 < report.mean_quality < 40
        assert len(report.per_position_quality) == 80
        assert 30 < report.gc_percent < 70

    def test_empty_input_flagged(self):
        report = fastqc([], name="empty")
        assert report.flags == ["no-reads"]
        assert not report.passed

    def test_low_quality_flagged(self):
        reads = [FastqRecord("r", "ACGT", (5, 5, 5, 5))]
        assert "mean-quality" in fastqc(reads).flags

    def test_duplication_flagged(self):
        reads = [FastqRecord(f"r{i}", "ACGT", (30,) * 4) for i in range(10)]
        report = fastqc(reads)
        assert report.duplication_fraction == 0.9
        assert "duplication" in report.flags

    def test_multiqc_aggregates(self):
        reports = [fastqc(make_reads(20, seed=s), name=f"s{s}") for s in range(3)]
        summary = multiqc(reports)
        assert summary["n_samples"] == 3
        assert summary["total_reads"] == 60
        assert 0 <= summary["pass_rate"] <= 1

    def test_multiqc_empty(self):
        assert multiqc([])["n_samples"] == 0


class TestTrim:
    def test_adapter_removed_exact(self):
        adapter = "AGATCGGAAGAG"
        reads = [FastqRecord("r", "ACGTACGT" + adapter, tuple([30] * 20))]
        trimmed = trim_adapters(reads, adapter, min_length=1)
        assert trimmed[0].sequence == "ACGTACGT"
        assert len(trimmed[0].qualities) == 8

    def test_partial_adapter_at_end(self):
        adapter = "AGATCGGAAGAG"
        reads = [FastqRecord("r", "ACGTACGT" + adapter[:5], tuple([30] * 13))]
        trimmed = trim_adapters(reads, adapter, min_overlap=3, min_length=1)
        assert trimmed[0].sequence == "ACGTACGT"

    def test_no_adapter_untouched(self):
        reads = [FastqRecord("r", "ACGTACGTAC", tuple([30] * 10))]
        assert trim_adapters(reads, "GGGGGG", min_length=1) == reads

    def test_short_survivors_dropped(self):
        adapter = "AGATCG"
        reads = [FastqRecord("r", "AC" + adapter, tuple([30] * 8))]
        assert trim_adapters(reads, adapter, min_length=5) == []

    def test_empty_adapter_rejected(self):
        with pytest.raises(ValueError):
            trim_adapters([], "")

    def test_quality_trim_cuts_bad_tail(self):
        reads = [FastqRecord("r", "ACGTACGT", (35, 35, 35, 35, 5, 5, 5, 5))]
        trimmed = trim_quality(reads, quality_cutoff=20, min_length=1)
        assert trimmed[0].sequence == "ACGT"

    def test_quality_trim_keeps_good_read(self):
        reads = [FastqRecord("r", "ACGT", (35, 35, 35, 35))]
        assert trim_quality(reads, quality_cutoff=20) == reads

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            trim_quality([], -1)


class TestDemux:
    BARCODES = {"a": "ACGT", "b": "TGCA"}

    def test_assignment_and_stripping(self):
        reads = [
            FastqRecord("r1", "ACGT" + "GGGG", tuple([30] * 8)),
            FastqRecord("r2", "TGCA" + "CCCC", tuple([30] * 8)),
        ]
        assigned, unassigned = demultiplex(reads, self.BARCODES)
        assert [read.sequence for read in assigned["a"]] == ["GGGG"]
        assert [read.sequence for read in assigned["b"]] == ["CCCC"]
        assert unassigned == []

    def test_mismatch_tolerance(self):
        reads = [FastqRecord("r", "ACGA" + "GGGG", tuple([30] * 8))]
        assigned, unassigned = demultiplex(reads, self.BARCODES, max_mismatches=1)
        assert len(assigned["a"]) == 1
        assigned, unassigned = demultiplex(reads, self.BARCODES, max_mismatches=0)
        assert unassigned == reads

    def test_ambiguous_rejected(self):
        barcodes = {"a": "AAAA", "b": "TTTT"}
        reads = [FastqRecord("r", "AATT" + "GGGG", tuple([30] * 8))]
        assigned, unassigned = demultiplex(reads, barcodes, max_mismatches=2)
        assert unassigned == reads

    def test_too_short_read_unassigned(self):
        reads = [FastqRecord("r", "ACG", (30, 30, 30))]
        _, unassigned = demultiplex(reads, self.BARCODES)
        assert unassigned == reads

    def test_unequal_barcodes_rejected(self):
        with pytest.raises(ValueError):
            demultiplex([], {"a": "ACGT", "b": "ACG"})
        with pytest.raises(ValueError):
            demultiplex([], {})


class TestDenoise:
    def test_error_absorption(self):
        true_seq = "ACGTACGTACGTACGTACGT"
        reads = [FastqRecord(f"r{i}", true_seq, tuple([35] * 20)) for i in range(10)]
        noisy = true_seq[:10] + "T" + true_seq[11:]
        reads.append(FastqRecord("noisy", noisy, tuple([35] * 20)))
        result = denoise(reads)
        assert result.n_asvs == 1
        assert result.asv_counts[true_seq] == 11
        assert result.n_discarded == 0

    def test_distant_rare_sequence_discarded(self):
        reads = [FastqRecord(f"r{i}", "A" * 20, tuple([35] * 20)) for i in range(5)]
        reads.append(FastqRecord("junk", "T" * 20, tuple([35] * 20)))
        result = denoise(reads, max_distance=2)
        assert result.n_discarded == 1

    def test_two_abundant_variants_kept(self):
        reads = [FastqRecord(f"a{i}", "A" * 20, tuple([35] * 20)) for i in range(5)]
        reads += [FastqRecord(f"t{i}", "T" * 20, tuple([35] * 20)) for i in range(5)]
        assert denoise(reads).n_asvs == 2

    def test_empty_and_singleton_inputs(self):
        assert denoise([]).n_asvs == 0
        result = denoise([FastqRecord("r", "ACGT", (35,) * 4)], min_abundance=2)
        assert result.n_asvs == 1  # degenerate promotion

    def test_feature_table_shape(self):
        per_sample = {
            "s1": denoise([FastqRecord("r", "AAAA", (35,) * 4)] * 3),
            "s2": denoise([FastqRecord("r", "TTTT", (35,) * 4)] * 3),
        }
        table = feature_table(per_sample)
        assert set(table) == {"s1", "s2"}
        assert table["s1"]["AAAA"] == 3
        assert table["s1"]["TTTT"] == 0


class TestPhylo:
    def test_tree_groups_similar_sequences(self):
        rng = np.random.default_rng(0)
        genome = random_genome(600, rng)
        sequences = {
            "a": genome,
            "a2": mutate(genome, 10, rng),
            "b": random_genome(600, np.random.default_rng(9)),
        }
        names, matrix = kmer_distance_matrix(sequences)
        tree = neighbor_joining(names, matrix)
        newick = tree.to_newick()
        assert newick.endswith(";")
        assert set(tree.leaves()) == {"a", "a2", "b"}
        # a and a2 are the closest pair in the distance matrix.
        ia, ia2, ib = names.index("a"), names.index("a2"), names.index("b")
        assert matrix[ia][ia2] < matrix[ia][ib]

    def test_distance_matrix_properties(self):
        names, matrix = kmer_distance_matrix({"x": "ACGT" * 10, "y": "TTTT" * 10})
        assert matrix[0][0] == 0.0
        assert matrix[0][1] == matrix[1][0] > 0

    def test_two_taxa_tree(self):
        tree = neighbor_joining(["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert sorted(tree.leaves()) == ["a", "b"]
        assert tree.total_branch_length() == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            neighbor_joining(["a"], np.zeros((1, 1)))
        with pytest.raises(ValueError):
            neighbor_joining(["a", "b"], np.zeros((3, 3)))

    def test_branch_lengths_non_negative(self):
        rng = np.random.default_rng(4)
        sequences = {f"s{i}": random_genome(200, rng) for i in range(6)}
        names, matrix = kmer_distance_matrix(sequences)
        tree = neighbor_joining(names, matrix)

        def check(node):
            for child, length in node.children:
                assert length >= 0
                check(child)

        check(tree)


class TestDiversity:
    def test_shannon_known_value(self):
        assert shannon_index({"a": 1, "b": 1}) == pytest.approx(np.log(2))
        assert shannon_index({"a": 5}) == 0.0
        assert shannon_index({}) == 0.0

    def test_simpson_range(self):
        assert simpson_index({"a": 1, "b": 1}) == pytest.approx(0.5)
        assert simpson_index({"a": 9}) == 0.0

    def test_bray_curtis_identity_and_disjoint(self):
        assert bray_curtis({"a": 3}, {"a": 3}) == 0.0
        assert bray_curtis({"a": 3}, {"b": 3}) == 1.0
        with pytest.raises(ValueError):
            bray_curtis({}, {})

    def test_beta_matrix_symmetric(self):
        table = {"s1": {"a": 3, "b": 1}, "s2": {"a": 1, "b": 3}, "s3": {"c": 4}}
        samples, matrix = beta_diversity_matrix(table)
        assert samples == ["s1", "s2", "s3"]
        assert np.allclose(matrix, matrix.T)
        assert matrix[0][2] == 1.0

    def test_rarefy_depth(self):
        counts = {"a": 50, "b": 50}
        rarefied = rarefy(counts, 20, np.random.default_rng(0))
        assert sum(rarefied.values()) == 20
        with pytest.raises(ValueError):
            rarefy({"a": 5}, 10)

    def test_rarefaction_curve_monotone(self):
        counts = {f"f{i}": 10 for i in range(20)}
        curve = rarefaction_curve(counts, [10, 50, 150], np.random.default_rng(0))
        values = [value for _, value in curve]
        assert values == sorted(values)

    def test_observed_features(self):
        assert observed_features({"a": 2, "b": 0}) == 1


class TestConsensusAndLineage:
    def test_apply_snp_and_indel(self):
        reference = "AAAAACCCCC"
        variants = [
            Variant("r", 2, "A", "G"),
            Variant("r", 6, "CC", "C"),  # deletion
        ]
        assert apply_variants(reference, variants) == "AGAAACCCC"

    def test_insertion(self):
        assert apply_variants("AAAA", [Variant("r", 2, "A", "ATT")]) == "AATTAA"

    def test_ref_mismatch_rejected(self):
        with pytest.raises(SequenceFormatError):
            apply_variants("AAAA", [Variant("r", 1, "G", "T")])

    def test_out_of_range_rejected(self):
        with pytest.raises(SequenceFormatError):
            apply_variants("AAAA", [Variant("r", 4, "AA", "A")])

    def test_overlap_rejected(self):
        with pytest.raises(SequenceFormatError):
            apply_variants(
                "AAAAAA",
                [Variant("r", 2, "AA", "A"), Variant("r", 3, "A", "G")],
            )

    def test_reconstruct_checks_chromosome(self):
        reference = FastaRecord("ref", "", "ACGTACGT")
        with pytest.raises(SequenceFormatError):
            reconstruct_genome(reference, [Variant("other", 1, "A", "G")], "iso")

    def test_full_reconstruction_and_classification(self):
        reference = FastaRecord("ref", "", random_genome(2000, np.random.default_rng(3)))
        signatures = default_lineage_signatures(2000)
        lineage = "B.1.617.2"
        variants = [
            Variant("ref", pos, reference.sequence[pos - 1], base)
            for pos, base in signatures[lineage]
            if reference.sequence[pos - 1] != base
        ]
        genome = reconstruct_genome(reference, variants, "iso-1")
        call = classify_lineage(genome, signatures)
        assert call.lineage == lineage
        assert call.confidence == 1.0

    def test_unassigned_below_floor(self):
        genome = FastaRecord("g", "", "A" * 2000)
        signatures = {"X": tuple((100 * k, "T") for k in range(1, 6))}
        call = classify_lineage(genome, signatures)
        assert call.lineage == "unassigned"

    def test_signature_validation(self):
        genome = FastaRecord("g", "", "ACGT")
        with pytest.raises(BioError):
            classify_lineage(genome, {})
        with pytest.raises(BioError):
            classify_lineage(genome, {"X": ((100, "A"),)})
        with pytest.raises(BioError):
            classify_lineage(genome, {"X": ()})

    def test_classify_batch(self):
        reference = FastaRecord("ref", "", random_genome(2000, np.random.default_rng(3)))
        calls = classify_batch([reference, reference], default_lineage_signatures(2000))
        assert len(calls) == 2


class TestSRAArchive:
    def test_deterministic_per_accession(self):
        a = SRAArchive(seed=1).fetch("SRR1")
        b = SRAArchive(seed=1).fetch("SRR1")
        assert a.genome == b.genome
        assert a.to_fastq() == b.to_fastq()

    def test_different_accessions_differ(self):
        archive = SRAArchive(seed=1)
        assert archive.fetch("SRR1").genome != archive.fetch("SRR2").genome

    def test_cache(self):
        archive = SRAArchive(seed=1)
        assert archive.fetch("X") is archive.fetch("X")
        assert archive.cached_accessions == ["X"]

    def test_run_list(self):
        datasets = SRAArchive(seed=0).fetch_run_list("PRJ", 3)
        assert [d.accession for d in datasets] == ["PRJ_0000", "PRJ_0001", "PRJ_0002"]
        with pytest.raises(BioError):
            SRAArchive().fetch_run_list("PRJ", 0)

    def test_validation(self):
        with pytest.raises(BioError):
            SRAArchive().fetch("")
        with pytest.raises(BioError):
            SRAArchive(genome_length=50, read_length=100)
