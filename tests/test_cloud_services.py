"""Integration-style tests for the simulated AWS services."""

import pytest

from repro.cloud.billing import CostCategory
from repro.cloud.provider import CloudProvider
from repro.cloud.services.cloudformation import (
    BucketResource,
    LambdaResource,
    RuleResource,
    ScheduleResource,
    StackTemplate,
    TableResource,
)
from repro.cloud.services.ec2 import InstanceLifecycle, InstanceState, SpotRequestState
from repro.cloud.services.stepfunctions import ExecutionStatus, RetryPolicy
from repro.errors import (
    CapacityError,
    ConditionalCheckFailedError,
    LambdaError,
    NoSuchBucketError,
    NoSuchKeyError,
    NoSuchTableError,
    StackError,
)
from repro.sim.clock import HOUR, MINUTE


@pytest.fixture()
def provider():
    return CloudProvider(seed=11)


class TestEC2:
    def test_on_demand_launch_runs_and_bills(self, provider):
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w1")
        provider.engine.run_until(2 * HOUR)
        provider.ec2.terminate_instances([instance.instance_id])
        assert instance.state is InstanceState.TERMINATED
        assert instance.accrued_cost == pytest.approx(0.192 * 2, rel=1e-6)
        assert provider.ledger.total_for_tag("w1") == pytest.approx(0.192 * 2, rel=1e-6)

    def test_spot_request_fulfills_and_is_cheaper_than_od(self, provider):
        launched = []
        provider.ec2.request_spot_instances(
            "us-west-1", "m5.xlarge", tag="w2", on_fulfilled=lambda req, inst: launched.append(inst)
        )
        provider.engine.run_until(HOUR)
        assert launched, "stable-region spot request should fulfill within an hour"
        instance = launched[0]
        assert instance.lifecycle is InstanceLifecycle.SPOT
        provider.engine.run_until(3 * HOUR)
        provider.ec2.terminate_instances([instance.instance_id])
        od_cost = provider.price_book.od_price("us-west-1", "m5.xlarge") * instance.uptime(
            provider.engine.now
        ) / HOUR
        assert instance.accrued_cost < od_cost

    def test_spot_unavailable_type_region_rejected(self, provider):
        with pytest.raises(CapacityError):
            provider.ec2.request_spot_instances("ca-central-1", "p3.2xlarge")

    def test_interruption_emits_notice_then_reclaims(self):
        # A very hazardous market makes the interruption deterministic
        # within a short horizon.
        provider = CloudProvider(seed=5)
        market = provider.market("us-east-1", "m5.xlarge")
        market.profile = type(market.profile)(
            region="us-east-1", instance_type="m5.xlarge", interruption_freq_pct=3000.0
        )
        market.force_frequency(3000.0)
        notices = []
        provider.ec2.on_interruption_notice(lambda inst: notices.append(provider.engine.now))
        instance = provider.ec2._launch(
            "us-east-1", "m5.xlarge", InstanceLifecycle.SPOT, tag="w3"
        )
        provider.engine.run_until(2 * HOUR)
        assert notices, "hazard of 21/hour must interrupt within two hours"
        assert instance.state is InstanceState.INTERRUPTED
        assert instance.end_time == pytest.approx(notices[0] + 2 * MINUTE)
        assert provider.ec2.interruption_count() == 1
        warning_events = [
            event
            for event in provider.eventbridge.event_log
            if event["detail-type"] == "EC2 Spot Instance Interruption Warning"
        ]
        assert warning_events and warning_events[0]["detail"]["instance-id"] == instance.instance_id

    def test_terminate_during_notice_window_prevents_interrupted_state(self):
        provider = CloudProvider(seed=5)
        market = provider.market("us-east-1", "m5.xlarge")
        market.force_frequency(3000.0)
        interrupted = []
        provider.ec2.on_interruption_notice(lambda inst: interrupted.append(inst))
        provider.ec2._launch("us-east-1", "m5.xlarge", InstanceLifecycle.SPOT, tag="w")
        provider.engine.run_until(2 * HOUR)
        assert interrupted
        # Terminating an INTERRUPTING instance during a later notice is
        # exercised by the controller; here we assert idempotence.
        instance = interrupted[0]
        provider.ec2.terminate_instances([instance.instance_id])
        provider.ec2.terminate_instances([instance.instance_id])
        assert instance.state in (InstanceState.TERMINATED, InstanceState.INTERRUPTED)

    def test_describe_filters(self, provider):
        provider.ec2.run_on_demand("us-east-1", "m5.large")
        provider.ec2.run_on_demand("eu-west-1", "m5.large")
        east = provider.ec2.describe_instances(region="us-east-1")
        assert len(east) == 1
        running = provider.ec2.describe_instances(states=[InstanceState.RUNNING])
        assert len(running) == 2

    def test_open_request_retry_path(self, provider):
        request = provider.ec2.request_spot_instances("us-east-1", "m5.xlarge", tag="w")
        if request.state is SpotRequestState.OPEN:
            provider.ec2.retry_open_request(request.request_id)
            assert request.attempts == 2

    def test_cancel_open_request(self, provider):
        request = provider.ec2.request_spot_instances("us-east-1", "m5.xlarge")
        if request.state is SpotRequestState.OPEN:
            provider.ec2.cancel_spot_request(request.request_id)
            assert request.state is SpotRequestState.CANCELLED
            provider.engine.run_until(HOUR)
            assert request.instance_id is None

    def test_spot_price_history_describe(self, provider):
        provider.engine.run_until(5 * HOUR)
        history = provider.ec2.describe_spot_price_history("us-east-1", "m5.xlarge")
        assert len(history) == 5


class TestS3:
    def test_put_get_roundtrip(self, provider):
        provider.s3.create_bucket("logs", "us-east-1")
        provider.s3.put_object("logs", "a/b.txt", b"hello")
        assert provider.s3.get_object("logs", "a/b.txt").body == b"hello"
        assert provider.s3.list_objects("logs", prefix="a/") == ["a/b.txt"]

    def test_cross_region_put_charges_transfer(self, provider):
        provider.s3.create_bucket("ckpt", "us-east-1")
        provider.s3.put_object(
            "ckpt", "k", b"x" * 1024, source_region="eu-west-1", tag="w"
        )
        assert provider.ledger.total(CostCategory.S3_TRANSFER) > 0

    def test_same_region_put_has_no_transfer_charge(self, provider):
        provider.s3.create_bucket("ckpt", "us-east-1")
        provider.s3.put_object("ckpt", "k", b"x" * 1024, source_region="us-east-1")
        assert provider.ledger.total(CostCategory.S3_TRANSFER) == 0

    def test_missing_bucket_and_key_raise(self, provider):
        with pytest.raises(NoSuchBucketError):
            provider.s3.put_object("ghost", "k", b"")
        provider.s3.create_bucket("b", "us-east-1")
        with pytest.raises(NoSuchKeyError):
            provider.s3.get_object("b", "missing")

    def test_delete_is_idempotent(self, provider):
        provider.s3.create_bucket("b", "us-east-1")
        provider.s3.put_object("b", "k", b"1")
        provider.s3.delete_object("b", "k")
        provider.s3.delete_object("b", "k")
        assert not provider.s3.head_object("b", "k")


class TestDynamoDB:
    def test_put_get_update_query(self, provider):
        provider.dynamodb.create_table("metrics", "region", sort_key="itype")
        provider.dynamodb.put_item(
            "metrics", {"region": "us-east-1", "itype": "m5.xlarge", "price": 0.05}
        )
        provider.dynamodb.update_item(
            "metrics", "us-east-1", "m5.xlarge", updates={"score": 4.2}
        )
        item = provider.dynamodb.get_item("metrics", "us-east-1", "m5.xlarge")
        assert item["price"] == 0.05 and item["score"] == 4.2
        provider.dynamodb.put_item(
            "metrics", {"region": "us-east-1", "itype": "a1.large", "price": 0.01}
        )
        rows = provider.dynamodb.query("metrics", "us-east-1")
        assert [row["itype"] for row in rows] == ["a1.large", "m5.xlarge"]

    def test_conditional_write_enforced(self, provider):
        provider.dynamodb.create_table("ckpt", "wid")
        provider.dynamodb.put_item("ckpt", {"wid": "w1", "segment": 5})
        with pytest.raises(ConditionalCheckFailedError):
            provider.dynamodb.put_item(
                "ckpt",
                {"wid": "w1", "segment": 3},
                condition=lambda old: old is None or old["segment"] < 3,
            )
        # A newer segment passes the same guard.
        provider.dynamodb.put_item(
            "ckpt",
            {"wid": "w1", "segment": 7},
            condition=lambda old: old is None or old["segment"] < 7,
        )
        assert provider.dynamodb.get_item("ckpt", "w1")["segment"] == 7

    def test_scan_with_predicate(self, provider):
        provider.dynamodb.create_table("t", "k")
        for i in range(5):
            provider.dynamodb.put_item("t", {"k": f"k{i}", "v": i})
        evens = provider.dynamodb.scan("t", predicate=lambda item: item["v"] % 2 == 0)
        assert len(evens) == 3

    def test_missing_table_raises(self, provider):
        with pytest.raises(NoSuchTableError):
            provider.dynamodb.get_item("ghost", "k")

    def test_operations_charge_request_units(self, provider):
        provider.dynamodb.create_table("t", "k")
        provider.dynamodb.put_item("t", {"k": "a"})
        provider.dynamodb.get_item("t", "a")
        assert provider.ledger.total(CostCategory.DYNAMODB) > 0


class TestLambdaAndStepFunctions:
    def test_invoke_returns_result_and_charges(self, provider):
        provider.lambda_.create_function("echo", lambda event, ctx: event["x"] * 2)
        assert provider.lambda_.invoke("echo", {"x": 21}) == 42
        assert provider.ledger.total(CostCategory.LAMBDA) > 0
        assert provider.lambda_.get_function("echo").invocations == 1

    def test_handler_exception_wrapped(self, provider):
        def boom(event, ctx):
            raise RuntimeError("nope")

        provider.lambda_.create_function("boom", boom)
        with pytest.raises(LambdaError):
            provider.lambda_.invoke("boom")
        assert provider.lambda_.get_function("boom").failures == 1

    def test_timeout_configuration_fails_invocation(self, provider):
        provider.lambda_.create_function(
            "slow", lambda e, c: None, timeout=1.0, simulated_duration=5.0
        )
        with pytest.raises(LambdaError):
            provider.lambda_.invoke("slow")

    def test_step_functions_retry_until_success(self, provider):
        attempts = []

        def flaky(event):
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "done"

        provider.stepfunctions.create_state_machine(
            "retry-me", flaky, retry=RetryPolicy(max_attempts=5, interval=10.0)
        )
        results = []
        provider.stepfunctions.start_execution(
            "retry-me", on_success=lambda out: results.append(out)
        )
        provider.engine.run_until(5 * MINUTE)
        assert results == ["done"]
        assert len(attempts) == 3

    def test_step_functions_exhausts_retries(self, provider):
        def always_fails(event):
            raise RuntimeError("permanent")

        provider.stepfunctions.create_state_machine(
            "doomed", always_fails, retry=RetryPolicy(max_attempts=2, interval=5.0)
        )
        failures = []
        execution = provider.stepfunctions.start_execution(
            "doomed", on_failure=lambda err: failures.append(err)
        )
        provider.engine.run_until(MINUTE)
        assert execution.status is ExecutionStatus.FAILED
        assert "permanent" in failures[0]
        assert execution.attempts == 2


class TestEventBridgeAndCloudWatch:
    def test_rule_matching_and_delivery(self, provider):
        seen = []
        provider.eventbridge.put_rule("r", "aws.ec2", "TestEvent")
        provider.eventbridge.add_target("r", lambda event: seen.append(event["detail"]["k"]))
        provider.eventbridge.put_event("aws.ec2", "TestEvent", {"k": 1})
        provider.eventbridge.put_event("aws.ec2", "OtherEvent", {"k": 2})
        provider.engine.run_until(10.0)
        assert seen == [1]

    def test_detail_filter(self, provider):
        seen = []
        provider.eventbridge.put_rule("r", "src", "T", detail_filter={"region": "us-east-1"})
        provider.eventbridge.add_target("r", lambda event: seen.append(event))
        provider.eventbridge.put_event("src", "T", {"region": "eu-west-1"})
        provider.engine.run_until(10.0)
        assert seen == []

    def test_disabled_rule_matches_nothing(self, provider):
        seen = []
        provider.eventbridge.put_rule("r", "src", "T")
        provider.eventbridge.add_target("r", lambda event: seen.append(event))
        provider.eventbridge.disable_rule("r")
        provider.eventbridge.put_event("src", "T")
        provider.engine.run_until(10.0)
        assert seen == []

    def test_metric_statistics(self, provider):
        for value in (1.0, 2.0, 3.0):
            provider.cloudwatch.put_metric_data("SpotVerse", "price", value)
        assert provider.cloudwatch.get_metric_statistics("SpotVerse", "price") == 2.0
        assert (
            provider.cloudwatch.get_metric_statistics("SpotVerse", "price", statistic="Maximum")
            == 3.0
        )
        assert (
            provider.cloudwatch.get_metric_statistics(
                "SpotVerse", "price", statistic="SampleCount"
            )
            == 3.0
        )
        assert provider.cloudwatch.get_metric_statistics("SpotVerse", "missing") is None

    def test_alarm_fires_on_transition_only(self, provider):
        fired = []
        provider.cloudwatch.put_alarm(
            "price-high", "SpotVerse", "price", threshold=0.1, comparison=">",
            target=lambda value: fired.append(value),
        )
        provider.cloudwatch.put_metric_data("SpotVerse", "price", 0.05)
        assert fired == []
        provider.cloudwatch.put_metric_data("SpotVerse", "price", 0.15)
        provider.cloudwatch.put_metric_data("SpotVerse", "price", 0.20)  # still ALARM
        assert fired == [0.15]
        provider.cloudwatch.put_metric_data("SpotVerse", "price", 0.05)  # recovers
        provider.cloudwatch.put_metric_data("SpotVerse", "price", 0.30)
        assert fired == [0.15, 0.30]
        alarm = provider.cloudwatch.put_alarm(
            "other", "SpotVerse", "price", threshold=0.0, comparison="<", target=lambda v: None
        )
        assert not alarm.in_alarm

    def test_alarm_respects_dimensions(self, provider):
        fired = []
        provider.cloudwatch.put_alarm(
            "dim", "NS", "m", threshold=1.0, comparison=">=",
            target=lambda value: fired.append(value),
            dimensions={"region": "eu-west-1"},
        )
        provider.cloudwatch.put_metric_data("NS", "m", 5.0)  # no dimensions
        provider.cloudwatch.put_metric_data(
            "NS", "m", 5.0, dimensions={"region": "us-east-1"}
        )
        assert fired == []
        provider.cloudwatch.put_metric_data(
            "NS", "m", 5.0, dimensions={"region": "eu-west-1"}
        )
        assert fired == [5.0]

    def test_alarm_validation_and_lifecycle(self, provider):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            provider.cloudwatch.put_alarm(
                "bad", "NS", "m", threshold=1.0, comparison="!=", target=lambda v: None
            )
        provider.cloudwatch.put_alarm(
            "ok", "NS", "m", threshold=1.0, comparison="<=", target=lambda v: None
        )
        assert provider.cloudwatch.alarms() == ["ok"]
        provider.cloudwatch.delete_alarm("ok")
        provider.cloudwatch.delete_alarm("ok")  # idempotent
        assert provider.cloudwatch.alarms() == []

    def test_scheduled_rule_fires_periodically(self, provider):
        hits = []
        provider.cloudwatch.schedule_rule("sweep", 15 * MINUTE, lambda: hits.append(1))
        provider.engine.run_until(HOUR)
        assert len(hits) == 4
        provider.cloudwatch.remove_rule("sweep")
        provider.engine.run_until(2 * HOUR)
        assert len(hits) == 4


class TestCloudFormation:
    def template(self):
        return StackTemplate(
            description="control plane",
            functions=[LambdaResource(name="collector", handler=lambda e, c: "ok")],
            rules=[
                RuleResource(
                    name="on-warning",
                    source="aws.ec2",
                    detail_type="EC2 Spot Instance Interruption Warning",
                    target_function="collector",
                )
            ],
            schedules=[
                ScheduleResource(name="collect", interval=5 * MINUTE, target_function="collector")
            ],
            tables=[TableResource(name="metrics", partition_key="region", sort_key="itype")],
            buckets=[BucketResource(name="artifacts", region="us-east-1")],
        )

    def test_deploy_creates_all_resources(self, provider):
        provider.cloudformation.deploy_stack("spotverse", self.template())
        assert "collector" in provider.lambda_.functions()
        assert "metrics" in provider.dynamodb.tables()
        assert "artifacts" in provider.s3.buckets()
        assert "collect" in provider.cloudwatch.scheduled_rules()
        provider.engine.run_until(16 * MINUTE)
        assert provider.lambda_.get_function("collector").invocations >= 3

    def test_duplicate_stack_rejected(self, provider):
        provider.cloudformation.deploy_stack("s", StackTemplate())
        with pytest.raises(StackError):
            provider.cloudformation.deploy_stack("s", StackTemplate())

    def test_delete_stack_removes_schedules(self, provider):
        provider.cloudformation.deploy_stack("s", self.template())
        provider.cloudformation.delete_stack("s")
        assert "collect" not in provider.cloudwatch.scheduled_rules()
        with pytest.raises(StackError):
            provider.cloudformation.describe_stack("s")


class _ThrottleOnce:
    """Chaos stub: throttle the first *n* matching DynamoDB ops."""

    def __init__(self, op, times=1):
        self._op = op
        self.remaining = times
        self.rolls = 0

    def dynamodb_fault(self, op, conditional):
        if op == self._op and self.remaining > 0:
            self.remaining -= 1
            self.rolls += 1
            return "throttle"
        return None


class TestDynamoDBBatch:
    def test_batch_write_puts_then_deletes(self, provider):
        provider.dynamodb.create_table("t", "k")
        provider.dynamodb.put_item("t", {"k": "stale"})
        applied = provider.dynamodb.batch_write_item(
            "t",
            puts=[{"k": "a", "v": 1}, {"k": "b", "v": 2}],
            deletes=[("stale", None)],
        )
        assert applied == 3
        assert provider.dynamodb.get_item("t", "a")["v"] == 1
        assert provider.dynamodb.get_item("t", "b")["v"] == 2
        assert provider.dynamodb.get_item("t", "stale") is None

    def test_batch_write_bills_per_item_in_order(self, provider):
        provider.dynamodb.create_table("t", "k")
        before = len(provider.ledger.entries)
        provider.dynamodb.batch_write_item(
            "t", puts=[{"k": "a"}, {"k": "b"}], deletes=[("a", None)]
        )
        tail = provider.ledger.entries[before:]
        assert [entry.detail for entry in tail] == [
            "batch-put t",
            "batch-put t",
            "batch-delete t",
        ]
        # Same request-unit price as the item-at-a-time calls.
        provider.dynamodb.put_item("t", {"k": "c"})
        per_item = provider.ledger.entries[-1].amount
        assert all(entry.amount == per_item for entry in tail)

    def test_empty_batch_is_free_and_skips_chaos(self, provider):
        provider.dynamodb.create_table("t", "k")
        chaos = _ThrottleOnce("batch_write_item", times=100)
        provider.attach_chaos(chaos)
        assert provider.dynamodb.batch_write_item("t") == 0
        assert chaos.rolls == 0
        assert provider.ledger.total(CostCategory.DYNAMODB) == 0.0

    def test_throttle_rejects_whole_batch_before_any_item_lands(self, provider):
        from repro.errors import ThrottlingError

        provider.dynamodb.create_table("t", "k")
        provider.attach_chaos(_ThrottleOnce("batch_write_item"))
        with pytest.raises(ThrottlingError):
            provider.dynamodb.batch_write_item("t", puts=[{"k": "a"}, {"k": "b"}])
        assert provider.ledger.total(CostCategory.DYNAMODB) == 0.0
        assert provider.dynamodb.get_item("t", "a") is None
        assert provider.dynamodb.get_item("t", "b") is None
        # The retried batch re-applies atomically.
        provider.dynamodb.batch_write_item("t", puts=[{"k": "a"}, {"k": "b"}])
        assert provider.dynamodb.get_item("t", "a") is not None

    def test_batch_get_aligns_results_with_keys(self, provider):
        provider.dynamodb.create_table("t", "k")
        provider.dynamodb.put_item("t", {"k": "a", "v": 1})
        provider.dynamodb.put_item("t", {"k": "c", "v": 3})
        results = provider.dynamodb.batch_get_item(
            "t", [("c", None), ("missing", None), ("a", None)]
        )
        assert [item and item["v"] for item in results] == [3, None, 1]
        assert provider.dynamodb.batch_get_item("t", []) == []

    def test_batch_get_charges_read_units_per_key(self, provider):
        provider.dynamodb.create_table("t", "k")
        before = len(provider.ledger.entries)
        provider.dynamodb.batch_get_item("t", [("a", None), ("b", None)])
        tail = provider.ledger.entries[before:]
        assert [entry.detail for entry in tail] == ["batch-get t", "batch-get t"]

    def test_batch_write_copies_items(self, provider):
        provider.dynamodb.create_table("t", "k")
        item = {"k": "a", "v": 1}
        provider.dynamodb.batch_write_item("t", puts=[item])
        item["v"] = 99  # caller mutation must not reach the table
        assert provider.dynamodb.get_item("t", "a")["v"] == 1


class TestCloudWatchBatch:
    def test_batch_put_equals_sequential_puts(self, provider):
        cw = provider.cloudwatch
        cw.put_metric_data_batch(
            "NS",
            [
                ("m", 1.0, {"region": "r1"}),
                ("m", 2.0, {"region": "r1"}),
                ("other", 5.0, None),
            ],
        )
        assert cw.metric_series("NS", "m", {"region": "r1"}) == [(0.0, 1.0), (0.0, 2.0)]
        assert cw.get_metric_statistics("NS", "other") == 5.0
        # Three data points, three put charges.
        puts = [e for e in provider.ledger.entries if e.category is CostCategory.CLOUDWATCH]
        assert len(puts) == 3

    def test_alarms_fire_from_batched_data(self, provider):
        cw = provider.cloudwatch
        seen = []
        cw.put_alarm(
            "high", "NS", "m", threshold=10.0, comparison=">", target=seen.append
        )
        cw.put_metric_data_batch("NS", [("m", 5.0, None), ("m", 11.0, None)])
        assert seen == [11.0]

    def test_put_alarm_replacement_reindexes(self, provider):
        cw = provider.cloudwatch
        first, second = [], []
        cw.put_alarm("a", "NS", "m", threshold=1.0, comparison=">", target=first.append)
        # Replacing re-points the watcher at a different metric; the old
        # index entry must not survive.
        cw.put_alarm("a", "NS", "n", threshold=1.0, comparison=">", target=second.append)
        cw.put_metric_data("NS", "m", 5.0)
        cw.put_metric_data("NS", "n", 5.0)
        assert first == []
        assert second == [5.0]

    def test_delete_alarm_stops_evaluation(self, provider):
        cw = provider.cloudwatch
        seen = []
        cw.put_alarm("a", "NS", "m", threshold=1.0, comparison=">", target=seen.append)
        cw.delete_alarm("a")
        cw.delete_alarm("a")  # absent: no-op
        cw.put_metric_data("NS", "m", 5.0)
        assert seen == []
        assert cw._alarms_by_key == {}
