"""Tests for the fleet lifeline renderer."""


from repro.core.result import FleetResult, WorkloadRecord
from repro.experiments.gantt import render_lifelines
from repro.sim.clock import HOUR
from repro.workloads.base import WorkloadKind


def make_result():
    records = [
        WorkloadRecord(
            "alpha",
            WorkloadKind.STANDARD,
            submitted_at=0.0,
            completed_at=4 * HOUR,
            regions=["r-one"],
            attempt_starts=[0.0],
            attempts=1,
        ),
        WorkloadRecord(
            "beta",
            WorkloadKind.STANDARD,
            submitted_at=0.0,
            completed_at=7 * HOUR,
            interruptions=[(2 * HOUR, "r-one")],
            regions=["r-one", "r-two"],
            attempt_starts=[0.0, 2.5 * HOUR],
            attempts=2,
        ),
    ]
    return FleetResult(
        strategy="t",
        records=records,
        total_cost=1.0,
        instance_cost=1.0,
        overhead_cost=0.0,
        ended_at=8 * HOUR,
    )


class TestLifelines:
    def test_basic_rendering(self):
        text = render_lifelines(make_result(), bin_hours=1.0)
        lines = text.splitlines()
        assert "a=r-one" in lines[1] and "b=r-two" in lines[1]
        alpha = next(line for line in lines if line.startswith("alpha"))
        beta = next(line for line in lines if line.startswith("beta"))
        # alpha ran in r-one then completed at hour 4.
        assert "aaaa*" in alpha
        # beta migrated: letters for both regions appear, star at 7h.
        row = beta.split("|", 1)[1]
        assert "a" in row and "b" in row and "*" in row
        assert row.index("a") < row.index("b")

    def test_waiting_gap_shown_as_dots(self):
        result = make_result()
        # beta waited between interruption (2 h) and reattach (2.5 h);
        # with 0.25 h bins the gap appears as '.' columns.
        text = render_lifelines(result, bin_hours=0.25)
        beta = next(
            line for line in text.splitlines() if line.startswith("beta")
        ).split("|", 1)[1]
        assert "." in beta[: int(3 * 4)]

    def test_width_limit_widens_bins(self):
        text = render_lifelines(make_result(), bin_hours=0.01, width_limit=40)
        rows = [line for line in text.splitlines() if "|" in line]
        longest_bins = max(len(line.split("|", 1)[1]) for line in rows)
        assert longest_bins <= 41  # width_limit + 1 columns

    def test_truncation_notice(self):
        result = make_result()
        text = render_lifelines(result, max_workloads=1)
        assert "1 more workloads" in text

    def test_empty_fleet(self):
        empty = FleetResult(
            strategy="t", records=[], total_cost=0, instance_cost=0,
            overhead_cost=0, ended_at=0,
        )
        assert render_lifelines(empty) == "(empty fleet)"

    def test_real_fleet_renders(self):
        from repro.cloud.provider import CloudProvider
        from repro.core import SpotVerse, SpotVerseConfig
        from repro.workloads import synthetic_workload

        provider = CloudProvider(seed=7)
        spotverse = SpotVerse(
            provider,
            SpotVerseConfig(initial_distribution=False, start_region="ca-central-1"),
        )
        result = spotverse.run(
            [synthetic_workload(f"w{i}", duration_hours=6.0) for i in range(6)],
            max_hours=48,
        )
        text = render_lifelines(result)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 6
        assert all("*" in row for row in rows)  # every workload completed