"""Tests for the AMI substrate and its boot-time integration."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ami import COPY_DURATION, MISSING_IMAGE_BOOT_PENALTY
from repro.core import SpotVerse, SpotVerseConfig
from repro.core.execution import WorkloadExecution
from repro.core.fleet import DynamoCheckpointBackend
from repro.errors import ServiceError
from repro.galaxy.checkpoint import InMemoryCheckpointStore
from repro.sim.clock import HOUR
from repro.workloads.base import synthetic_workload


@pytest.fixture()
def provider():
    return CloudProvider(seed=6)


class TestAMIService:
    def test_register_available_in_source_only(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        assert provider.ami.is_available(image.image_id, "us-east-1")
        assert not provider.ami.is_available(image.image_id, "eu-west-1")

    def test_copy_completes_after_duration(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        provider.ami.copy_image(image.image_id, "eu-west-1")
        assert not provider.ami.is_available(image.image_id, "eu-west-1")
        assert "eu-west-1" in image.pending_regions
        provider.engine.run_until(COPY_DURATION + 1)
        assert provider.ami.is_available(image.image_id, "eu-west-1")
        assert "eu-west-1" not in image.pending_regions

    def test_copy_idempotent(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        provider.ami.copy_image(image.image_id, "eu-west-1")
        provider.ami.copy_image(image.image_id, "eu-west-1")  # no-op
        provider.ami.copy_image(image.image_id, "us-east-1")  # already there
        provider.engine.run_until(COPY_DURATION + 1)
        assert provider.ami.is_available(image.image_id, "eu-west-1")

    def test_propagate_everywhere(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        provider.ami.propagate_everywhere(image.image_id)
        provider.engine.run_until(COPY_DURATION + 1)
        for region in provider.regions.names():
            assert provider.ami.is_available(image.image_id, region)

    def test_boot_penalty(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        assert provider.ami.boot_penalty(image.image_id, "us-east-1") == 0.0
        assert (
            provider.ami.boot_penalty(image.image_id, "eu-west-1")
            == MISSING_IMAGE_BOOT_PENALTY
        )

    def test_unknown_image_raises(self, provider):
        with pytest.raises(ServiceError):
            provider.ami.describe_image("ami-999999")
        with pytest.raises(ServiceError):
            provider.ami.copy_image("ami-999999", "eu-west-1")

    def test_images_listing(self, provider):
        a = provider.ami.register_image("a", "us-east-1")
        b = provider.ami.register_image("b", "us-east-1")
        assert provider.ami.images() == sorted([a.image_id, b.image_id])


class TestBootIntegration:
    def test_missing_ami_delays_first_segment(self, provider):
        provider.s3.create_bucket("results", "us-east-1")
        image = provider.ami.register_image("galaxy", "us-east-1")
        done = []
        workload = synthetic_workload("w", duration_hours=1.0, n_segments=1)

        def run_in(region):
            execution = WorkloadExecution(
                workload=synthetic_workload(f"w-{region}", duration_hours=1.0, n_segments=1),
                provider=provider,
                backend=DynamoCheckpointBackend(
                    provider, "results", progress_store=InMemoryCheckpointStore()
                ),
                results_bucket="results",
                boot_delay=100.0,
                execute_payloads=False,
                on_complete=lambda e: done.append(
                    (e.workload.workload_id, provider.engine.now)
                ),
                image_id=image.image_id,
            )
            execution.attach(provider.ec2.run_on_demand(region, "m5.xlarge"))

        run_in("us-east-1")  # has the AMI
        run_in("eu-west-1")  # must provision from scratch
        provider.engine.run_until(3 * HOUR)
        times = dict(done)
        assert times["w-us-east-1"] == pytest.approx(3600 + 100)
        assert times["w-eu-west-1"] == pytest.approx(
            3600 + 100 + MISSING_IMAGE_BOOT_PENALTY
        )

    def test_spotverse_facade_propagates_galaxy_ami(self):
        provider = CloudProvider(seed=6)
        spotverse = SpotVerse(provider, SpotVerseConfig())
        image = spotverse.galaxy_image
        # Setup-time propagation is instant: the AMI exists everywhere
        # before the first workload boots.
        for region in provider.regions.names():
            assert provider.ami.is_available(image.image_id, region)

    def test_instant_propagation_flag(self, provider):
        image = provider.ami.register_image("galaxy", "us-east-1")
        provider.ami.propagate(image.image_id, ["eu-west-1"], instant=True)
        assert provider.ami.is_available(image.image_id, "eu-west-1")
