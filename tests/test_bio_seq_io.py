"""Unit tests for sequence utilities and FASTA/FASTQ/VCF IO."""

import numpy as np
import pytest

from repro.bio.fasta import FastaRecord, parse_fasta, write_fasta
from repro.bio.fastq import FastqRecord, parse_fastq, simulate_reads, write_fastq
from repro.bio.seq import (
    gc_content,
    hamming_distance,
    kmer_counts,
    mutate,
    random_genome,
    reverse_complement,
    validate_sequence,
)
from repro.bio.vcf import Variant, parse_vcf, write_vcf
from repro.errors import SequenceFormatError


class TestSeq:
    def test_reverse_complement_involution(self):
        assert reverse_complement(reverse_complement("ACGTTGCA")) == "ACGTTGCA"

    def test_reverse_complement_basic(self):
        assert reverse_complement("AACG") == "CGTT"
        assert reverse_complement("N") == "N"

    def test_validate_rejects_bad_chars(self):
        with pytest.raises(SequenceFormatError):
            validate_sequence("ACGU")
        with pytest.raises(SequenceFormatError):
            validate_sequence("ACGN", allow_n=False)

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("ATAT") == 0.0
        assert gc_content("ATGC") == 0.5
        assert gc_content("NN") == 0.0

    def test_kmer_counts(self):
        counts = kmer_counts("ACGACG", 3)
        assert counts == {"ACG": 2, "CGA": 1, "GAC": 1}

    def test_kmer_counts_skips_n(self):
        assert "ANG" not in kmer_counts("ANGT", 3)

    def test_kmer_counts_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmer_counts("ACGT", 0)

    def test_hamming_distance(self):
        assert hamming_distance("ACGT", "ACGA") == 1
        with pytest.raises(ValueError):
            hamming_distance("AC", "ACG")

    def test_random_genome_properties(self):
        genome = random_genome(5000, np.random.default_rng(0), gc_bias=0.6)
        assert len(genome) == 5000
        assert abs(gc_content(genome) - 0.6) < 0.03

    def test_random_genome_deterministic_per_seed(self):
        a = random_genome(100, np.random.default_rng(5))
        b = random_genome(100, np.random.default_rng(5))
        assert a == b

    def test_mutate_changes_requested_positions(self):
        genome = random_genome(200, np.random.default_rng(1))
        mutant = mutate(genome, 20, np.random.default_rng(2))
        assert hamming_distance(genome, mutant) == 20


class TestFasta:
    def test_roundtrip(self):
        records = [
            FastaRecord("seq1", "first sequence", "ACGT" * 40),
            FastaRecord("seq2", "", "TTTT"),
        ]
        parsed = parse_fasta(write_fasta(records))
        assert parsed == records

    def test_wrapping_respected(self):
        text = write_fasta([FastaRecord("s", "", "A" * 150)], width=70)
        lines = text.splitlines()
        assert lines[1] == "A" * 70
        assert lines[3] == "A" * 10

    def test_header_parsing(self):
        records = parse_fasta(">id desc with spaces\nACGT\nACGT\n")
        assert records[0].identifier == "id"
        assert records[0].description == "desc with spaces"
        assert records[0].sequence == "ACGTACGT"

    def test_errors(self):
        with pytest.raises(SequenceFormatError):
            parse_fasta("ACGT\n")  # data before header
        with pytest.raises(SequenceFormatError):
            parse_fasta(">\nACGT\n")  # empty header
        with pytest.raises(SequenceFormatError):
            parse_fasta(">x\n")  # no sequence


class TestFastq:
    def test_roundtrip(self):
        reads = simulate_reads(
            random_genome(500, np.random.default_rng(0)), 20,
            rng=np.random.default_rng(1),
        )
        assert parse_fastq(write_fastq(reads)) == reads

    def test_quality_encoding(self):
        read = FastqRecord("r", "AC", (0, 40))
        assert read.quality_string() == "!" + chr(40 + 33)

    def test_parse_errors(self):
        with pytest.raises(SequenceFormatError):
            parse_fastq("@r\nACGT\n+\n")  # truncated
        with pytest.raises(SequenceFormatError):
            parse_fastq("r\nACGT\n+\nIIII\n")  # missing @
        with pytest.raises(SequenceFormatError):
            parse_fastq("@r\nACGT\n+\nIII\n")  # length mismatch

    def test_simulated_reads_quality_declines(self):
        reads = simulate_reads(
            random_genome(500, np.random.default_rng(0)),
            50,
            read_length=100,
            rng=np.random.default_rng(2),
        )
        first = np.mean([read.qualities[0] for read in reads])
        last = np.mean([read.qualities[-1] for read in reads])
        assert first > last

    def test_simulated_reads_match_genome_mostly(self):
        genome = random_genome(500, np.random.default_rng(0))
        reads = simulate_reads(genome, 30, read_length=60, rng=np.random.default_rng(3))
        mismatch_rates = []
        for read in reads:
            start = int(read.identifier.rsplit("pos", 1)[1])
            reference = genome[start : start + 60]
            mismatches = sum(1 for a, b in zip(read.sequence, reference) if a != b)
            mismatch_rates.append(mismatches / 60)
        assert np.mean(mismatch_rates) < 0.05

    def test_genome_shorter_than_read_rejected(self):
        with pytest.raises(ValueError):
            simulate_reads("ACGT", 1, read_length=10)

    def test_mean_quality_empty_read(self):
        assert FastqRecord("r", "", ()).mean_quality() == 0.0


class TestVcf:
    def make_variants(self):
        return [
            Variant("chr1", 10, "A", "G", identifier="rs1", qual=60.0, info={"DP": "12"}),
            Variant("chr1", 3, "C", "T"),
            Variant("chr2", 5, "GT", "G"),  # deletion
        ]

    def test_roundtrip_sorted(self):
        parsed = parse_vcf(write_vcf(self.make_variants()))
        assert [(v.chrom, v.pos) for v in parsed] == [("chr1", 3), ("chr1", 10), ("chr2", 5)]
        assert parsed[1].info == {"DP": "12"}
        assert parsed[1].qual == 60.0

    def test_is_snp(self):
        assert Variant("c", 1, "A", "G").is_snp
        assert not Variant("c", 1, "AT", "A").is_snp

    def test_parse_skips_headers_and_blank_lines(self):
        text = "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n\n"
        assert parse_vcf(text) == []

    def test_parse_errors(self):
        with pytest.raises(SequenceFormatError):
            parse_vcf("chr1\tten\t.\tA\tG\t.\tPASS\t.\n")
        with pytest.raises(SequenceFormatError):
            parse_vcf("chr1\t0\t.\tA\tG\t.\tPASS\t.\n")
        with pytest.raises(SequenceFormatError):
            parse_vcf("chr1\t5\t.\tA\n")

    def test_info_flags(self):
        parsed = parse_vcf("chr1\t5\t.\tA\tG\t.\tPASS\tSOMATIC;DP=3\n")
        assert parsed[0].info == {"SOMATIC": "", "DP": "3"}
