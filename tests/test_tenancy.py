"""Multi-tenant control plane: admission, quotas, durability, goldens.

Covers the tenancy layer end to end: weighted fair-share admission
order and the zero-weight starvation guard at the unit level; quota
exhaustion/release, backpressure telemetry, deterministic replay, and
teardown/resume with a non-empty admission queue against the real
control plane; and the bit-identity gate — every golden scenario
replayed through :class:`MultiTenantController` with one default
tenant at ``n_shards=1`` must match the committed monolith fixture
float for float.
"""

import json

import pytest

from repro.chaos.invariants import TenantFairnessCheck, TenantQuotaCheck
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.tenancy import (
    AdmissionController,
    MultiTenantController,
    TenantRegistry,
    TenantSpec,
    ZERO_WEIGHT_FLOOR,
)
from repro.errors import ExperimentError
from repro.obs.events import EventType
from repro.sim.clock import HOUR
from repro.workloads.base import synthetic_workload
from tests.golden_scenarios import (
    FIXTURE_PATH,
    SCENARIOS,
    result_to_dict,
    run_scenario_tenancy,
)

SEED = 11


def _store_registry():
    provider = CloudProvider(seed=SEED)
    from repro.core.fleet.state import FleetStateStore

    return provider, TenantRegistry(FleetStateStore(provider.dynamodb))


def _plane(provider):
    """Shared config/monitor/policy for one provider (reusable on rebuild)."""
    config = SpotVerseConfig(instance_type="m5.xlarge")
    monitor = Monitor(
        provider, [config.instance_type], collect_interval=config.collect_interval
    )
    policy = SpotVerseOptimizer(monitor, config)
    return config, monitor, policy


def _controller(provider, n_shards=1, state_store=None, admit_interval=0.0):
    config, monitor, policy = _plane(provider)
    return MultiTenantController(
        provider,
        policy,
        config,
        monitor=monitor,
        n_shards=n_shards,
        state_store=state_store,
        admit_interval=admit_interval,
    )


# ----------------------------------------------------------------------
# TenantSpec / TenantRegistry
# ----------------------------------------------------------------------
def test_tenant_spec_validation_and_roundtrip():
    with pytest.raises(ExperimentError):
        TenantSpec(tenant_id="")
    with pytest.raises(ExperimentError):
        TenantSpec(tenant_id="t", max_in_flight=-1)
    spec = TenantSpec(
        tenant_id="lab-a", weight=0.0, max_in_flight=3, max_pending=7, policy="spotverse"
    )
    assert spec.effective_weight == ZERO_WEIGHT_FLOOR
    assert TenantSpec.from_dict(spec.to_dict()) == spec


def test_registry_persists_and_reloads():
    provider, registry = _store_registry()
    registry.register(TenantSpec(tenant_id="b", weight=2.0))
    registry.register(TenantSpec(tenant_id="a", max_in_flight=4))
    rebuilt = TenantRegistry(registry._store)
    rebuilt.reload()
    assert [spec.tenant_id for spec in rebuilt.tenants()] == ["b", "a"]
    assert rebuilt.get("a").max_in_flight == 4
    with pytest.raises(ExperimentError):
        rebuilt.get("nobody")
    provider.shutdown()


# ----------------------------------------------------------------------
# AdmissionController (pure scheduling)
# ----------------------------------------------------------------------
def _admission(specs):
    provider, registry = _store_registry()
    for spec in specs:
        registry.register(spec)
    return provider, AdmissionController(registry)


def test_wfq_shares_track_weights():
    provider, admission = _admission(
        [TenantSpec(tenant_id="a", weight=2.0), TenantSpec(tenant_id="b", weight=1.0)]
    )
    for i in range(30):
        admission.enqueue("a", synthetic_workload(f"a-{i}", 1.0, n_segments=1))
        admission.enqueue("b", synthetic_workload(f"b-{i}", 1.0, n_segments=1))
    order = [adm.tenant_id for adm in admission.drain()]
    assert len(order) == 60
    # Weight 2 tenant lands ~2/3 of any contended prefix.
    first = order[:15]
    assert 9 <= first.count("a") <= 11
    provider.shutdown()


def test_quota_holds_admission_until_release():
    provider, admission = _admission([TenantSpec(tenant_id="a", max_in_flight=1)])
    for i in range(3):
        admission.enqueue("a", synthetic_workload(f"a-{i}", 1.0, n_segments=1))
    assert [a.workload.workload_id for a in admission.drain()] == ["a-0"]
    assert admission.drain() == []  # quota exhausted, nothing moves
    assert admission.queued_count("a") == 2
    admission.release("a")
    assert [a.workload.workload_id for a in admission.drain()] == ["a-1"]
    assert admission.in_flight("a") == 1
    provider.shutdown()


def test_zero_weight_tenant_is_never_starved():
    provider, admission = _admission(
        [TenantSpec(tenant_id="a", weight=1.0), TenantSpec(tenant_id="z", weight=0.0)]
    )
    for i in range(50):
        admission.enqueue("a", synthetic_workload(f"a-{i}", 1.0, n_segments=1))
    for i in range(5):
        admission.enqueue("z", synthetic_workload(f"z-{i}", 1.0, n_segments=1))
    order = [adm.tenant_id for adm in admission.drain()]
    positions = [i for i, tenant in enumerate(order) if tenant == "z"]
    assert len(positions) == 5  # everything admitted — no outright starvation
    # The floor guarantees one z admission per ~1/ZERO_WEIGHT_FLOOR
    # weight-1 admissions while both stay backlogged.
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    assert positions[0] <= 2
    assert max(gaps) <= int(1.0 / ZERO_WEIGHT_FLOOR) + 2
    provider.shutdown()


def test_bounded_queue_throttles():
    provider, admission = _admission(
        [TenantSpec(tenant_id="a", max_pending=1, max_in_flight=1)]
    )
    assert admission.enqueue("a", synthetic_workload("a-0", 1.0, n_segments=1))
    assert not admission.enqueue("a", synthetic_workload("a-1", 1.0, n_segments=1))
    assert admission.throttled_counts["a"] == 1
    provider.shutdown()


# ----------------------------------------------------------------------
# MultiTenantController against the real control plane
# ----------------------------------------------------------------------
def test_quota_exhaustion_then_release_end_to_end():
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    controller = _controller(provider)
    controller.register_tenant(TenantSpec(tenant_id="lab", max_in_flight=2))
    for i in range(5):
        assert controller.submit(
            "lab", synthetic_workload(f"wl-{i}", duration_hours=1.0, n_segments=1)
        )
    result = controller.wait(max_hours=72.0)
    assert sum(1 for r in result.records if r.completed_at is not None) == 5
    usage = controller.usage()["lab"]
    assert usage["admitted"] == 5 and usage["done"] == 5 and usage["in_flight"] == 0
    # The stream-reconstructed invariant agrees: never over quota.
    quota_check = TenantQuotaCheck()
    fairness_check = TenantFairnessCheck()
    for event in provider.telemetry.bus:
        assert quota_check.observe(event) == []
        assert fairness_check.observe(event) == []
    assert max(quota_check.in_flight.values(), default=0) <= 2
    provider.shutdown()


def test_throttled_submission_emits_backpressure_event():
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    controller = _controller(provider)
    controller.register_tenant(
        TenantSpec(tenant_id="lab", max_in_flight=1, max_pending=1)
    )
    assert controller.submit("lab", synthetic_workload("w-0", 1.0, n_segments=1))
    assert not controller.submit("lab", synthetic_workload("w-1", 1.0, n_segments=1))
    throttled = provider.telemetry.bus.events(EventType.TENANT_THROTTLED)
    assert len(throttled) == 1
    assert throttled[0].attrs["tenant_id"] == "lab"
    assert throttled[0].workload_id == "w-1"
    provider.shutdown()


def test_unknown_tenant_is_rejected():
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    controller = _controller(provider)
    with pytest.raises(ExperimentError):
        controller.submit("ghost", synthetic_workload("w", 1.0, n_segments=1))
    provider.shutdown()


def _interleaved_run():
    """One 3-tenant run with interleaved submissions; returns payloads."""
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    controller = _controller(provider, n_shards=4)
    for index, weight in enumerate((3.0, 1.0, 2.0)):
        controller.register_tenant(
            TenantSpec(tenant_id=f"t-{index}", weight=weight, max_in_flight=2)
        )
    for i in range(9):
        controller.submit(
            f"t-{i % 3}",
            synthetic_workload(f"t{i % 3}-wl-{i}", duration_hours=2.0, n_segments=2),
        )
    result = controller.wait(max_hours=72.0)
    payload = (result_to_dict(result), controller.usage())
    provider.shutdown()
    return payload


def test_interleaved_multi_tenant_replay_is_deterministic():
    first_result, first_usage = _interleaved_run()
    second_result, second_usage = _interleaved_run()
    assert first_result == second_result
    assert first_usage == second_usage
    assert all(row["done"] == 3 for row in first_usage.values())


def test_teardown_resume_with_non_empty_admission_queue():
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    config, monitor, policy = _plane(provider)
    controller = MultiTenantController(provider, policy, config, monitor=monitor)
    controller.register_tenant(TenantSpec(tenant_id="lab", max_in_flight=1))
    fleet = [
        synthetic_workload(f"wl-{i}", duration_hours=4.0, n_segments=4)
        for i in range(3)
    ]
    for workload in fleet:
        controller.submit("lab", workload)
    # Drive past the first admission round: one in flight, two queued.
    provider.engine.run_until(provider.engine.now + 1.0 * HOUR)
    assert controller.admission.queued_count("lab") == 2
    store = controller.state_store
    controller.teardown()
    del controller

    rebuilt = MultiTenantController(
        provider, policy, config, monitor=monitor, state_store=store
    )
    result = rebuilt.resume(fleet, max_hours=120.0)
    assert sum(1 for r in result.records if r.completed_at is not None) == 3
    usage = rebuilt.usage()["lab"]
    assert usage["done"] == 3 and usage["queued"] == 0 and usage["in_flight"] == 0
    assert rebuilt.tenant_of("wl-2") == "lab"
    # The durable queue fully drained.
    assert list(store.mapping(MultiTenantController.QUEUE_SECTION)) == []
    provider.shutdown()


# ----------------------------------------------------------------------
# Golden equivalence: tenancy façade == plain controller, bit for bit
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fixture():
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate ONLY from a pre-refactor "
        "monolith build: PYTHONPATH=src python -m tests.golden_scenarios"
    )
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_tenancy_facade_is_bit_identical(name, fixture):
    assert result_to_dict(run_scenario_tenancy(name)) == fixture[name]
