"""Tests for alignment and pileup-based variant calling."""

import numpy as np
import pytest

from repro.bio.align import align_read
from repro.bio.consensus import apply_variants
from repro.bio.fasta import FastaRecord, write_fasta
from repro.bio.fastq import FastqRecord, simulate_reads, write_fastq
from repro.bio.seq import random_genome
from repro.bio.variants import build_pileup, call_variants
from repro.galaxy.tools import default_toolshed


class TestAlignment:
    def test_exact_substring_aligns_perfectly(self):
        reference = "AAAACGTACGTACGTTTT"
        read = "ACGTACGTACGT"
        alignment = align_read(reference, read)
        assert alignment.ref_start == 3
        assert alignment.ref_end == 15
        assert alignment.identity() == 1.0
        assert alignment.cigar == "12M"

    def test_mismatch_detected(self):
        reference = "AAAACGTACGTACGTTTT"
        read = "ACGTACTTACGT"  # one substitution
        alignment = align_read(reference, read)
        assert alignment.ref_start == 3
        assert alignment.identity() == pytest.approx(11 / 12)

    def test_deletion_in_read(self):
        reference = "AACCGGTTAACCGGTT"
        read = "AACCGGTTAACGGTT"  # one reference base skipped
        alignment = align_read(reference, read)
        assert "D" in alignment.cigar

    def test_insertion_in_read(self):
        reference = "AACCGGTTAACCGGTT"
        read = "AACCGGTTTAACCGGTT"  # one extra base
        alignment = align_read(reference, read)
        assert "I" in alignment.cigar

    def test_empty_inputs(self):
        assert align_read("", "ACGT") is None
        assert align_read("ACGT", "") is None

    def test_read_longer_than_reference_still_aligns(self):
        alignment = align_read("ACGT", "AACGTT")
        assert alignment is not None


class TestVariantCalling:
    def make_case(self, n_reads=120, seed=0):
        rng = np.random.default_rng(seed)
        reference = random_genome(300, rng)
        # Plant two SNPs in the "sample" genome.
        sample = list(reference)
        sample[50] = "A" if reference[50] != "A" else "C"
        sample[200] = "G" if reference[200] != "G" else "T"
        sample = "".join(sample)
        reads = simulate_reads(
            sample, n_reads, read_length=60, rng=rng, base_quality=40, quality_decay=0.0
        )
        return reference, sample, reads

    def test_planted_snps_are_called(self):
        reference, sample, reads = self.make_case()
        pileup = build_pileup(reference, reads)
        assert pileup.n_reads_used > 100
        variants = call_variants(reference, pileup)
        positions = {variant.pos for variant in variants}
        assert {51, 201} <= positions
        # No more than a couple of spurious calls from read errors.
        assert len(variants) <= 4

    def test_called_variants_reconstruct_the_sample(self):
        reference, sample, reads = self.make_case(seed=1)
        pileup = build_pileup(reference, reads)
        variants = [v for v in call_variants(reference, pileup) if v.pos in (51, 201)]
        assert apply_variants(reference, variants) == sample

    def test_no_variants_on_clean_data(self):
        rng = np.random.default_rng(2)
        reference = random_genome(300, rng)
        reads = simulate_reads(
            reference, 80, read_length=60, rng=rng, base_quality=40, quality_decay=0.0
        )
        variants = call_variants(reference, build_pileup(reference, reads))
        assert variants == []

    def test_depth_threshold(self):
        reference, sample, reads = self.make_case()
        pileup = build_pileup(reference, reads[:3])  # too shallow
        assert call_variants(reference, pileup, min_depth=4) == []

    def test_junk_reads_discarded(self):
        reference = random_genome(300, np.random.default_rng(3))
        junk = [FastqRecord("j", "T" * 60, tuple([40] * 60))]
        pileup = build_pileup(reference, junk)
        assert pileup.n_reads_discarded == 1 or pileup.n_reads_used == 1
        # Either way no confident call should emerge from one read.
        assert call_variants(reference, pileup) == []

    def test_variant_annotations(self):
        reference, _, reads = self.make_case()
        variants = call_variants(reference, build_pileup(reference, reads))
        for variant in variants:
            assert int(variant.info["DP"]) >= 4
            assert 0.7 <= float(variant.info["AF"]) <= 1.0
            assert variant.qual > 0

    def test_toolshed_variant_caller_tool(self):
        reference, sample, reads = self.make_case()
        tool = default_toolshed().get("variant_caller")
        outputs = tool.run(
            {
                "reference_fasta": write_fasta([FastaRecord("ref", "", reference)]),
                "fastq": write_fastq(reads),
            }
        )
        assert outputs["n_variants"] >= 2
        assert "##fileformat=VCF" in outputs["vcf"]
