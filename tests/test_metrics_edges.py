"""Edge cases for Histogram percentiles and RingSeries downsampling.

The SLO engine leans on nearest-rank percentiles and the observatory
leans on ring compaction; both must behave at the boundaries — empty
series, one sample, degenerate (all-equal) distributions, and the
ring's wrap-around/compaction path.
"""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import Histogram
from repro.obs.timeseries import RingSeries


class TestHistogramPercentileEdges:
    def test_empty_series_returns_zero(self):
        hist = Histogram("latency_seconds")
        for p in (0.0, 50.0, 95.0, 100.0):
            assert hist.percentile(p) == 0.0
        assert hist.count() == 0
        assert hist.sum() == 0.0
        assert hist.mean() == 0.0

    def test_out_of_range_percentile_raises(self):
        hist = Histogram("latency_seconds")
        hist.observe(1.0)
        with pytest.raises(ReproError):
            hist.percentile(-0.1)
        with pytest.raises(ReproError):
            hist.percentile(100.1)

    def test_single_sample_is_every_percentile(self):
        hist = Histogram("latency_seconds")
        hist.observe(42.0)
        for p in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert hist.percentile(p) == 42.0
        assert hist.mean() == 42.0

    def test_all_equal_values_are_every_percentile(self):
        hist = Histogram("latency_seconds")
        for _ in range(100):
            hist.observe(7.5)
        for p in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert hist.percentile(p) == 7.5
        assert hist.count() == 100
        assert hist.sum() == pytest.approx(750.0)

    def test_nearest_rank_on_known_distribution(self):
        hist = Histogram("latency_seconds")
        # Inserted out of order; the series keeps itself sorted.
        for value in (50.0, 10.0, 40.0, 20.0, 30.0):
            hist.observe(value)
        assert hist.percentile(0.0) == 10.0
        assert hist.percentile(50.0) == 30.0
        assert hist.percentile(100.0) == 50.0
        # Nearest rank, not interpolation: p75 of 5 samples rounds to
        # index 3 (the 4th value).
        assert hist.percentile(75.0) == 40.0

    def test_labelled_series_are_independent(self):
        hist = Histogram("latency_seconds")
        hist.observe(1.0, region="eu-west-1")
        hist.observe(100.0, region="us-east-1")
        assert hist.percentile(50.0, region="eu-west-1") == 1.0
        assert hist.percentile(50.0, region="us-east-1") == 100.0
        assert hist.percentile(50.0, region="ap-south-1") == 0.0


class TestRingSeriesEdges:
    def test_capacity_validation(self):
        for bad in (0, 2, 3, 5, -8):
            with pytest.raises(ReproError):
                RingSeries(capacity=bad)

    def test_empty_series(self):
        series = RingSeries(capacity=8)
        assert len(series) == 0
        assert series.buckets() == []
        assert series.values() == []
        assert series.latest() is None
        assert series.span() == (0.0, 0.0)
        assert series.n_samples == 0

    def test_single_sample(self):
        series = RingSeries(capacity=8)
        series.append(10.0, 3.5)
        assert len(series) == 1
        assert series.n_samples == 1
        bucket = series.latest()
        assert bucket.value == 3.5
        assert bucket.lo == bucket.hi == 3.5
        assert bucket.count == 1
        assert series.span() == (10.0, 10.0)

    def test_all_equal_values_survive_compaction(self):
        series = RingSeries(capacity=4)
        for i in range(50):
            series.append(float(i), 2.25)
        assert len(series) <= series.capacity
        assert series.stride > 1  # compaction happened
        for bucket in series.buckets():
            assert bucket.value == 2.25
            assert bucket.lo == 2.25
            assert bucket.hi == 2.25

    def test_wraparound_preserves_samples_span_and_mass(self):
        series = RingSeries(capacity=8)
        n = 1000
        for i in range(n):
            series.append(float(i), float(i))
        assert series.n_samples == n
        assert len(series) <= series.capacity
        # Coverage: the compacted series still spans every sample.
        assert series.span() == (0.0, float(n - 1))
        # Mass: no raw sample is ever dropped by compaction.
        assert sum(bucket.count for bucket in series.buckets()) == n
        # Count-weighted mean survives folding exactly.
        weighted = sum(b.value * b.count for b in series.buckets())
        assert weighted / n == pytest.approx((n - 1) / 2.0)
        # Extremes are preserved bucket-locally.
        assert series.buckets()[0].lo == 0.0
        assert series.buckets()[-1].hi == float(n - 1)
        # Buckets stay in time order.
        times = series.times()
        assert times == sorted(times)

    def test_stride_doubles_per_compaction(self):
        series = RingSeries(capacity=4)
        assert series.stride == 1
        for i in range(4):
            series.append(float(i), 1.0)
        assert series.stride == 2  # filled once, compacted once
        for i in range(4, 12):
            series.append(float(i), 1.0)
        assert series.stride == 4
