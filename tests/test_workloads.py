"""Unit tests for workload models and factories."""

import pytest

from repro.errors import WorkloadError
from repro.sim.clock import HOUR
from repro.workloads import (
    build_genome_reconstruction_workflow,
    build_ngs_preprocessing_workflow,
    build_qiime_workflow,
    genome_reconstruction_workload,
    ngs_preprocessing_workload,
    standard_general_workload,
    synthetic_workload,
)
from repro.workloads.base import Workload, WorkloadKind
from repro.galaxy.planemo import PlanemoRunner


class TestWorkloadBase:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            Workload("", WorkloadKind.STANDARD, (1.0,))
        with pytest.raises(WorkloadError):
            Workload("w", WorkloadKind.STANDARD, ())
        with pytest.raises(WorkloadError):
            Workload("w", WorkloadKind.STANDARD, (1.0, -1.0))

    def test_totals(self):
        workload = Workload("w", WorkloadKind.CHECKPOINT, (10.0, 20.0, 30.0))
        assert workload.total_duration == 60.0
        assert workload.n_segments == 3
        assert workload.checkpointable

    def test_remaining_after(self):
        workload = Workload("w", WorkloadKind.STANDARD, (10.0, 20.0, 30.0))
        assert workload.remaining_after(0) == (10.0, 20.0, 30.0)
        assert workload.remaining_after(2) == (30.0,)
        assert workload.remaining_after(3) == ()
        with pytest.raises(WorkloadError):
            workload.remaining_after(4)
        with pytest.raises(WorkloadError):
            workload.remaining_after(-1)

    def test_synthetic_factory(self):
        workload = synthetic_workload("w", duration_hours=2.0, n_segments=8)
        assert workload.total_duration == pytest.approx(2.0 * HOUR)
        assert workload.n_segments == 8
        assert not workload.checkpointable
        with pytest.raises(WorkloadError):
            synthetic_workload("w", duration_hours=0)
        with pytest.raises(WorkloadError):
            synthetic_workload("w", n_segments=0)


class TestPaperWorkloads:
    def test_standard_general_envelope(self):
        workload = standard_general_workload("w", duration_hours=10.5)
        assert workload.kind is WorkloadKind.STANDARD
        assert workload.total_duration == pytest.approx(10.5 * HOUR)
        assert workload.n_segments == 5

    def test_genome_reconstruction_has_23_steps(self):
        workload = genome_reconstruction_workload("w")
        assert workload.n_segments == 23
        assert workload.kind is WorkloadKind.STANDARD
        assert workload.total_duration == pytest.approx(10.5 * HOUR)

    def test_ngs_preprocessing_checkpointable(self):
        workload = ngs_preprocessing_workload("w", n_segments=20)
        assert workload.kind is WorkloadKind.CHECKPOINT
        assert workload.n_segments == 20
        assert workload.checkpoint_bytes == 50 * 1024 * 1024

    def test_payloads_run_for_all_segments(self):
        for factory in (
            standard_general_workload,
            genome_reconstruction_workload,
            ngs_preprocessing_workload,
        ):
            workload = factory("w", with_payload=True, seed=3)
            assert workload.payload is not None
            for index in range(workload.n_segments):
                workload.payload(index)  # must not raise

    def test_payload_absent_by_default(self):
        assert standard_general_workload("w").payload is None

    def test_duration_parameter_scales(self):
        short = genome_reconstruction_workload("w", duration_hours=5.0)
        assert short.total_duration == pytest.approx(5.0 * HOUR)


class TestGalaxyWorkflowBuilders:
    def test_qiime_workflow_executes(self):
        invocation = PlanemoRunner().run(build_qiime_workflow(duration_hours=0.1))
        assert invocation.ok
        outputs = invocation.results["diversity-analysis"].outputs
        assert set(outputs["alpha"]) == {"gut", "soil", "ocean"}
        if "beta" in outputs:
            n = len(outputs["beta"]["samples"])
            matrix = outputs["beta"]["bray_curtis"]
            assert len(matrix) == n
            assert all(matrix[i][i] == 0.0 for i in range(n))

    def test_genome_reconstruction_workflow_executes(self):
        workflow = build_genome_reconstruction_workflow(duration_hours=0.1)
        assert len(workflow) == 23
        invocation = PlanemoRunner().run(workflow)
        assert invocation.ok
        lineages = invocation.results["lineage-00"].outputs["lineages"]
        assert lineages and lineages[0] != "unassigned"

    def test_ngs_workflow_executes_with_multiqc(self):
        workflow = build_ngs_preprocessing_workflow(duration_hours=0.1, n_files=3)
        invocation = PlanemoRunner().run(workflow)
        assert invocation.ok
        summary = invocation.results["multiqc"].outputs["summary"]
        assert summary["n_samples"] == 3
