"""Online invariant checking vs. the post-run scorecard fold.

The refactor's contract: every invariant check exposes an incremental
``observe``/``finalize`` pair, and a monitor that followed the run
live must produce verdicts bit-identical to :func:`check_invariants`
folding the saved stream afterwards — across every built-in policy,
under the default chaos campaign, kills included.
"""

import json

import pytest

from repro.chaos import (
    POLICY_NAMES,
    OnlineInvariantMonitor,
    check_invariants,
    default_campaign,
)
from repro.chaos.runner import _execute
from repro.obs import EventType, FlightRecorder, Telemetry
from repro.workloads.base import synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


def small_fleet():
    fleet = [synthetic_workload(f"std-{i}", duration_hours=3.0, n_segments=3) for i in range(2)]
    fleet += [
        ngs_preprocessing_workload(f"ckpt-{i}", duration_hours=3.0, n_segments=3)
        for i in range(2)
    ]
    return fleet


# ----------------------------------------------------------------------
# Bit-identity: live monitor == post-run fold
# ----------------------------------------------------------------------
class TestOnlineMatchesPostRun:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_live_verdicts_equal_post_run_fold(self, policy):
        provider, store, result, fleet, monitor = _execute(
            policy,
            default_campaign(),
            11,
            72.0,
            24,
            small_fleet(),
            apply_kills=True,
        )
        live = monitor.finalize(provider, store, result)
        post = check_invariants(provider, store, result, fleet)
        assert live == post
        assert all(r.passed for r in live), [r for r in live if not r.passed]
        provider.shutdown()

    def test_monitor_attached_late_still_agrees(self):
        # Attach replays history first, so a monitor attached after the
        # run ends still matches a monitor that watched from the start.
        provider, store, result, fleet, monitor = _execute(
            "spotverse", default_campaign(), 11, 72.0, 24, small_fleet(),
            apply_kills=True,
        )
        late = OnlineInvariantMonitor(fleet)
        late.attach(provider.telemetry.bus)
        late.detach()
        assert late.finalize(provider, store, result) == monitor.finalize(
            provider, store, result
        )
        provider.shutdown()


# ----------------------------------------------------------------------
# Online violation semantics
# ----------------------------------------------------------------------
class TestOnlineViolations:
    def test_double_completion_flagged_at_the_offending_event(self):
        telemetry = Telemetry()
        times = [0.0]
        telemetry.bus.attach_clock(lambda: times[0])
        monitor = OnlineInvariantMonitor()
        monitor.attach(telemetry.bus)
        telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        assert monitor.violations == []
        times[0] = 3600.0
        second = telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        # Both the completion count and the stream causality rule fire,
        # in canonical check order, stamped with the offending event.
        assert [v.name for v in monitor.violations] == [
            "single-completion",
            "stream-valid",
        ]
        violation = monitor.violations[0]
        assert violation.time == 3600.0
        assert violation.seq == second.seq
        assert "2 workload.done events" in violation.detail
        monitor.detach()

    def test_checkpoint_regression_flagged_online(self):
        telemetry = Telemetry()
        monitor = OnlineInvariantMonitor()
        monitor.attach(telemetry.bus)
        telemetry.bus.emit(EventType.CHECKPOINT_SAVED, workload_id="w1", segments=3)
        telemetry.bus.emit(EventType.CHECKPOINT_SAVED, workload_id="w1", segments=1)
        assert [v.name for v in monitor.violations] == ["checkpoint-monotonic"]
        assert "3 -> 1" in monitor.violations[0].detail

    def test_violation_callback_feeds_the_flight_recorder(self, tmp_path):
        telemetry = Telemetry()
        recorder = FlightRecorder(telemetry, directory=str(tmp_path))
        monitor = OnlineInvariantMonitor(
            on_violation=recorder.on_invariant_violation
        )
        monitor.attach(telemetry.bus)
        telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        monitor.detach()
        # single-completion and stream-valid both snapshot.
        assert [t["reason"] for t in recorder.triggers] == [
            "invariant-breach",
            "invariant-breach",
        ]
        artifact = tmp_path / "BLACKBOX_000_invariant-breach.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["attrs"]["invariant"] == "single-completion"
        # The ring carried the offending events into the snapshot.
        assert [e["type"] for e in payload["events"]].count("workload.done") == 2

    def test_reorder_buffer_releases_in_seq_order(self):
        # Bus fan-out is re-entrant; the monitor must fold by seq, not
        # by delivery order, to stay bit-identical with a stream fold.
        from repro.obs.events import TelemetryEvent

        folded = []
        monitor = OnlineInvariantMonitor()
        for check in monitor.checks:
            original = check.observe
            check.observe = (  # noqa: B023 - bind per-check
                lambda event, _orig=original: (folded.append(event.seq), _orig(event))[1]
            )
        events = [
            TelemetryEvent(seq=s, time=float(s), type=EventType.WORKLOAD_SUBMITTED)
            for s in range(4)
        ]
        for event in (events[0], events[2], events[3], events[1]):
            monitor.observe(event)
        n_checks = len(monitor.checks)
        assert folded == [s for s in range(4) for _ in range(n_checks)]


# ----------------------------------------------------------------------
# The blackbox + stream wiring of a chaos run
# ----------------------------------------------------------------------
class TestChaosRunArtifacts:
    def test_run_with_dirs_is_bit_identical_and_leaves_artifacts(self, tmp_path):
        import re

        def normalise(events):
            # Store namespaces are a process-global counter, not run state.
            return re.sub(
                r"ctl\d+", "ctlN", json.dumps(events, sort_keys=True)
            )

        provider, _, result, _, _ = _execute(
            "spotverse", default_campaign(), 11, 72.0, 24, small_fleet(),
            apply_kills=True,
        )
        plain = normalise([e.to_dict() for e in provider.telemetry.bus.events()])
        plain_cost = result.total_cost
        provider.shutdown()

        provider, _, result, _, _ = _execute(
            "spotverse", default_campaign(), 11, 72.0, 24, small_fleet(),
            apply_kills=True,
            stream_dir=str(tmp_path / "stream"),
            blackbox_dir=str(tmp_path / "bb"),
        )
        instrumented = normalise(
            [e.to_dict() for e in provider.telemetry.bus.events()]
        )
        assert instrumented == plain  # observation must not perturb the run
        assert result.total_cost == plain_cost
        assert (tmp_path / "stream" / "manifest.json").exists()
        assert (tmp_path / "bb" / "BLACKBOX_final.json").exists()
        provider.shutdown()
