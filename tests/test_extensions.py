"""Tests for the Section 7 future-work extensions: EFS, the
interruption predictor, and metric-availability degradation."""

import math

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import InstanceLifecycle
from repro.cloud.services.efs import DEFAULT_REPLICATION_LAG, EFS_STORAGE_PRICE_GB_MONTH
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import PolicyContext, PurchasingOption
from repro.core.prediction import InterruptionPredictor, PredictiveOptimizer
from repro.core.scoring import RegionMetrics
from repro.errors import ServiceError
from repro.galaxy.checkpoint import EFSCheckpointStore
from repro.sim.clock import HOUR
from repro.workloads.base import synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


@pytest.fixture()
def provider():
    p = CloudProvider(seed=8)
    p.warmup_markets(24)
    return p


class TestEFS:
    def test_write_read_in_region(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        provider.efs.write_file(fs.fs_id, "a/b", b"state", source_region="us-east-1")
        file = provider.efs.read_file(fs.fs_id, "a/b", reader_region="us-east-1")
        assert file.body == b"state"
        assert provider.efs.list_files(fs.fs_id, prefix="a/") == ["a/b"]

    def test_cross_region_write_rejected(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        with pytest.raises(ServiceError):
            provider.efs.write_file(fs.fs_id, "x", b"", source_region="eu-west-1")

    def test_replica_visibility_after_lag(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        provider.efs.create_replica(fs.fs_id, "eu-west-1")
        provider.efs.write_file(fs.fs_id, "ckpt", b"v1", source_region="us-east-1")
        # Not visible before the replication lag...
        with pytest.raises(ServiceError):
            provider.efs.read_file(fs.fs_id, "ckpt", reader_region="eu-west-1")
        provider.engine.run_until(provider.engine.now + DEFAULT_REPLICATION_LAG + 1)
        assert provider.efs.read_file(fs.fs_id, "ckpt", reader_region="eu-west-1").body == b"v1"

    def test_unmounted_region_read_rejected(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        with pytest.raises(ServiceError):
            provider.efs.read_file(fs.fs_id, "x", reader_region="ap-southeast-1")

    def test_replica_constraints(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        with pytest.raises(ServiceError):
            provider.efs.create_replica(fs.fs_id, "us-east-1")
        provider.efs.create_replica(fs.fs_id, "eu-west-1")
        with pytest.raises(ServiceError):
            provider.efs.create_replica(fs.fs_id, "eu-west-2")

    def test_storage_and_replication_billing(self, provider):
        fs = provider.efs.create_file_system("us-east-1")
        provider.efs.create_replica(fs.fs_id, "eu-west-1")
        before = provider.ledger.total()
        provider.efs.write_file(
            fs.fs_id, "big", b"x", source_region="us-east-1",
            logical_bytes=1024 ** 3,  # bill one logical GB
        )
        charged = provider.ledger.total() - before
        expected_storage = EFS_STORAGE_PRICE_GB_MONTH / 30.0
        assert charged == pytest.approx(expected_storage + 0.02, rel=0.01)

    def test_write_duration_fits_notice_window(self, provider):
        # 1 GB within the two-minute notice: the property the paper
        # wants from EFS.
        assert provider.efs.write_duration(1024 ** 3) < 120

    def test_efs_checkpoint_store(self, provider):
        store = EFSCheckpointStore(provider.efs, "us-east-1", replica_region="eu-west-1")
        assert store.save("w", 3, detail={"region": "us-east-1"})
        assert not store.save("w", 2)
        assert store.load("w") == 3
        assert store.detail("w") == {"region": "us-east-1"}
        assert provider.efs.list_files(store.fs_id) == ["checkpoints/w.state"]


class TestInterruptionPredictor:
    def region_metrics(self, region, freq=8.0, spot=0.07):
        return RegionMetrics(
            region=region,
            instance_type="m5.xlarge",
            spot_price=spot,
            od_price=0.192,
            placement_score=3.4,
            interruption_frequency=freq,
        )

    def test_prior_only_without_observations(self, provider):
        predictor = InterruptionPredictor(provider, "m5.xlarge", prior_weight_hours=30)
        hazard = predictor.predicted_hazard(self.region_metrics("eu-west-2", freq=10.0))
        assert hazard == pytest.approx(10.0 * 0.007)

    def test_observations_pull_estimate_up(self, provider):
        predictor = InterruptionPredictor(provider, "m5.xlarge", prior_weight_hours=10)
        metrics = self.region_metrics("ca-central-1", freq=10.0)
        prior = predictor.predicted_hazard(metrics)
        # Fabricate a brutal observed history: 5 interruptions over a
        # few instance-hours.
        for _ in range(5):
            instance = provider.ec2._launch(
                "ca-central-1", "m5.xlarge", InstanceLifecycle.SPOT, tag="t"
            )
            provider.engine.run_until(provider.engine.now + 0.5 * HOUR)
            provider.ec2.interruption_log.append(
                (provider.engine.now, instance.instance_id, "ca-central-1", "t")
            )
            provider.ec2.terminate_instances([instance.instance_id])
        posterior = predictor.predicted_hazard(metrics)
        assert posterior > 2 * prior

    def test_exposure_counts_only_matching_type_and_lifecycle(self, provider):
        predictor = InterruptionPredictor(provider, "m5.xlarge")
        provider.ec2.run_on_demand("eu-west-1", "m5.xlarge")  # on-demand: excluded
        provider.ec2._launch("eu-west-1", "c5.2xlarge", InstanceLifecycle.SPOT, "t")
        provider.engine.run_until(provider.engine.now + HOUR)
        assert predictor.observed_exposure_hours("eu-west-1") == 0.0

    def test_rework_multiplier_shapes(self):
        rm = InterruptionPredictor.rework_multiplier
        assert rm(0.0, 10, False) == 1.0
        assert rm(0.1, 10, False) > rm(0.05, 10, False) > 1.0
        assert rm(0.1, 20, False) > rm(0.1, 10, False)
        # Checkpoint semantics pay far less for the same hazard.
        assert rm(0.1, 10, True) < rm(0.1, 10, False)
        assert math.isinf(rm(10.0, 10, False))

    def test_effective_price_orders_by_risk(self, provider):
        predictor = InterruptionPredictor(provider, "m5.xlarge")
        cheap_flaky = self.region_metrics("us-east-1", freq=25.0, spot=0.05)
        dear_stable = self.region_metrics("eu-west-1", freq=2.0, spot=0.07)
        assert predictor.effective_price(cheap_flaky, 10.5, False) > (
            predictor.effective_price(dear_stable, 10.5, False)
        )


class TestPredictiveOptimizer:
    def make(self, provider, **config_kwargs):
        config = SpotVerseConfig(instance_type="m5.xlarge", **config_kwargs)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        ctx = PolicyContext(
            provider=provider, monitor=monitor, rng=provider.engine.streams.get("t")
        )
        return PredictiveOptimizer(monitor, config), ctx

    def test_migration_is_deterministic_best(self, provider):
        optimizer, ctx = self.make(provider)
        workload = synthetic_workload("w")
        picks = {
            optimizer.migration_placement(workload, "ca-central-1", ctx).region
            for _ in range(10)
        }
        assert len(picks) == 1

    def test_initial_spread_still_round_robin(self, provider):
        optimizer, ctx = self.make(provider)
        placements = optimizer.initial_placements(
            [synthetic_workload(f"w{i}") for i in range(8)], ctx
        )
        assert len({p.region for p in placements}) == 4

    def test_checkpoint_horizon_changes_little(self, provider):
        optimizer, ctx = self.make(provider)
        workload = ngs_preprocessing_workload("w")
        placement = optimizer.migration_placement(workload, "ca-central-1", ctx)
        assert placement.option is PurchasingOption.SPOT

    def test_fleet_runs_end_to_end(self):
        from repro.core.controller import FleetController

        provider = CloudProvider(seed=8)
        provider.warmup_markets(24)
        config = SpotVerseConfig(instance_type="m5.xlarge")
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = PredictiveOptimizer(monitor, config)
        controller = FleetController(provider, policy, config, monitor=monitor)
        result = controller.run(
            [synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(6)],
            max_hours=48,
        )
        assert result.all_complete
        assert result.strategy == "spotverse-predictive"


class TestMetricAvailability:
    def make(self, provider, **config_kwargs):
        config = SpotVerseConfig(instance_type="m5.xlarge", **config_kwargs)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        ctx = PolicyContext(
            provider=provider, monitor=monitor, rng=provider.engine.streams.get("t")
        )
        return SpotVerseOptimizer(monitor, config), ctx

    def test_stability_only_mode_prefers_stable_regions(self, provider):
        # Azure-like: no placement score; threshold 3 = "stability 3".
        optimizer, ctx = self.make(
            provider, use_placement_score=False, score_threshold=3.0
        )
        top = optimizer.top_regions(ctx)
        assert top, "stable regions must qualify on stability alone"
        assert {m.region for m in top} <= {
            "us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1",
        }

    def test_placement_only_mode(self, provider):
        optimizer, ctx = self.make(
            provider, use_stability_score=False, score_threshold=4.0
        )
        top = optimizer.top_regions(ctx)
        assert top
        for metrics in top:
            assert metrics.placement_score >= 4.0

    def test_no_metrics_means_price_only(self, provider):
        # GCP-like: neither metric; threshold 0 admits everyone.
        optimizer, ctx = self.make(
            provider,
            use_placement_score=False,
            use_stability_score=False,
            score_threshold=0.0,
        )
        top = optimizer.top_regions(ctx)
        assert len(top) == 4
        prices = [m.spot_price for m in top]
        assert prices == sorted(prices)

    def test_no_metrics_positive_threshold_falls_back(self, provider):
        optimizer, ctx = self.make(
            provider,
            use_placement_score=False,
            use_stability_score=False,
            score_threshold=1.0,
        )
        placements = optimizer.initial_placements([synthetic_workload("w")], ctx)
        assert placements[0].option is PurchasingOption.ON_DEMAND
