"""Tests for the spotverse CLI."""

import json

import pytest

from repro.cli import main


class TestRecommend:
    def test_prints_region_table(self, capsys):
        assert main(["recommend", "--instance-type", "m5.xlarge", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "SpotVerse top regions" in out
        for region in ("ap-northeast-3", "eu-north-1"):
            assert region in out

    def test_on_demand_recommendation_at_high_threshold(self, capsys):
        assert main(["recommend", "--threshold", "9"]) == 0
        out = capsys.readouterr().out
        assert "ON-DEMAND" in out

    def test_stability_only_mode(self, capsys):
        assert main(["recommend", "--no-placement-score", "--threshold", "3"]) == 0
        out = capsys.readouterr().out
        assert "top regions" in out


class TestRun:
    def test_spotverse_run(self, capsys):
        code = main(
            [
                "run",
                "--strategy", "spotverse",
                "--workload", "synthetic",
                "--workloads", "3",
                "--duration-hours", "2",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 complete" in out

    def test_baseline_run(self, capsys):
        code = main(
            [
                "run",
                "--strategy", "on-demand",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "on-demand" in out

    def test_single_region_with_start_region(self, capsys):
        code = main(
            [
                "run",
                "--strategy", "single-region",
                "--start-region", "eu-north-1",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "1",
            ]
        )
        assert code == 0

    def test_lifelines_flag(self, capsys):
        code = main(
            [
                "run",
                "--strategy", "on-demand",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "1",
                "--lifelines",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet lifelines" in out
        assert "wl-000" in out

    def test_timeline_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "timeline.csv"
        json_path = tmp_path / "timeline.json"
        code = main(
            [
                "run",
                "--strategy", "on-demand",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "1",
                "--export-csv", str(csv_path),
                "--export-json", str(json_path),
            ]
        )
        assert code == 0
        assert "workload_id" in csv_path.read_text()
        import json

        document = json.loads(json_path.read_text())
        assert len(document["workloads"]) == 2

    def test_incomplete_fleet_nonzero_exit(self, capsys):
        code = main(
            [
                "run",
                "--strategy", "on-demand",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "10",
                "--max-hours", "1",
            ]
        )
        assert code == 1


class TestObsSubcommands:
    """`spotverse obs explain` / `obs markets` and their failure modes."""

    @pytest.fixture(scope="class")
    def stream_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        code = main(
            [
                "obs",
                "--workload", "synthetic",
                "--workloads", "3",
                "--duration-hours", "2",
                "--seed", "5",
                "--events", str(path),
            ]
        )
        assert code == 0
        return path

    def test_explain_renders_causal_chain(self, capsys, stream_path):
        assert main(["obs", "explain", "wl-000", "--from-events", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "causal chain for wl-000" in out
        assert "workload.submitted" in out
        assert "workload.done" in out

    def test_explain_unknown_workload_lists_known(self, capsys, stream_path):
        code = main(["obs", "explain", "wl-999", "--from-events", str(stream_path)])
        assert code == 2
        out = capsys.readouterr().out
        assert "never appears" in out
        assert "wl-000" in out  # the error names the known workloads

    def test_markets_from_stream(self, capsys, stream_path):
        assert main(["obs", "markets", "--from-events", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "spot_price" in out
        assert "us-east-1" in out

    def test_empty_stream_fails_gracefully(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        for argv in (
            ["obs", "--from-events", str(empty)],
            ["obs", "explain", "wl-000", "--from-events", str(empty)],
            ["obs", "markets", "--from-events", str(empty)],
        ):
            assert main(argv) == 2
            out = capsys.readouterr().out
            assert "error:" in out
            assert "empty" in out

    def test_truncated_tail_is_tolerated(self, capsys, tmp_path):
        # A half-written final record (live writer mid-line) is skipped,
        # not fatal; here it leaves nothing behind, so the empty-stream
        # error applies.
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text('{"kind": "event", "seq": 0, "time": 0.0, "ty')
        for argv in (
            ["obs", "--from-events", str(truncated)],
            ["obs", "explain", "wl-000", "--from-events", str(truncated)],
            ["obs", "markets", "--from-events", str(truncated)],
        ):
            assert main(argv) == 2
            out = capsys.readouterr().out
            assert "error:" in out
            assert "empty" in out

    def test_corrupt_stream_fails_gracefully(self, capsys, tmp_path):
        # A damaged line that is *not* an unterminated tail is real
        # corruption and still names the line.
        corrupt = tmp_path / "trunc.jsonl"
        corrupt.write_text('{"kind": "event", "seq": 0, "time": 0.0, "ty\n')
        for argv in (
            ["obs", "--from-events", str(corrupt)],
            ["obs", "explain", "wl-000", "--from-events", str(corrupt)],
            ["obs", "markets", "--from-events", str(corrupt)],
        ):
            assert main(argv) == 2
            out = capsys.readouterr().out
            assert "error:" in out
            assert "trunc.jsonl:1" in out  # names the damaged line

    def test_missing_stream_fails_gracefully(self, capsys, tmp_path):
        code = main(["obs", "explain", "w", "--from-events", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error: cannot read" in capsys.readouterr().out

    def test_markets_fresh_simulation(self, capsys):
        assert main(["obs", "markets", "--days", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "day(s) of simulated markets" in out
        assert "spot_price" in out


class TestObsDeepCommands:
    """`spotverse obs profile|trace|slo` (PR 6's deep-observability CLI)."""

    #: Parent obs flags describing a tiny, fast fleet.
    _SMALL = [
        "obs",
        "--workload", "synthetic",
        "--workloads", "2",
        "--duration-hours", "2",
        "--max-hours", "24",
        "--seed", "7",
    ]

    def test_profile_runs_and_round_trips_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "profile.json"
        code = main(self._SMALL + ["profile", "--top", "3", "--json", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot label group" in out
        assert "subsystem" in out
        payload = json.loads(artifact.read_text())
        assert payload["entries"]
        # Render the committed artifact without running a fleet.
        assert main(["obs", "profile", "--from-profile", str(artifact)]) == 0
        assert "hot label group" in capsys.readouterr().out

    def test_profile_rejects_bad_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["obs", "profile", "--from-profile", str(bad)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_trace_renders_causal_tree(self, capsys, tmp_path):
        hops = tmp_path / "hops.json"
        assert main(self._SMALL + ["trace", "wl-001", "--json", str(hops)]) == 0
        out = capsys.readouterr().out
        assert "trace wl-001" in out
        assert "workload:submit" in out
        assert "critical path" in out
        assert json.loads(hops.read_text())

    def test_trace_unknown_workload_lists_known(self, capsys):
        assert main(self._SMALL + ["trace", "wl-999"]) == 2
        out = capsys.readouterr().out
        assert "error: no trace recorded" in out
        assert "wl-000" in out

    def test_slo_default_spec_with_exports(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.prom"
        card = tmp_path / "scorecard.json"
        code = main(
            self._SMALL
            + ["slo", "--export-metrics", str(metrics), "--json", str(card)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO scorecard" in out
        assert "# TYPE" in metrics.read_text()
        assert json.loads(card.read_text())["results"]

    def test_slo_breached_spec_exits_nonzero(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "breach",
                    "targets": [
                        {
                            "metric": "submit_to_placed_seconds",
                            "threshold": 0.001,
                            "objective": 0.99,
                        }
                    ],
                }
            )
        )
        assert main(self._SMALL + ["slo", "--spec", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "SLO BREACH" in out

    def test_slo_scores_saved_stream(self, capsys, tmp_path):
        stream = tmp_path / "run.jsonl"
        assert main(self._SMALL + ["--events", str(stream)]) == 0
        capsys.readouterr()
        assert main(["obs", "slo", "--from-events", str(stream)]) == 0
        assert "SLO scorecard" in capsys.readouterr().out

    def test_slo_rejects_invalid_spec(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"name": "x", "targets": []}))
        assert main(["obs", "slo", "--spec", str(spec)]) == 2
        assert "error:" in capsys.readouterr().out


class TestObsWatch:
    """`spotverse obs watch` — the refreshing terminal dashboard."""

    @pytest.fixture(scope="class")
    def stream_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("watch") / "run.jsonl"
        code = main(
            [
                "obs",
                "--workload", "synthetic",
                "--workloads", "3",
                "--duration-hours", "2",
                "--seed", "5",
                "--events", str(path),
            ]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def chaos_dirs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("chaos-watch")
        stream_dir = base / "stream"
        blackbox_dir = base / "bb"
        main(
            [
                "chaos", "run",
                "--export-stream", str(stream_dir),
                "--blackbox", str(blackbox_dir),
            ]
        )
        return stream_dir, blackbox_dir

    def test_snapshot_from_events_file(self, capsys, stream_path):
        assert main(["obs", "watch", "--from-events", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "spotverse obs watch" in out
        assert "fleet status" in out
        assert "windows (last" in out
        assert "SLO (" in out
        assert "stream complete" in out  # a plain file is a finished run

    def test_once_over_segmented_chaos_stream(self, capsys, chaos_dirs):
        stream_dir, blackbox_dir = chaos_dirs
        capsys.readouterr()
        assert main(["obs", "watch", "--once", "--dir", str(stream_dir)]) == 0
        out = capsys.readouterr().out
        assert "spotverse obs watch" in out
        assert "stream complete" in out  # the sealed manifest is honoured
        assert "done=" in out
        # The chaos run also left its run-end blackbox for CI to upload.
        assert (blackbox_dir / "BLACKBOX_final.json").exists()

    def test_live_once_runs_a_fleet(self, capsys):
        code = main(
            [
                "obs",
                "--workload", "synthetic",
                "--workloads", "2",
                "--duration-hours", "1",
                "--seed", "5",
                "watch", "--live", "--once",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "finished" in out
        assert "workloads 2/2 done" in out

    def test_requires_exactly_one_source(self, capsys, stream_path):
        assert main(["obs", "watch"]) == 2
        assert "exactly one" in capsys.readouterr().out
        assert (
            main(["obs", "watch", "--live", "--from-events", str(stream_path)]) == 2
        )
        assert "exactly one" in capsys.readouterr().out

    def test_missing_stream_dir_fails_gracefully(self, capsys, tmp_path):
        assert main(["obs", "watch", "--once", "--dir", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().out


class TestExperimentAndDatasets:
    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_datasets_summary(self, capsys):
        assert main(["datasets", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "synthetic advisor + placement" in out
        assert "ca-central-1" in out

    def test_datasets_save_archives(self, capsys, tmp_path):
        target = tmp_path / "archive"
        assert main(["datasets", "--days", "3", "--save", str(target)]) == 0
        assert (target / "advisor.jsonl").exists()
        assert (target / "placement.jsonl").exists()
        from repro.data.persist import load_advisor_dataset

        loaded = load_advisor_dataset(target / "advisor.jsonl")
        assert loaded.days == 3

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
