"""Unit tests for DAG-aware placement: graphs, condensation, planning.

Covers the pure layer of :mod:`repro.core.dag` (validation, chain
condensation, compilation, ready-set tracking), the per-edge egress
charge on :class:`~repro.core.execution.WorkloadExecution`, and the
per-provider determinism of the fleet-state namespace counter.
"""

import pytest

from repro.cloud.billing import CostCategory, S3_CROSS_REGION_TRANSFER_PRICE
from repro.cloud.provider import CloudProvider
from repro.core.dag import (
    DagWorkload,
    Stage,
    StageWorkload,
    StepGraph,
    StepPlanner,
    StepTask,
    compile_graph,
    compile_workflow,
    compile_workload,
    condense_chains,
)
from repro.core.execution import WorkloadExecution
from repro.core.fleet import DynamoCheckpointBackend
from repro.core.fleet.state import FleetStateStore
from repro.errors import DagValidationError
from repro.galaxy.checkpoint import InMemoryCheckpointStore
from repro.galaxy.workflow import StepInput, Workflow, WorkflowStep
from repro.sim.clock import HOUR
from repro.workloads.base import WorkloadKind, synthetic_workload

GiB = 1024**3


def diamond() -> StepGraph:
    """a -> (b, c) -> d."""
    return StepGraph(
        "diamond",
        [
            StepTask("a", 3600.0, output_bytes=GiB),
            StepTask("b", 3600.0, deps=("a",), output_bytes=GiB),
            StepTask("c", 3600.0, deps=("a",), output_bytes=2 * GiB),
            StepTask("d", 3600.0, deps=("b", "c")),
        ],
    )


def fan_out(width: int = 8) -> StepGraph:
    """prep -> width x sample -> merge."""
    steps = [StepTask("prep", 1800.0, output_bytes=GiB)]
    steps += [
        StepTask(f"sample{i}", 7200.0, deps=("prep",), output_bytes=GiB)
        for i in range(width)
    ]
    steps.append(
        StepTask("merge", 1800.0, deps=tuple(f"sample{i}" for i in range(width)))
    )
    return StepGraph("fanout", steps)


class TestStepGraphValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(DagValidationError, match="no steps"):
            StepGraph("empty", [])

    def test_duplicate_label_rejected(self):
        with pytest.raises(DagValidationError, match="duplicate step label"):
            StepGraph("dup", [StepTask("a", 1.0), StepTask("a", 1.0)])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(DagValidationError, match="must be positive"):
            StepGraph("zero", [StepTask("a", 0.0)])

    def test_self_dependency_rejected(self):
        with pytest.raises(DagValidationError, match="depends on itself"):
            StepGraph("self", [StepTask("a", 1.0, deps=("a",))])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(DagValidationError, match="unknown step"):
            StepGraph("dangling", [StepTask("a", 1.0, deps=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(DagValidationError, match="dependency cycle"):
            StepGraph(
                "loop",
                [
                    StepTask("a", 1.0, deps=("c",)),
                    StepTask("b", 1.0, deps=("a",)),
                    StepTask("c", 1.0, deps=("b",)),
                ],
            )

    def test_topological_order_respects_deps(self):
        order = diamond().topological_order()
        assert order[0] == "a" and order[-1] == "d"
        assert set(order[1:3]) == {"b", "c"}

    def test_successors_and_predecessors(self):
        graph = diamond()
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("d") == ["b", "c"]
        assert graph.serial_duration() == 4 * 3600.0
        assert len(graph) == 4


class TestCondenseChains:
    def test_linear_graph_is_one_chain(self):
        graph = StepGraph(
            "linear",
            [
                StepTask("a", 1.0),
                StepTask("b", 1.0, deps=("a",)),
                StepTask("c", 1.0, deps=("b",)),
            ],
        )
        chains = condense_chains(graph)
        assert [[t.label for t in chain] for chain in chains] == [["a", "b", "c"]]

    def test_diamond_keeps_branches_separate(self):
        chains = condense_chains(diamond())
        assert [[t.label for t in chain] for chain in chains] == [
            ["a"],
            ["b"],
            ["c"],
            ["d"],
        ]

    def test_fan_out_width_preserved(self):
        chains = condense_chains(fan_out(8))
        labels = [[t.label for t in chain] for chain in chains]
        assert len(labels) == 10  # prep + 8 samples + merge
        assert all(len(chain) == 1 for chain in labels)

    def test_tail_chain_condenses_behind_join(self):
        # (a, b) -> join -> tail: the join/tail pair is a sole-successor
        # sole-predecessor link, so they share one instance.
        graph = StepGraph(
            "join",
            [
                StepTask("a", 1.0),
                StepTask("b", 1.0),
                StepTask("join", 1.0, deps=("a", "b")),
                StepTask("tail", 1.0, deps=("join",)),
            ],
        )
        chains = condense_chains(graph)
        assert [[t.label for t in chain] for chain in chains] == [
            ["a"],
            ["b"],
            ["join", "tail"],
        ]


class TestCompileGraph:
    def test_stage_ids_deps_and_edges(self):
        dag = compile_graph(diamond(), "run1", input_bytes=GiB)
        assert dag.stage_ids() == ["run1:a", "run1:b", "run1:c", "run1:d"]
        a, b, c, d = (dag.stage(sid) for sid in dag.stage_ids())
        assert a.deps == () and a.input_edges == ()
        assert b.deps == ("run1:a",) and b.input_edges == (("run1:a", GiB),)
        assert d.deps == ("run1:b", "run1:c")
        # d pays each producer's own output size.
        assert dict(d.input_edges) == {"run1:b": GiB, "run1:c": 2 * GiB}

    def test_root_stages_carry_external_input_bytes(self):
        dag = compile_graph(fan_out(4), "run1", input_bytes=5 * GiB)
        assert dag.stage("run1:prep").workload.input_bytes == 5 * GiB
        assert all(
            dag.stage(sid).workload.input_bytes == 0
            for sid in dag.stage_ids()
            if sid != "run1:prep"
        )

    def test_duplicated_dependency_ships_its_bytes_once(self):
        # A step wiring the same upstream output into two parameters
        # downloads it once per boot, not once per reference.
        graph = StepGraph(
            "shared",
            [
                StepTask("src", 1.0, output_bytes=GiB),
                StepTask("sink", 1.0, deps=("src", "src")),
            ],
        )
        dag = compile_graph(graph, "run1")
        assert dag.stage("run1:sink").input_edges == (("run1:src", GiB),)

    def test_stage_workload_shape(self):
        dag = compile_graph(diamond(), "run1", checkpoint_bytes=123)
        stage = dag.stage("run1:a")
        workload = stage.workload
        assert isinstance(workload, StageWorkload)
        assert workload.dag_id == "run1"
        assert workload.step_labels == ("a",)
        assert workload.kind is WorkloadKind.CHECKPOINT
        assert workload.checkpoint_bytes == 123
        assert workload.segment_durations == (3600.0,)
        assert dag.n_stages == 4 and dag.n_steps == 4
        assert dag.serial_duration() == 4 * 3600.0

    def test_chain_payload_dispatches_per_step(self):
        ran = []
        graph = StepGraph(
            "payloads",
            [
                StepTask("a", 1.0, payload=lambda: ran.append("a")),
                StepTask("b", 1.0, deps=("a",), payload=lambda: ran.append("b")),
            ],
        )
        dag = compile_graph(graph, "run1")
        (stage,) = dag.stages
        stage.workload.payload(0)
        stage.workload.payload(1)
        assert ran == ["a", "b"]

    def test_dag_workload_validation(self):
        stage = Stage("s1", synthetic_workload("s1", 1.0, 1), ("s1",))
        with pytest.raises(DagValidationError, match="no stages"):
            DagWorkload("d", [])
        with pytest.raises(DagValidationError, match="duplicate stage id"):
            DagWorkload("d", [stage, stage])
        with pytest.raises(DagValidationError, match="unknown stage"):
            DagWorkload(
                "d",
                [Stage("s2", synthetic_workload("s2", 1.0, 1), ("s2",), deps=("ghost",))],
            )


class TestCompileWorkload:
    def test_degenerate_dag_reuses_the_workload_object(self):
        workload = synthetic_workload("wl-1", duration_hours=2.0, n_segments=4)
        dag = compile_workload(workload)
        assert dag.dag_id == "wl-1"
        (stage,) = dag.stages
        assert stage.stage_id == "wl-1"
        assert stage.workload is workload  # identity, not a copy
        assert stage.deps == () and stage.input_edges == ()


class TestCompileWorkflow:
    def test_galaxy_workflow_becomes_step_graph(self):
        workflow = Workflow(
            "wf",
            [
                WorkflowStep("fetch", "sra_fetch", duration=600.0),
                WorkflowStep(
                    "qc",
                    "fastqc",
                    inputs={"reads": StepInput("fetch", "out")},
                    duration=1200.0,
                ),
                WorkflowStep(
                    "trim",
                    "cutadapt",
                    inputs={"reads": StepInput("fetch", "out")},
                    duration=1800.0,
                ),
                WorkflowStep(
                    "report",
                    "multiqc",
                    inputs={
                        "qc": StepInput("qc", "out"),
                        "trimmed": StepInput("trim", "out"),
                    },
                    duration=600.0,
                ),
            ],
        )
        dag = compile_workflow(workflow, "inv1", output_bytes=GiB)
        assert dag.stage_ids() == ["inv1:fetch", "inv1:qc", "inv1:trim", "inv1:report"]
        report = dag.stage("inv1:report")
        assert set(report.deps) == {"inv1:qc", "inv1:trim"}
        assert dag.stage("inv1:qc").workload.total_duration == 1200.0
        assert dag.serial_duration() == workflow.total_duration()


class TestStepPlanner:
    def test_ready_release_done_lifecycle(self):
        planner = StepPlanner(compile_graph(diamond(), "run1"))
        assert [s.stage_id for s in planner.ready()] == ["run1:a"]
        planner.mark_released("run1:a")
        assert planner.ready() == []
        newly = planner.mark_done("run1:a")
        assert [s.stage_id for s in newly] == ["run1:b", "run1:c"]
        for sid in ("run1:b", "run1:c"):
            planner.mark_released(sid)
        assert planner.mark_done("run1:b") == []
        newly = planner.mark_done("run1:c")
        assert [s.stage_id for s in newly] == ["run1:d"]
        planner.mark_released("run1:d")
        assert not planner.all_done
        planner.mark_done("run1:d")
        assert planner.all_done
        assert planner.done == frozenset(planner.dag.stage_ids())

    def test_completion_without_release_rejected(self):
        planner = StepPlanner(compile_graph(diamond(), "run1"))
        with pytest.raises(DagValidationError, match="without being released"):
            planner.mark_done("run1:a")

    def test_mark_released_unknown_stage_rejected(self):
        planner = StepPlanner(compile_graph(diamond(), "run1"))
        with pytest.raises(DagValidationError, match="no stage"):
            planner.mark_released("run1:ghost")


class TestStepInputEgress:
    def _execution(self, provider, sources):
        provider.s3.create_bucket("results", "us-east-1")
        workload = synthetic_workload("w", duration_hours=1.0, n_segments=2)
        execution = WorkloadExecution(
            workload=workload,
            provider=provider,
            backend=DynamoCheckpointBackend(
                provider, "results", progress_store=InMemoryCheckpointStore()
            ),
            results_bucket="results",
            boot_delay=60.0,
            execute_payloads=False,
            on_complete=lambda e: None,
        )
        execution.input_sources = sources
        return execution

    def test_cross_region_inputs_charged_at_boot(self):
        provider = CloudProvider(seed=4)
        provider.warmup_markets(8)
        execution = self._execution(provider, [("eu-west-1", 2 * GiB)])
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(2 * HOUR)
        assert provider.ledger.total(CostCategory.S3_TRANSFER) == pytest.approx(
            2 * S3_CROSS_REGION_TRANSFER_PRICE
        )
        provider.shutdown()

    def test_same_region_inputs_are_free(self):
        provider = CloudProvider(seed=4)
        provider.warmup_markets(8)
        execution = self._execution(provider, [("us-east-1", 2 * GiB)])
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="w")
        execution.attach(instance)
        provider.engine.run_until(2 * HOUR)
        assert provider.ledger.total(CostCategory.S3_TRANSFER) == 0.0
        provider.shutdown()


class TestStoreNamespaceCounter:
    def test_counter_is_per_provider_not_process_global(self):
        first = CloudProvider(seed=1)
        assert first.dynamodb.next_store_namespace() == "ctl000"
        assert first.dynamodb.next_store_namespace() == "ctl001"
        second = CloudProvider(seed=1)
        # A fresh provider restarts the sequence: instrumented reruns
        # mint the same table names no matter how many controllers
        # earlier runs in this process created.
        assert second.dynamodb.next_store_namespace() == "ctl000"
        first.shutdown()
        second.shutdown()

    def test_fleet_state_stores_mint_distinct_tables(self):
        provider = CloudProvider(seed=1)
        a = FleetStateStore(provider.dynamodb)
        b = FleetStateStore(provider.dynamodb)
        assert a.workloads_table != b.workloads_table
        assert "ctl000" in a.workloads_table
        assert "ctl001" in b.workloads_table
        provider.shutdown()
