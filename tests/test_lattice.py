"""Vectorized market lattice: bit-exactness and TraceBuffer semantics."""

import numpy as np
import pytest

from repro.cloud.lattice import MarketLattice, TraceBuffer
from repro.cloud.provider import CloudProvider
from repro.sim.clock import HOUR


def _paired_providers(seed=13, **kwargs):
    scalar = CloudProvider(seed=seed, vectorized_markets=False, **kwargs)
    vector = CloudProvider(seed=seed, vectorized_markets=True, **kwargs)
    return scalar, vector


def test_vectorized_markets_bit_identical_to_scalar():
    scalar, vector = _paired_providers()
    scalar.engine.run_until(50 * HOUR)
    vector.engine.run_until(50 * HOUR)
    for key, scalar_market in scalar._markets.items():
        vector_market = vector._markets[key]
        assert list(scalar_market.price_trace()) == list(vector_market.price_trace()), key
        assert list(scalar_market.metric_history) == list(vector_market.metric_history), key
        assert scalar_market.spot_price == vector_market.spot_price
        assert scalar_market.placement_score == vector_market.placement_score
        assert scalar_market.interruption_frequency == vector_market.interruption_frequency
        assert scalar_market.stability_score == vector_market.stability_score


def test_vectorized_warmup_bit_identical_to_scalar():
    scalar, vector = _paired_providers()
    scalar.warmup_markets(30)
    vector.warmup_markets(30)
    scalar.engine.run_until(10 * HOUR)
    vector.engine.run_until(10 * HOUR)
    for key, scalar_market in scalar._markets.items():
        vector_market = vector._markets[key]
        assert list(scalar_market.price_trace()) == list(vector_market.price_trace()), key
        assert scalar_market.interruption_frequency == vector_market.interruption_frequency


def test_lattice_survives_noise_block_boundary():
    # A tiny prefetch block forces several refills within one run; the
    # series must stay identical to the scalar reference throughout.
    scalar, vector = _paired_providers()
    markets = list(vector._markets.values())
    for market in markets:
        market._detach_lattice()
    small = MarketLattice(markets, noise_block=4, history_chunk=3)
    vector.lattice = small
    scalar.engine.run_until(25 * HOUR)
    vector.engine.run_until(25 * HOUR)
    for key, scalar_market in scalar._markets.items():
        assert list(scalar_market.price_trace()) == list(
            vector._markets[key].price_trace()
        ), key


def test_scalar_step_raises_when_adopted():
    provider = CloudProvider(seed=3)
    market = next(iter(provider._markets.values()))
    with pytest.raises(RuntimeError):
        market.step(HOUR)


def test_force_frequency_writes_through_to_lattice():
    provider = CloudProvider(seed=3)
    market = next(iter(provider._markets.values()))
    market.force_frequency(3000.0)
    assert market.interruption_frequency == 3000.0


def test_detach_resumes_scalar_stepping():
    provider = CloudProvider(seed=5)
    provider.engine.run_until(5 * HOUR)
    market = next(iter(provider._markets.values()))
    price_before = market.spot_price
    provider.lattice.detach()
    provider.lattice = None
    assert market.spot_price == price_before
    market.step(6 * HOUR)  # no RuntimeError once detached
    assert len(market.price_trace()) == 6


def test_lattice_requires_markets_and_uniform_interval():
    with pytest.raises(ValueError):
        MarketLattice([])
    provider = CloudProvider(seed=5)
    markets = list(provider._markets.values())
    provider.lattice.detach()
    markets[0].step_interval = 2 * HOUR
    with pytest.raises(ValueError):
        MarketLattice(markets).warmup(3)


def test_trace_returns_live_view_not_copy():
    provider = CloudProvider(seed=9)
    market = next(iter(provider._markets.values()))
    provider.engine.run_until(3 * HOUR)
    view = market.price_process.trace()
    assert view is market.price_process.trace()
    assert len(view) == 3
    provider.engine.run_until(5 * HOUR)
    # The view tracks later appends instead of freezing a copy.
    assert len(market.price_process.trace()) == 5


def test_trace_buffer_reads_like_tuple_list():
    buffer = TraceBuffer(2, capacity=2)
    rows = [(0.0, 1.5), (1.0, 2.5), (2.0, 3.5)]
    for row in rows:
        buffer.append(row)  # third append crosses the growth boundary
    assert len(buffer) == 3
    assert buffer[0] == rows[0]
    assert buffer[-1] == rows[-1]
    assert buffer[1:] == rows[1:]
    assert list(buffer) == rows
    assert buffer == rows
    assert [time for time, _ in buffer] == [0.0, 1.0, 2.0]
    with pytest.raises(IndexError):
        buffer[3]


def test_trace_buffer_columns_and_equality():
    buffer = TraceBuffer(2)
    buffer.extend_columns(np.array([0.0, 1.0]), np.array([5.0, 6.0]))
    assert buffer.column(1).tolist() == [5.0, 6.0]
    with pytest.raises(ValueError):
        buffer.column(1)[0] = 9.9  # read-only view
    with pytest.raises(ValueError):
        buffer.extend_columns(np.array([2.0]))  # wrong column count
    other = TraceBuffer(2)
    other.append((0.0, 5.0))
    other.append((1.0, 6.0))
    assert buffer == other
    other.append((2.0, 7.0))
    assert buffer != other
    buffer.clear()
    assert len(buffer) == 0 and buffer == []
