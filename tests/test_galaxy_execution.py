"""Unit tests for the job runner, checkpoint stores, Planemo, and the
Galaxy API facade."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.errors import GalaxyError, JobError
from repro.galaxy.api import GalaxyInstance
from repro.galaxy.checkpoint import DynamoCheckpointStore, InMemoryCheckpointStore
from repro.galaxy.history import History
from repro.galaxy.jobs import JobRunner, JobState
from repro.galaxy.planemo import PlanemoRunner
from repro.galaxy.tools import default_toolshed
from repro.galaxy.workflow import Invocation, StepState, Workflow, WorkflowStep
from repro.sim.engine import SimulationEngine


def sleep_workflow(n_steps=3, duration=100.0):
    steps = [
        WorkflowStep(label=f"s{i}", tool_id="sleep", duration=duration)
        for i in range(n_steps)
    ]
    return Workflow("sleepy", steps)


class TestJobRunner:
    def make_runner(self, **kwargs):
        engine = SimulationEngine()
        history = History("h")
        runner = JobRunner(engine, default_toolshed(), history, **kwargs)
        return engine, history, runner

    def test_runs_steps_serially_in_time(self):
        engine, _, runner = self.make_runner()
        invocation = Invocation(sleep_workflow(3, 100.0), "inv")
        runner.start(invocation)
        engine.run_until(150.0)
        assert invocation.completed_steps() == ["s0"]
        engine.run_until(350.0)
        assert invocation.finished and invocation.ok
        assert all(job.state is JobState.OK for job in runner.jobs)

    def test_on_finished_callback(self):
        engine, _, runner = self.make_runner()
        finished = []
        runner._on_finished = lambda inv: finished.append(inv.invocation_id)
        runner.start(Invocation(sleep_workflow(1), "inv"))
        engine.run_until_idle()
        assert finished == ["inv"]

    def test_outputs_land_in_history(self):
        engine, history, runner = self.make_runner()
        invocation = Invocation(sleep_workflow(1), "inv")
        runner.start(invocation)
        engine.run_until_idle()
        assert history.latest("s0/slept") is not None

    def test_pause_loses_inflight_step_only(self):
        engine, _, runner = self.make_runner()
        invocation = Invocation(sleep_workflow(3, 100.0), "inv")
        runner.start(invocation)
        engine.run_until(150.0)  # s0 done, s1 halfway
        runner.pause()
        assert invocation.results["s0"].state is StepState.OK
        assert invocation.results["s1"].state is StepState.NEW
        engine.run_until(1000.0)
        assert not invocation.finished  # nothing runs while paused
        runner.resume()
        engine.run_until_idle()
        assert invocation.ok

    def test_double_start_rejected(self):
        engine, _, runner = self.make_runner()
        runner.start(Invocation(sleep_workflow(), "a"))
        with pytest.raises(JobError):
            runner.start(Invocation(sleep_workflow(), "b"))

    def test_resume_without_start_rejected(self):
        _, _, runner = self.make_runner()
        with pytest.raises(JobError):
            runner.resume()

    def test_tool_error_marks_step_and_stops(self):
        engine = SimulationEngine()
        history = History("h")
        runner = JobRunner(engine, default_toolshed(), history)
        workflow = Workflow(
            "bad",
            [
                WorkflowStep(
                    label="explode",
                    tool_id="fastqc",
                    params={"fastq": "not valid fastq at all"},
                    duration=10.0,
                ),
                WorkflowStep(label="after", tool_id="sleep", duration=10.0),
            ],
        )
        invocation = Invocation(workflow, "inv")
        runner.start(invocation)
        engine.run_until_idle()
        assert invocation.results["explode"].state is StepState.ERROR
        assert invocation.results["explode"].error
        assert invocation.results["after"].state is StepState.NEW

    def test_skip_payloads_mode(self):
        engine, history, runner = self.make_runner(execute_payloads=False)
        workflow = Workflow(
            "skipped",
            [
                WorkflowStep(
                    label="explode",
                    tool_id="fastqc",
                    params={"fastq": "garbage"},
                    duration=5.0,
                )
            ],
        )
        invocation = Invocation(workflow, "inv")
        runner.start(invocation)
        engine.run_until_idle()
        # Payload skipped: step completes despite the bad params.
        assert invocation.ok
        assert len(history) == 0

    def test_step_complete_hook(self):
        engine, _, runner = self.make_runner()
        seen = []
        runner._on_step_complete = lambda label, outputs: seen.append(label)
        runner.start(Invocation(sleep_workflow(2), "inv"))
        engine.run_until_idle()
        assert seen == ["s0", "s1"]


class TestCheckpointStores:
    @pytest.fixture(params=["memory", "dynamo"])
    def store(self, request):
        if request.param == "memory":
            return InMemoryCheckpointStore()
        provider = CloudProvider(seed=0)
        return DynamoCheckpointStore(provider.dynamodb)

    def test_monotonic_progress(self, store):
        assert store.load("w") == 0
        assert store.save("w", 3, detail={"region": "x"})
        assert store.load("w") == 3
        assert store.detail("w") == {"region": "x"}
        # A stale instance cannot roll progress back.
        assert not store.save("w", 2)
        assert store.load("w") == 3
        assert store.save("w", 5)
        assert store.load("w") == 5

    def test_equal_progress_rejected(self, store):
        store.save("w", 3)
        assert not store.save("w", 3)

    def test_independent_workloads(self, store):
        store.save("a", 2)
        store.save("b", 7)
        assert store.load("a") == 2
        assert store.load("b") == 7

    def test_detail_empty_when_unsaved(self, store):
        assert store.detail("ghost") == {}


class TestPlanemo:
    def test_private_engine_runs_to_completion(self):
        runner = PlanemoRunner()
        invocation = runner.run(sleep_workflow())
        assert invocation.ok

    def test_shared_engine_caller_drives_clock(self):
        engine = SimulationEngine()
        runner = PlanemoRunner(engine=engine)
        invocation = runner.run(sleep_workflow(2, 50.0))
        assert not invocation.finished
        engine.run_until_idle()
        assert invocation.ok

    def test_failed_workflow_raises(self):
        runner = PlanemoRunner()
        workflow = Workflow(
            "bad",
            [
                WorkflowStep(
                    label="x", tool_id="fastqc", params={"fastq": "junk"}, duration=1.0
                )
            ],
        )
        with pytest.raises(GalaxyError):
            runner.run(workflow)


class TestGalaxyInstance:
    def make_galaxy(self):
        galaxy = GalaxyInstance(admin_users=["admin@x.org"])
        return galaxy, galaxy.api_key_for("admin@x.org")

    def test_requires_admin_users(self):
        with pytest.raises(GalaxyError):
            GalaxyInstance(admin_users=[])

    def test_api_key_auth(self):
        galaxy, key = self.make_galaxy()
        with pytest.raises(GalaxyError):
            galaxy.api_key_for("random@user.org")
        with pytest.raises(GalaxyError):
            galaxy.create_history("wrong-key")
        assert galaxy.create_history(key, "mine").name == "mine"

    def test_register_and_invoke(self):
        galaxy, key = self.make_galaxy()
        galaxy.register_workflow(key, sleep_workflow())
        assert galaxy.workflows() == ["sleepy"]
        invocation = galaxy.invoke_workflow(key, "sleepy")
        assert invocation.ok

    def test_invoke_unknown_workflow(self):
        galaxy, key = self.make_galaxy()
        with pytest.raises(GalaxyError):
            galaxy.invoke_workflow(key, "nope")

    def test_history_lookup(self):
        galaxy, key = self.make_galaxy()
        galaxy.create_history(key, "h1")
        assert galaxy.history("h1").name == "h1"
        with pytest.raises(GalaxyError):
            galaxy.history("missing")

    def test_install_tool_requires_valid_key(self):
        from repro.galaxy.tools import Tool

        galaxy, key = self.make_galaxy()
        tool = Tool("custom", "Custom", "1", "", lambda p: {})
        with pytest.raises(GalaxyError):
            galaxy.install_tool("bad-key", tool)
        galaxy.install_tool(key, tool)
        assert "custom" in galaxy.toolshed
