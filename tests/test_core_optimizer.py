"""Unit tests for Algorithm 1 (the Optimizer) and the policy baselines."""

import pytest

from repro.cloud.profiles import THRESHOLD_EPOCH_OVERRIDES, default_market_profiles
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import PolicyContext, PurchasingOption
from repro.errors import NoFeasibleRegionError
from repro.strategies import (
    CheapestMigrationPolicy,
    NaiveMultiRegionPolicy,
    OnDemandPolicy,
    SingleRegionPolicy,
    SkyPilotPolicy,
)
from repro.errors import StrategyError
from repro.workloads.base import synthetic_workload

STABLE_SET = {"us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1"}


def make_context(seed=3, overrides=None):
    profiles = default_market_profiles()
    if overrides:
        profiles = profiles.with_overrides(overrides)
    provider = CloudProvider(seed=seed, profiles=profiles)
    provider.warmup_markets(48)
    monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
    monitor.collect()
    ctx = PolicyContext(
        provider=provider, monitor=monitor, rng=provider.engine.streams.get("test")
    )
    return provider, monitor, ctx


def workloads(n):
    return [synthetic_workload(f"w{i}") for i in range(n)]


class TestSpotVerseOptimizer:
    def test_top_regions_threshold_6_is_stable_tier(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(monitor, SpotVerseConfig(score_threshold=6.0))
        top = optimizer.top_regions(ctx)
        assert {m.region for m in top} == STABLE_SET
        prices = [m.spot_price for m in top]
        assert prices == sorted(prices)

    def test_initial_round_robin_over_top_r(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(monitor, SpotVerseConfig())
        placements = optimizer.initial_placements(workloads(8), ctx)
        assert len(placements) == 8
        # Round-robin: placement i and i+4 share a region.
        for i in range(4):
            assert placements[i].region == placements[i + 4].region
        assert {p.region for p in placements} == STABLE_SET
        assert all(p.option is PurchasingOption.SPOT for p in placements)

    def test_concentrated_start_mode(self):
        _, monitor, ctx = make_context()
        config = SpotVerseConfig(initial_distribution=False, start_region="ca-central-1")
        optimizer = SpotVerseOptimizer(monitor, config)
        placements = optimizer.initial_placements(workloads(5), ctx)
        assert all(p.region == "ca-central-1" for p in placements)

    def test_concentrated_start_defaults_to_cheapest(self):
        _, monitor, ctx = make_context()
        config = SpotVerseConfig(initial_distribution=False)
        optimizer = SpotVerseOptimizer(monitor, config)
        placements = optimizer.initial_placements(workloads(2), ctx)
        assert all(p.region == "ca-central-1" for p in placements)  # Table 1

    def test_migration_excludes_interrupted_region(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(monitor, SpotVerseConfig())
        for _ in range(20):
            placement = optimizer.migration_placement(
                workloads(1)[0], "ap-northeast-3", ctx
            )
            assert placement.region != "ap-northeast-3"
            assert placement.region in STABLE_SET

    def test_migration_is_randomized(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(monitor, SpotVerseConfig())
        picks = {
            optimizer.migration_placement(workloads(1)[0], "ca-central-1", ctx).region
            for _ in range(40)
        }
        assert len(picks) >= 2, "random migration should hit several regions"

    def test_on_demand_fallback(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(monitor, SpotVerseConfig(score_threshold=9.0))
        placements = optimizer.initial_placements(workloads(3), ctx)
        assert all(p.option is PurchasingOption.ON_DEMAND for p in placements)
        assert placements[0].region == "us-east-1"  # cheapest OD multiplier 1.0
        migration = optimizer.migration_placement(workloads(1)[0], "us-east-1", ctx)
        assert migration.option is PurchasingOption.ON_DEMAND

    def test_fallback_disabled_raises(self):
        _, monitor, ctx = make_context()
        optimizer = SpotVerseOptimizer(
            monitor,
            SpotVerseConfig(score_threshold=9.0, use_on_demand_fallback=False),
        )
        with pytest.raises(NoFeasibleRegionError):
            optimizer.initial_placements(workloads(1), ctx)
        with pytest.raises(NoFeasibleRegionError):
            optimizer.migration_placement(workloads(1)[0], "us-east-1", ctx)

    def test_preferred_regions_restrict_candidates(self):
        _, monitor, ctx = make_context()
        config = SpotVerseConfig(preferred_regions=["eu-west-1", "eu-north-1"])
        optimizer = SpotVerseOptimizer(monitor, config)
        top = optimizer.top_regions(ctx)
        assert {m.region for m in top} <= {"eu-west-1", "eu-north-1"}

    def test_preferred_regions_bound_od_fallback(self):
        _, monitor, ctx = make_context()
        config = SpotVerseConfig(
            score_threshold=9.0, preferred_regions=["eu-west-2", "eu-north-1"]
        )
        optimizer = SpotVerseOptimizer(monitor, config)
        placement = optimizer.initial_placements(workloads(1), ctx)[0]
        assert placement.option is PurchasingOption.ON_DEMAND
        assert placement.region == "eu-north-1"  # cheaper multiplier of the two

    def test_threshold_epoch_selects_paper_table3(self):
        _, monitor, ctx = make_context(overrides=THRESHOLD_EPOCH_OVERRIDES)
        for threshold, expected in [
            (6.0, STABLE_SET),
            (5.0, {"ap-southeast-1", "eu-west-3", "ca-central-1", "eu-west-2"}),
            (4.0, {"us-east-1", "us-east-2", "ap-southeast-2", "us-west-2"}),
        ]:
            optimizer = SpotVerseOptimizer(
                monitor, SpotVerseConfig(score_threshold=threshold)
            )
            assert {m.region for m in optimizer.top_regions(ctx)} == expected


class TestBaselinePolicies:
    def test_single_region_pins(self):
        _, _, ctx = make_context()
        policy = SingleRegionPolicy(region="eu-west-2")
        placements = policy.initial_placements(workloads(3), ctx)
        assert all(p.region == "eu-west-2" for p in placements)
        assert policy.migration_placement(workloads(1)[0], "eu-west-2", ctx).region == "eu-west-2"

    def test_single_region_defaults_to_cheapest_spot(self):
        _, _, ctx = make_context()
        policy = SingleRegionPolicy(instance_type="m5.xlarge")
        assert policy.initial_placements(workloads(1), ctx)[0].region == "ca-central-1"

    def test_on_demand_policy(self):
        _, _, ctx = make_context()
        policy = OnDemandPolicy(instance_type="m5.xlarge")
        placement = policy.initial_placements(workloads(1), ctx)[0]
        assert placement.option is PurchasingOption.ON_DEMAND
        assert placement.region == "us-east-1"

    def test_skypilot_chases_catalog_price(self):
        _, _, ctx = make_context()
        policy = SkyPilotPolicy(instance_type="m5.xlarge")
        placement = policy.initial_placements(workloads(1), ctx)[0]
        assert placement.region == "ca-central-1"
        # No exclusion: it returns to the cheapest market.
        migration = policy.migration_placement(workloads(1)[0], "ca-central-1", ctx)
        assert migration.region == "ca-central-1"

    def test_naive_multi_region_round_robin(self):
        _, _, ctx = make_context()
        policy = NaiveMultiRegionPolicy(["r1", "r2", "r3"])
        placements = policy.initial_placements(workloads(6), ctx)
        assert [p.region for p in placements] == ["r1", "r2", "r3", "r1", "r2", "r3"]
        migration = policy.migration_placement(workloads(1)[0], "r1", ctx)
        assert migration.region in {"r2", "r3"}

    def test_naive_multi_region_needs_two_regions(self):
        with pytest.raises(StrategyError):
            NaiveMultiRegionPolicy(["only-one"])

    def test_cheapest_migration_variant(self):
        _, monitor, ctx = make_context()
        policy = CheapestMigrationPolicy(monitor, SpotVerseConfig())
        picks = {
            policy.migration_placement(workloads(1)[0], "ca-central-1", ctx).region
            for _ in range(10)
        }
        assert len(picks) == 1, "cheapest migration must be deterministic"
        (pick,) = picks
        assert pick in STABLE_SET
