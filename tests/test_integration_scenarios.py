"""End-to-end integration scenarios combining multiple features."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.core import FleetController, SpotVerse, SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.prediction import PredictiveOptimizer
from repro.workloads import (
    genome_reconstruction_workload,
    ngs_preprocessing_workload,
    standard_general_workload,
    synthetic_workload,
)


class TestMixedFleet:
    def test_standard_and_checkpoint_together(self):
        """One fleet mixing restart and resume semantics completes, and
        the checkpoint half suffers less elapsed time per workload."""
        provider = CloudProvider(seed=31)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        spotverse = SpotVerse(provider, config)
        fleet = [
            genome_reconstruction_workload(f"std-{i}", duration_hours=8.0)
            for i in range(6)
        ] + [
            ngs_preprocessing_workload(f"ckp-{i}", duration_hours=8.0)
            for i in range(6)
        ]
        result = spotverse.run(fleet, max_hours=96)
        assert result.all_complete
        std_elapsed = [
            record.elapsed for record in result.records if record.workload_id.startswith("std")
        ]
        ckp_elapsed = [
            record.elapsed for record in result.records if record.workload_id.startswith("ckp")
        ]
        assert sum(ckp_elapsed) / len(ckp_elapsed) <= sum(std_elapsed) / len(std_elapsed)

    def test_all_three_paper_workloads(self):
        provider = CloudProvider(seed=32)
        spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
        fleet = [
            standard_general_workload("qiime", duration_hours=5.0),
            genome_reconstruction_workload("genome", duration_hours=5.0),
            ngs_preprocessing_workload("ngs", duration_hours=5.0),
        ]
        result = spotverse.run(fleet, max_hours=72)
        assert result.all_complete


class TestPreferredRegions:
    def test_fleet_respects_region_allow_list(self):
        provider = CloudProvider(seed=33)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            preferred_regions=["eu-west-1", "eu-north-1", "eu-west-2"],
            score_threshold=6.0,
        )
        spotverse = SpotVerse(provider, config)
        fleet = [synthetic_workload(f"w{i}", duration_hours=6.0) for i in range(8)]
        result = spotverse.run(fleet, max_hours=72)
        assert result.all_complete
        used = set(result.regions_used())
        assert used <= {"eu-west-1", "eu-north-1", "eu-west-2"}


class TestFeatureCombination:
    def test_predictive_policy_with_efs_backend(self):
        """The two Section 7 extensions compose."""
        provider = CloudProvider(seed=34)
        provider.warmup_markets(24)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
            checkpoint_backend="efs",
        )
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = PredictiveOptimizer(monitor, config)
        controller = FleetController(provider, policy, config, monitor=monitor)
        fleet = [ngs_preprocessing_workload(f"w{i}", duration_hours=6.0) for i in range(8)]
        result = controller.run(fleet, max_hours=72)
        assert result.all_complete
        if result.total_interruptions:
            # Checkpoint artifacts went to EFS, not S3.
            assert provider.efs.file_systems()
            assert (
                provider.s3.list_objects("spotverse-results", prefix="checkpoints/")
                == []
            )

    def test_metric_degraded_mode_end_to_end(self):
        """Azure-like stability-only scoring still runs whole fleets."""
        provider = CloudProvider(seed=35)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            use_placement_score=False,
            score_threshold=3.0,
        )
        spotverse = SpotVerse(provider, config)
        fleet = [synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(6)]
        result = spotverse.run(fleet, max_hours=48)
        assert result.all_complete
        launch_regions = {record.regions[0] for record in result.records}
        assert launch_regions <= {
            "us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1",
        }

    def test_sequential_fleets_on_one_provider(self):
        """A long-lived SpotVerse deployment runs fleet after fleet."""
        provider = CloudProvider(seed=36)
        spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
        first = spotverse.run(
            [synthetic_workload(f"a{i}", duration_hours=2.0) for i in range(4)],
            max_hours=24,
        )
        assert first.all_complete
        second = spotverse.run(
            [synthetic_workload(f"b{i}", duration_hours=2.0) for i in range(4)],
            max_hours=24,
        )
        assert second.all_complete
        # Cost keeps accumulating on the shared ledger; the second
        # result's total covers both fleets (documented behaviour of a
        # shared provider).
        assert second.total_cost >= first.total_cost
        # Reusing a workload id across fleets on one controller is a
        # caller error and is rejected.
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            spotverse.run([synthetic_workload("a0", duration_hours=1.0)])
