"""Tests for the telemetry subsystem: bus, metrics, spans, exports.

Covers the unit surface of ``repro.obs``, the engine tracer/profiler
that replaced ``trace_log``, and the acceptance-level integration:
a seeded fleet through :class:`FleetController` whose event stream
contains matched request → fulfill → interrupt → migrate → done
sequences and whose metric totals reconcile with the
:class:`FleetResult` costs.
"""

import json

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.errors import ReproError
from repro.obs import (
    EventBus,
    EventType,
    MetricsRegistry,
    RunReport,
    Telemetry,
    TelemetryEvent,
    build_spans,
    read_jsonl,
    validate_stream,
    write_jsonl,
)
from repro.sim.engine import SimulationEngine
from repro.strategies import OnDemandPolicy, SingleRegionPolicy
from repro.workloads import genome_reconstruction_workload
from repro.workloads.base import synthetic_workload


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_emit_stamps_clock_and_monotonic_seq(self):
        times = iter([1.0, 2.5, 2.5])
        bus = EventBus(clock=lambda: next(times))
        a = bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w1")
        b = bus.emit(EventType.SPOT_REQUESTED, workload_id="w1", request_id="sir-0")
        c = bus.emit(EventType.SPOT_FULFILLED, workload_id="w1", request_id="sir-0")
        assert [event.seq for event in (a, b, c)] == [0, 1, 2]
        assert [event.time for event in (a, b, c)] == [1.0, 2.5, 2.5]

    def test_filtering_by_type_and_workload(self):
        bus = EventBus()
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w1")
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w2")
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w1")
        assert len(bus.events(EventType.WORKLOAD_SUBMITTED)) == 2
        assert len(bus.events(workload_id="w1")) == 2
        assert len(bus.events(EventType.WORKLOAD_DONE, workload_id="w2")) == 0

    def test_subscribers_receive_filtered_events(self):
        bus = EventBus()
        seen, all_seen = [], []
        unsubscribe = bus.subscribe(seen.append, types=[EventType.WORKLOAD_DONE])
        bus.subscribe(all_seen.append)
        bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w")
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w")
        assert [event.type for event in seen] == [EventType.WORKLOAD_DONE]
        assert len(all_seen) == 2
        unsubscribe()
        bus.emit(EventType.WORKLOAD_DONE, workload_id="w")
        assert len(seen) == 1

    def test_event_round_trips_through_dict(self):
        bus = EventBus(clock=lambda: 42.0)
        event = bus.emit(
            EventType.SPOT_FULFILLED,
            workload_id="w",
            region="eu-west-1",
            request_id="sir-1",
            latency=61.5,
        )
        clone = TelemetryEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("interruptions_total")
        counter.inc(region="eu-west-1")
        counter.inc(2.0, region="eu-west-1")
        counter.inc(region="us-east-1")
        assert counter.value(region="eu-west-1") == 3.0
        assert counter.total() == 4.0
        assert registry.counter("interruptions_total") is counter

    def test_counter_rejects_decrease(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("open_requests")
        gauge.set(3.0, region="r")
        gauge.add(-1.0, region="r")
        assert gauge.value(region="r") == 2.0
        assert gauge.value(region="other") == 0.0

    def test_histogram_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == 10.0
        assert histogram.mean() == 2.5
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0
        assert histogram.percentile(50) in (2.0, 3.0)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_collect_and_render(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(region="r1")
        registry.histogram("b").observe(2.0)
        samples = registry.collect()
        assert [sample.name for sample in samples] == ["a", "b"]
        text = registry.render()
        assert 'a{region="r1"} 1' in text
        assert "b_count 1" in text


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
def _stream(*specs):
    """Build TelemetryEvents from (time, type, workload_id, extras) tuples."""
    events = []
    for seq, (time, type, wid, extras) in enumerate(specs):
        events.append(
            TelemetryEvent(seq=seq, time=time, type=type, workload_id=wid, **extras)
        )
    return events


class TestSpans:
    def test_lifecycle_folds_into_phases(self):
        events = _stream(
            (0.0, EventType.WORKLOAD_SUBMITTED, "w", {}),
            (60.0, EventType.INSTANCE_ATTACHED, "w", {"region": "r1", "option": "spot"}),
            (240.0, EventType.WORKLOAD_RUNNING, "w", {"region": "r1"}),
            (1000.0, EventType.INTERRUPTION_WARNING, "w", {"region": "r1"}),
            (1600.0, EventType.INSTANCE_ATTACHED, "w", {"region": "r2", "option": "spot"}),
            (1780.0, EventType.WORKLOAD_RUNNING, "w", {"region": "r2"}),
            (3000.0, EventType.WORKLOAD_DONE, "w", {}),
        )
        tree = build_spans(events)["w"]
        assert [span.name for span in tree.phases] == [
            "request", "boot", "run", "migrating", "boot", "run",
        ]
        assert tree.root.end == 3000.0
        assert tree.n_interruptions == 1
        assert tree.phase_time("request") == 60.0
        assert tree.phase_time("migrating") == 600.0
        assert tree.phase_time("run") == (1000.0 - 240.0) + (3000.0 - 1780.0)
        interrupted_run = tree.phases[2]
        assert interrupted_run.status == "interrupted"
        assert interrupted_run.region == "r1"

    def test_unfinished_workload_stays_open(self):
        events = _stream(
            (0.0, EventType.WORKLOAD_SUBMITTED, "w", {}),
            (60.0, EventType.INSTANCE_ATTACHED, "w", {"region": "r1"}),
        )
        tree = build_spans(events)["w"]
        assert tree.root.end is None
        assert tree.phases[-1].status == "open"


# ----------------------------------------------------------------------
# Engine tracer / profiler (reset satellite)
# ----------------------------------------------------------------------
class TestEngineTracer:
    def test_traced_engine_records_labels_and_wall_time(self):
        engine = SimulationEngine(seed=0, trace=True)
        engine.call_in(1.0, lambda: None, label="a:one")
        engine.call_in(2.0, lambda: None, label="b:two")
        engine.run_until(5.0)
        assert engine.fired_events == 2
        assert engine.tracer.as_tuples() == [(1.0, "a:one"), (2.0, "b:two")]
        assert [r.label for r in engine.tracer.filter(prefix="a:")] == ["a:one"]
        stats = engine.tracer.stats()
        assert stats["a:one"].count == 1
        assert stats["a:one"].wall_total >= 0.0
        assert engine.tracer.events_per_second() > 0.0
        assert "events/sec" in engine.tracer.report()

    def test_untraced_engine_has_no_tracer(self):
        engine = SimulationEngine(seed=0)
        engine.call_in(1.0, lambda: None)
        engine.run_until(2.0)
        assert engine.tracer is None
        assert not hasattr(engine, "trace_log")  # legacy tuple view is gone

    def test_reset_zeroes_fired_events_and_trace(self):
        engine = SimulationEngine(seed=0, trace=True)
        engine.call_in(1.0, lambda: None, label="x")
        engine.run_until(2.0)
        assert engine.fired_events == 1
        engine.reset()
        assert engine.fired_events == 0
        assert engine.now == 0.0
        assert engine.tracer.as_tuples() == []


# ----------------------------------------------------------------------
# Export: JSONL round trip, validation, report rendering
# ----------------------------------------------------------------------
class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        telemetry = Telemetry(clock=lambda: 7.0)
        telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w")
        telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="w", attempts=1)
        telemetry.metrics.counter("cost_accrued_usd").inc(
            1.25, region="r1", purchasing_option="spot"
        )
        telemetry.metrics.histogram("migration_latency_seconds").observe(90.0)
        path = str(tmp_path / "run.jsonl")
        assert write_jsonl(path, telemetry) == 4
        events, samples = read_jsonl(path)
        assert [event.type for event in events] == [
            EventType.WORKLOAD_SUBMITTED, EventType.WORKLOAD_DONE,
        ]
        assert events[1].attrs == {"attempts": 1}
        assert samples[0].name == "cost_accrued_usd"
        assert samples[0].value == 1.25
        assert dict(samples[0].labels) == {"region": "r1", "purchasing_option": "spot"}
        # Metric kinds survive the round trip (the line tag must not
        # collide with the sample's own "kind" field).
        assert [sample.kind for sample in samples] == ["counter", "histogram"]
        assert samples[1].count == 1

    def test_read_jsonl_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError, match="bad.jsonl:1"):
            read_jsonl(str(path))

    def test_validate_stream_flags_violations(self):
        good = _stream(
            (0.0, EventType.WORKLOAD_SUBMITTED, "w", {}),
            (1.0, EventType.SPOT_REQUESTED, "w", {"request_id": "sir-0"}),
            (2.0, EventType.SPOT_FULFILLED, "w", {"request_id": "sir-0"}),
            (9.0, EventType.WORKLOAD_DONE, "w", {}),
        )
        assert validate_stream(good) == []

        orphan_fulfill = _stream(
            (0.0, EventType.SPOT_FULFILLED, "w", {"request_id": "sir-9"}),
        )
        assert any("unknown request" in p for p in validate_stream(orphan_fulfill))

        migration_without_warning = _stream(
            (0.0, EventType.MIGRATION_STARTED, "w", {}),
        )
        assert any("without a prior interruption" in p
                   for p in validate_stream(migration_without_warning))

        after_done = _stream(
            (0.0, EventType.WORKLOAD_DONE, "w", {}),
            (1.0, EventType.WORKLOAD_RUNNING, "w", {}),
        )
        assert any("after workload.done" in p for p in validate_stream(after_done))

        backwards = [
            TelemetryEvent(seq=0, time=5.0, type=EventType.WORKLOAD_SUBMITTED),
            TelemetryEvent(seq=1, time=4.0, type=EventType.WORKLOAD_SUBMITTED),
        ]
        assert any("time went backwards" in p for p in validate_stream(backwards))

    def test_report_renders_sections(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w")
        telemetry.bus.emit(
            EventType.INTERRUPTION_WARNING, workload_id="w", region="eu-west-1"
        )
        telemetry.metrics.counter("cost_accrued_usd").inc(
            2.0, region="eu-west-1", purchasing_option="spot"
        )
        text = RunReport.from_telemetry(telemetry).render()
        assert "instance cost by region / purchasing option" in text
        assert "eu-west-1" in text
        assert "interruptions by region" in text
        assert "workload span timeline" in text


# ----------------------------------------------------------------------
# Integration: seeded fleet through FleetController (acceptance)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def interrupted_fleet():
    """A quickstart-scale single-region fleet that suffers interruptions."""
    provider = CloudProvider(seed=7)
    provider.warmup_markets(48)
    controller = FleetController(
        provider,
        SingleRegionPolicy(instance_type="m5.xlarge"),
        SpotVerseConfig(instance_type="m5.xlarge"),
    )
    fleet = [genome_reconstruction_workload(f"wl-{i:03d}") for i in range(8)]
    result = controller.run(fleet, max_hours=160.0)
    return provider, controller, result


class TestFleetTelemetryIntegration:
    def test_stream_is_ordered_and_causal_under_interruptions(self, interrupted_fleet):
        provider, _, result = interrupted_fleet
        events = list(provider.telemetry.bus)
        assert result.total_interruptions > 0  # the scenario exercises migration
        assert validate_stream(events) == []
        sequences = [event.seq for event in events]
        assert sequences == sorted(sequences)

    def test_matched_request_fulfill_interrupt_migrate_done_sequences(
        self, interrupted_fleet
    ):
        provider, _, result = interrupted_fleet
        bus = provider.telemetry.bus
        # Every fulfillment matches an earlier request id.
        requested = {e.request_id for e in bus.events(EventType.SPOT_REQUESTED)}
        for event in bus.events(EventType.SPOT_FULFILLED):
            assert event.request_id in requested
        # Per workload: interruptions pair with migrations, done is last.
        full_chains = 0
        for record in result.records:
            wid = record.workload_id
            workload_events = bus.events(workload_id=wid)
            types = [event.type for event in workload_events]
            assert types[0] is EventType.WORKLOAD_SUBMITTED
            assert types[-1] is EventType.WORKLOAD_DONE
            warnings = types.count(EventType.INTERRUPTION_WARNING)
            assert types.count(EventType.MIGRATION_STARTED) == warnings
            assert types.count(EventType.MIGRATION_COMPLETED) == warnings
            assert warnings == record.n_interruptions
            if warnings > 0:
                full_chains += 1
                first_warning = types.index(EventType.INTERRUPTION_WARNING)
                assert EventType.SPOT_FULFILLED in types[:first_warning]
                assert types.index(EventType.MIGRATION_STARTED) > first_warning
        assert full_chains > 0

    def test_metric_totals_reconcile_with_fleet_result(self, interrupted_fleet):
        provider, _, result = interrupted_fleet
        metrics = provider.telemetry.metrics
        cost = metrics.counter("cost_accrued_usd")
        assert cost.total() == pytest.approx(result.instance_cost, rel=1e-9)
        assert metrics.counter("interruptions_total").total() == result.total_interruptions
        assert metrics.counter("workloads_completed_total").total() == result.n_complete
        started = metrics.counter("migrations_started_total").total()
        assert started == result.total_interruptions
        assert metrics.histogram("migration_latency_seconds").count(
            to_region=result.records[0].regions[0]
        ) >= 0  # labelled series exists without raising

    def test_report_round_trips_through_jsonl(self, interrupted_fleet, tmp_path):
        provider, _, result = interrupted_fleet
        path = str(tmp_path / "fleet.jsonl")
        write_jsonl(path, provider.telemetry)
        report = RunReport.from_jsonl(path)
        assert sum(value for _, _, value in report.cost_rows()) == pytest.approx(
            result.instance_cost, rel=1e-9
        )
        assert sum(count for _, count in report.interruption_rows()) == (
            result.total_interruptions
        )
        text = report.render()
        assert f"{result.n_complete}/{len(result.records)} complete" in text
        for record in result.records:
            assert record.workload_id in text

    def test_span_trees_match_records(self, interrupted_fleet):
        provider, _, result = interrupted_fleet
        trees = build_spans(list(provider.telemetry.bus))
        assert set(trees) == {record.workload_id for record in result.records}
        for record in result.records:
            tree = trees[record.workload_id]
            assert tree.n_interruptions == record.n_interruptions
            assert tree.root.end == pytest.approx(record.completed_at)


class TestControllerInstanceMap:
    def test_on_demand_instances_join_by_instance_map(self):
        provider = CloudProvider(seed=3)
        provider.warmup_markets(24)
        controller = FleetController(
            provider,
            OnDemandPolicy(instance_type="m5.xlarge"),
            SpotVerseConfig(instance_type="m5.xlarge"),
        )
        fleet = [synthetic_workload(f"od-{i}", duration_hours=1.0) for i in range(3)]
        result = controller.run(fleet, max_hours=10.0)
        assert result.all_complete
        # Every on-demand launch registered in the uniform instance map.
        launches = provider.telemetry.bus.events(EventType.ON_DEMAND_LAUNCHED)
        assert len(launches) == 3
        for event in launches:
            assert controller._by_instance[event.instance_id].workload.workload_id == (
                event.workload_id
            )
        fallbacks = provider.telemetry.bus.events(EventType.FALLBACK_ON_DEMAND)
        assert len(fallbacks) == 3
        assert {event.attrs["phase"] for event in fallbacks} == {"initial"}


class TestHarnessTelemetryHook:
    def test_arm_spec_telemetry_flows_to_provider(self):
        from repro.experiments.harness import ArmSpec, run_arm

        telemetry = Telemetry()
        spec = ArmSpec(
            name="probe",
            policy_factory=lambda provider, config, monitor: OnDemandPolicy(
                instance_type=config.instance_type
            ),
            config=SpotVerseConfig(instance_type="m5.xlarge"),
            workload_factory=lambda i: synthetic_workload(f"h-{i}", duration_hours=1.0),
            n_workloads=2,
            max_hours=6.0,
            warmup_steps=12,
            telemetry=telemetry,
        )
        result = run_arm(spec)
        assert result.telemetry is telemetry
        assert len(telemetry.bus.events(EventType.WORKLOAD_DONE)) == 2


class TestObsCli:
    def test_obs_runs_exports_and_replays(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        code = main([
            "obs", "--workload", "synthetic", "--workloads", "2",
            "--duration-hours", "1.0", "--max-hours", "12.0",
            "--events", path, "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload span timeline" in out
        assert "engine wall-clock profile" in out
        assert "events/sec" in out

        code = main(["obs", "--from-events", path])
        replay = capsys.readouterr().out
        assert code == 0
        assert "workload span timeline" in replay
        events, samples = read_jsonl(path)
        assert validate_stream(events) == []
        assert any(sample.name == "cost_accrued_usd" for sample in samples)
