"""Unit tests for spot markets, pricing processes, and billing."""

import numpy as np
import pytest

from repro.cloud.billing import CostCategory, CostLedger
from repro.cloud.interruptions import (
    expected_interruptions,
    interruption_probability,
    sample_interruption,
    survival_probability,
)
from repro.cloud.market import PLACEMENT_MAX, PLACEMENT_MIN, SpotMarket
from repro.cloud.pricing import SpotPriceProcess
from repro.cloud.profiles import MarketProfile
from repro.sim.clock import HOUR


def make_profile(**kwargs):
    defaults = dict(region="us-east-1", instance_type="m5.xlarge")
    defaults.update(kwargs)
    return MarketProfile(**defaults)


class TestSpotPriceProcess:
    def test_price_stays_between_floor_and_od(self):
        process = SpotPriceProcess(
            make_profile(spot_fraction=0.4, spot_volatility=0.5),
            od_price=1.0,
            rng=np.random.default_rng(0),
        )
        for step in range(500):
            price = process.step(float(step))
            assert 0.35 * 0.4 <= price <= 1.0

    def test_long_run_average_near_mean(self):
        process = SpotPriceProcess(
            make_profile(spot_fraction=0.4), od_price=1.0, rng=np.random.default_rng(1)
        )
        prices = [process.step(float(i)) for i in range(3000)]
        assert abs(np.mean(prices) - 0.4) < 0.02

    def test_history_records_steps(self):
        process = SpotPriceProcess(make_profile(), od_price=1.0, rng=np.random.default_rng(2))
        process.step(10.0)
        process.step(20.0)
        trace = process.trace()
        assert [t for t, _ in trace] == [10.0, 20.0]


class TestInterruptionModel:
    def test_probability_zero_hazard(self):
        assert interruption_probability(0.0, 300) == 0.0

    def test_probability_increases_with_hazard_and_window(self):
        low = interruption_probability(0.05, 300)
        high = interruption_probability(0.5, 300)
        longer = interruption_probability(0.05, 3600)
        assert 0 < low < high < 1
        assert longer > low

    def test_sample_matches_probability_statistically(self):
        rng = np.random.default_rng(3)
        hazard, dt = 0.5, 3600.0
        hits = sum(sample_interruption(rng, hazard, dt) for _ in range(20000))
        assert abs(hits / 20000 - interruption_probability(hazard, dt)) < 0.01

    def test_expected_and_survival_helpers(self):
        assert expected_interruptions(0.1, 10) == pytest.approx(1.0)
        assert survival_probability(0.1, 10) == pytest.approx(np.exp(-1.0))


class TestSpotMarket:
    def make_market(self, **profile_kwargs):
        return SpotMarket(
            profile=make_profile(**profile_kwargs),
            od_price=1.0,
            rng=np.random.default_rng(7),
        )

    def test_observables_exposed(self):
        market = self.make_market(interruption_freq_pct=8.0, placement_mean=3.4)
        assert market.region == "us-east-1"
        assert market.stability_score == 2
        assert PLACEMENT_MIN <= market.placement_score <= PLACEMENT_MAX
        assert market.spot_price > 0

    def test_step_appends_metric_history(self):
        market = self.make_market()
        market.step(HOUR)
        market.step(2 * HOUR)
        assert len(market.metric_history) == 2
        assert market.metric_history[0][0] == HOUR

    def test_placement_walk_stays_in_band(self):
        market = self.make_market(placement_mean=4.3, placement_volatility=0.08)
        market.warmup(2000)
        scores = [score for _, score, _ in market.metric_history]
        assert all(PLACEMENT_MIN <= score <= PLACEMENT_MAX for score in scores)
        assert abs(np.mean(scores) - 4.3) < 0.2

    def test_frequency_walk_reverts_to_profile_mean(self):
        market = self.make_market(interruption_freq_pct=17.0, freq_volatility=0.5)
        market.warmup(2000)
        freqs = [freq for _, _, freq in market.metric_history]
        assert abs(np.mean(freqs) - 17.0) < 1.0

    def test_az_prices_skew_around_region_price(self):
        market = self.make_market()
        prices = [market.az_spot_price(i) for i in range(3)]
        assert prices[0] < prices[1] < prices[2]
        assert prices[1] == pytest.approx(market.spot_price)

    def test_hazard_tracks_current_frequency(self):
        market = self.make_market(interruption_freq_pct=10.0)
        market.warmup(50)
        assert market.interruption_hazard_per_hour == pytest.approx(
            market.interruption_frequency * 0.7 / 100.0
        )


class TestMarketDeterminism:
    """Same seed, same trace — the paired-comparison guarantee."""

    def build(self, seed, peak_hour=0.0):
        return SpotMarket(
            profile=make_profile(),
            od_price=1.0,
            rng=np.random.default_rng(seed),
            hazard_peak_hour=peak_hour,
        )

    def test_same_seed_identical_price_trace_and_metrics(self):
        a, b = self.build(123), self.build(123)
        a.warmup(300)
        b.warmup(300)
        assert list(a.price_trace()) == list(b.price_trace())
        assert a.metric_history == b.metric_history

    def test_different_seeds_diverge(self):
        a, b = self.build(123), self.build(124)
        a.warmup(50)
        b.warmup(50)
        assert list(a.price_trace()) != list(b.price_trace())

    def test_provider_market_traces_reproducible_across_builds(self):
        from repro.cloud.provider import CloudProvider

        def trace(seed):
            provider = CloudProvider(seed=seed)
            provider.engine.run_until(12 * HOUR)
            return list(provider.market("us-east-1", "m5.xlarge").price_trace())

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)

    def test_geographies_have_phase_shifted_diurnal_peaks(self):
        from repro.cloud.market import GEOGRAPHY_PEAK_HOURS

        hours = np.arange(0.0, 24.0, 0.25)
        peak_of = {}
        for geography, peak_hour in GEOGRAPHY_PEAK_HOURS.items():
            market = self.build(0, peak_hour=peak_hour)
            hazards = [market.hazard_at(hour * HOUR) for hour in hours]
            peak_of[geography] = float(hours[int(np.argmax(hazards))])
        # Each geography's hazard crests at its own local peak hour...
        assert peak_of["americas"] == pytest.approx(3.0, abs=0.25)
        assert peak_of["europe"] == pytest.approx(11.0, abs=0.25)
        assert peak_of["asia-pacific"] == pytest.approx(19.0, abs=0.25)
        # ...so no two geographies surge at the same time — the
        # diversification the paper's multi-region spread exploits.
        assert len(set(peak_of.values())) == len(peak_of)

    def test_provider_assigns_peak_hours_by_geography(self):
        from repro.cloud.market import GEOGRAPHY_PEAK_HOURS
        from repro.cloud.provider import CloudProvider

        provider = CloudProvider(seed=0)
        for region, expected_geography in (
            ("us-east-1", "americas"),
            ("eu-west-1", "europe"),
            ("ap-southeast-1", "asia-pacific"),
        ):
            market = provider.market(region, "m5.xlarge")
            assert market.hazard_peak_hour == GEOGRAPHY_PEAK_HOURS[expected_geography]


class TestCostLedger:
    def test_totals_by_category_tag_region(self):
        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.SPOT_INSTANCE, 1.5, region="us-east-1", tag="w1")
        ledger.charge(1.0, CostCategory.LAMBDA, 0.5, tag="w1")
        ledger.charge(2.0, CostCategory.ON_DEMAND_INSTANCE, 2.0, region="eu-west-1", tag="w2")
        assert ledger.total() == pytest.approx(4.0)
        assert ledger.total(CostCategory.LAMBDA) == pytest.approx(0.5)
        assert ledger.total_for_tag("w1") == pytest.approx(2.0)
        assert ledger.total_for_region("eu-west-1") == pytest.approx(2.0)
        assert ledger.instance_total() == pytest.approx(3.5)
        assert ledger.overhead_total() == pytest.approx(0.5)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(0.0, CostCategory.LAMBDA, -1.0)

    def test_breakdown_views(self):
        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.S3_TRANSFER, 0.25, region="us-east-1")
        assert ledger.by_category() == {"s3-transfer": 0.25}
        assert ledger.by_region() == {"us-east-1": 0.25}
