"""Unit tests for the event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventQueue


def test_push_and_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(5.0, lambda: fired.append("b"), label="b")
    queue.push(1.0, lambda: fired.append("a"), label="a")
    queue.push(9.0, lambda: fired.append("c"), label="c")
    order = []
    while queue:
        order.append(queue.pop().label)
    assert order == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order():
    queue = EventQueue()
    for name in ("first", "second", "third"):
        queue.push(2.0, lambda: None, label=name)
    assert [queue.pop().label for _ in range(3)] == ["first", "second", "third"]


def test_len_counts_live_events():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    first.cancel()
    assert len(queue) == 1


def test_cancelled_event_is_skipped_by_pop():
    queue = EventQueue()
    doomed = queue.push(1.0, lambda: None, label="doomed")
    queue.push(2.0, lambda: None, label="live")
    doomed.cancel()
    assert queue.pop().label == "live"
    assert queue.pop() is None


def test_cancel_twice_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert len(queue) == 0


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    head.cancel()
    assert queue.peek_time() == 3.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_push_none_callback_rejected():
    with pytest.raises(SchedulingError):
        EventQueue().push(1.0, None)


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.pop() is None


def test_cancelled_flag_exposed():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled
