"""Unit tests for the event queues.

Every contract test runs against both schedulers — the binary-heap
reference :class:`EventQueue` and the calendar-queue
:class:`BucketedEventQueue` — because the engine treats them as
interchangeable.  The equivalence section drives both with identical
pseudo-random schedules (ties, cancels, re-entrant pushes) and asserts
identical fire order, which is the determinism contract the golden
fixtures rely on.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.sim.events import COMPACT_MIN_ENTRIES, BucketedEventQueue, EventQueue

QUEUES = [EventQueue, BucketedEventQueue]


@pytest.fixture(params=QUEUES, ids=["heap", "wheel"])
def queue(request):
    return request.param()


def test_push_and_pop_in_time_order(queue):
    fired = []
    queue.push(5.0, lambda: fired.append("b"), label="b")
    queue.push(1.0, lambda: fired.append("a"), label="a")
    queue.push(9.0, lambda: fired.append("c"), label="c")
    order = []
    while queue:
        order.append(queue.pop().label)
    assert order == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order(queue):
    for name in ("first", "second", "third"):
        queue.push(2.0, lambda: None, label=name)
    assert [queue.pop().label for _ in range(3)] == ["first", "second", "third"]


def test_len_counts_live_events(queue):
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    first.cancel()
    assert len(queue) == 1


def test_cancelled_event_is_skipped_by_pop(queue):
    doomed = queue.push(1.0, lambda: None, label="doomed")
    queue.push(2.0, lambda: None, label="live")
    doomed.cancel()
    assert queue.pop().label == "live"
    assert queue.pop() is None


def test_cancel_twice_is_idempotent(queue):
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert len(queue) == 0


def test_peek_time_skips_cancelled_head(queue):
    head = queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    head.cancel()
    assert queue.peek_time() == 3.0


def test_peek_time_empty_returns_none(queue):
    assert queue.peek_time() is None


def test_push_none_callback_rejected(queue):
    with pytest.raises(SchedulingError):
        queue.push(1.0, None)


def test_clear_empties_queue(queue):
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.pop() is None


def test_cancelled_flag_exposed(queue):
    event = queue.push(1.0, lambda: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled


def test_pushes_odometer_counts_lifetime_schedules(queue):
    queue.push(1.0, lambda: None)
    doomed = queue.push(2.0, lambda: None)
    doomed.cancel()
    queue.pop()
    assert queue.pushes == 2


# ----------------------------------------------------------------------
# Wheel-specific behaviour
# ----------------------------------------------------------------------
def test_wheel_rejects_nonpositive_bucket_width():
    with pytest.raises(SchedulingError):
        BucketedEventQueue(bucket_width=0.0)


def test_wheel_reentrant_push_into_active_bucket_preserves_order():
    # Draining bucket [0, 60): a push at the *current* timestamp from a
    # callback must still fire this tick, after already-scheduled peers.
    queue = BucketedEventQueue(bucket_width=60.0)
    fired = []
    queue.push(10.0, lambda: queue.push(10.0, lambda: fired.append("child"), label="child"))
    queue.push(10.0, lambda: fired.append("sibling"), label="sibling")
    queue.push(20.0, lambda: fired.append("later"), label="later")
    while queue:
        queue.pop().callback()
    assert fired == ["sibling", "child", "later"]


def test_wheel_push_behind_active_bucket_lands_in_drain_list():
    queue = BucketedEventQueue(bucket_width=10.0)
    queue.push(25.0, lambda: None, label="ahead")
    assert queue.pop().label == "ahead"  # activates bucket index 2
    queue.push(5.0, lambda: None, label="behind")  # bucket 0 < active 2
    assert queue.pop().label == "behind"


# ----------------------------------------------------------------------
# Lazy-cancel compaction
# ----------------------------------------------------------------------
def _stored_entries(queue):
    if isinstance(queue, EventQueue):
        return len(queue._heap)
    return queue._total


@pytest.mark.parametrize("queue_cls", QUEUES, ids=["heap", "wheel"])
def test_compaction_reclaims_cancelled_entries(queue_cls):
    queue = queue_cls()
    events = [queue.push(float(i % 7), lambda: None, label=str(i)) for i in range(400)]
    for event in events[:300]:
        event.cancel()
    # Compaction keeps storage proportional to the live set (it fires
    # whenever more than half the stored entries are dead), so the 300
    # cancelled entries cannot all still be resident.
    assert len(queue) == 100
    assert _stored_entries(queue) <= 2 * len(queue)
    order = []
    while queue:
        order.append(queue.pop().label)
    assert order == [event.label for event in sorted(events[300:], key=lambda e: e.sort_key())]


@pytest.mark.parametrize("queue_cls", QUEUES, ids=["heap", "wheel"])
def test_small_queues_skip_compaction(queue_cls):
    queue = queue_cls()
    events = [queue.push(float(i), lambda: None) for i in range(COMPACT_MIN_ENTRIES // 2)]
    for event in events:
        event.cancel()
    # Below the compaction floor the dead entries stay until popped over.
    assert len(queue) == 0
    assert queue.pop() is None


def test_wheel_compaction_mid_drain_preserves_order():
    queue = BucketedEventQueue(bucket_width=10.0)
    events = [queue.push(float(i % 30), lambda: None, label=str(i)) for i in range(300)]
    # Consume a prefix so the drain list has a consumed region, then
    # cancel enough to trigger a rebuild mid-drain.
    popped = [queue.pop().label for _ in range(5)]
    survivors = [event for event in events if event.label not in popped]
    for event in survivors[:250]:
        event.cancel()
    expected = [
        event.label
        for event in sorted(survivors[250:], key=lambda e: e.sort_key())
    ]
    drained = []
    while queue:
        drained.append(queue.pop().label)
    assert drained == expected


# ----------------------------------------------------------------------
# Property-style scheduler equivalence (heap vs wheel)
# ----------------------------------------------------------------------
def _drive(queue, seed, steps=600):
    """Run a seeded op mix against *queue*; return the fire order.

    The mix covers the contract's hard cases: dense same-timestamp
    ties, cancels of pending events, and re-entrant pushes from
    callbacks (including pushes at the firing timestamp itself).
    """
    rng = random.Random(seed)
    fired = []
    pending = []
    label_counter = [0]

    def schedule(time):
        label_counter[0] += 1
        label = f"e{label_counter[0]}"

        def callback():
            fired.append(label)
            # Re-entrant scheduling: same tick, near future, and far
            # future, each with a small probability.
            roll = rng.random()
            if roll < 0.15:
                schedule(time)  # same-timestamp child
            elif roll < 0.30:
                schedule(time + rng.choice([0.0, 0.5, 7.0, 61.0]))

        pending.append(queue.push(time, callback, label=label))

    for _ in range(steps):
        action = rng.random()
        if action < 0.55 or not queue:
            # Cluster times so ties are common across bucket widths.
            schedule(float(rng.randrange(0, 50)) * 2.5)
        elif action < 0.75 and pending:
            rng.choice(pending).cancel()
        else:
            event = queue.pop()
            if event is not None and event.callback is not None:
                event.callback()
    while queue:
        event = queue.pop()
        if event is not None and event.callback is not None:
            event.callback()
    return fired


@pytest.mark.parametrize("seed", range(8))
def test_heap_and_wheel_fire_identically(seed):
    assert _drive(EventQueue(), seed) == _drive(BucketedEventQueue(), seed)


@pytest.mark.parametrize("width", [0.5, 7.0, 60.0, 1e9])
def test_fire_order_is_bucket_width_invariant(width):
    # Correctness must never depend on the tuning knob: a tiny wheel
    # (every event its own bucket) and a giant one (everything in one
    # bucket) both match the heap reference.
    assert _drive(BucketedEventQueue(bucket_width=width), 3) == _drive(EventQueue(), 3)
