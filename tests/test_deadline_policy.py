"""Tests for the deadline-aware escalation policy."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.monitor import Monitor
from repro.core.policy import PolicyContext, PurchasingOption
from repro.core.result import WorkloadRecord
from repro.strategies import DeadlineAwarePolicy
from repro.sim.clock import HOUR
from repro.workloads.base import WorkloadKind, synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


def make_policy(provider, deadline_factor=1.6, safety_margin=0.25):
    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",
    )
    monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
    monitor.collect()
    policy = DeadlineAwarePolicy(
        monitor, config, deadline_factor=deadline_factor, safety_margin=safety_margin
    )
    ctx = PolicyContext(
        provider=provider, monitor=monitor, rng=provider.engine.streams.get("t")
    )
    return policy, ctx


class TestEscalationRule:
    def test_fresh_workload_stays_on_spot(self):
        provider = CloudProvider(seed=21)
        provider.warmup_markets(24)
        policy, ctx = make_policy(provider)
        workload = synthetic_workload("w", duration_hours=10.0)
        ctx.records["w"] = WorkloadRecord(
            "w", WorkloadKind.STANDARD, submitted_at=provider.engine.now
        )
        assert not policy.should_escalate(workload, ctx)
        placement = policy.migration_placement(workload, "ca-central-1", ctx)
        assert placement.option is PurchasingOption.SPOT

    def test_slack_exhaustion_escalates(self):
        provider = CloudProvider(seed=21)
        provider.warmup_markets(24)
        policy, ctx = make_policy(provider, deadline_factor=1.6)
        workload = synthetic_workload("w", duration_hours=10.0)
        ctx.records["w"] = WorkloadRecord(
            "w", WorkloadKind.STANDARD, submitted_at=0.0
        )
        # Deadline = 16 h; a restart needs 10 h x 1.25 margin = 12.5 h
        # of slack, so past 3.5 h elapsed the policy must escalate.
        provider.engine.run_until(4 * HOUR)
        assert policy.should_escalate(workload, ctx)
        placement = policy.migration_placement(workload, "ca-central-1", ctx)
        assert placement.option is PurchasingOption.ON_DEMAND
        assert placement.region == "us-east-1"

    def test_checkpoint_workloads_escalate_later(self):
        provider = CloudProvider(seed=21)
        provider.warmup_markets(24)
        policy, ctx = make_policy(provider)
        standard = synthetic_workload("s", duration_hours=10.0)
        checkpoint = ngs_preprocessing_workload("c", duration_hours=10.0)
        for workload_id in ("s", "c"):
            ctx.records[workload_id] = WorkloadRecord(
                workload_id, WorkloadKind.STANDARD, submitted_at=0.0
            )
        provider.engine.run_until(6 * HOUR)
        assert policy.should_escalate(standard, ctx)
        assert not policy.should_escalate(checkpoint, ctx)

    def test_unknown_record_never_escalates(self):
        provider = CloudProvider(seed=21)
        provider.warmup_markets(24)
        policy, ctx = make_policy(provider)
        assert not policy.should_escalate(synthetic_workload("ghost"), ctx)

    def test_deadline_for(self):
        provider = CloudProvider(seed=21)
        policy, _ = make_policy(provider, deadline_factor=2.0)
        workload = synthetic_workload("w", duration_hours=10.0)
        assert policy.deadline_for(workload) == pytest.approx(20 * HOUR)


class TestDeadlineFleet:
    def test_fleet_meets_deadline_via_escalation(self):
        provider = CloudProvider(seed=22)
        provider.warmup_markets(24)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = DeadlineAwarePolicy(monitor, config, deadline_factor=1.6)
        controller = FleetController(provider, policy, config, monitor=monitor)
        fleet = [
            synthetic_workload(f"w{i:02d}", duration_hours=8.0) for i in range(16)
        ]
        result = controller.run(fleet, max_hours=72)
        assert result.all_complete
        # Every workload beat (or nearly beat) its deadline: the
        # escalation path guarantees completion within deadline plus
        # one on-demand run from the decision point.
        deadline = 1.6 * 8.0 * HOUR
        for record in result.records:
            assert record.elapsed < deadline + 9.0 * HOUR
        # If anything was rescued, on-demand attempts show up.
        rescued = sum(record.on_demand_attempts for record in result.records)
        late = [record for record in result.records if record.elapsed > deadline]
        if late:
            assert rescued >= 0  # escalations occurred or none were needed
