"""The CI perf guardrail comparator (benchmarks/check_regression.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
# Registered before exec so dataclass string-annotation resolution
# (from __future__ import annotations) can find the module.
sys.modules["check_regression"] = check_regression
_spec.loader.exec_module(check_regression)


def _payload(name="bench", wall=1.0, tput=1000.0, rss=100_000_000):
    return {
        "benchmark": name,
        "wall_seconds": wall,
        "sim_events_per_second": tput,
        "peak_rss_bytes": rss,
    }


def test_identical_payloads_pass():
    assert check_regression.compare_payloads(_payload(), _payload()) == []


def test_within_tolerance_passes():
    fresh = _payload(wall=1.5, tput=700.0, rss=150_000_000)
    assert check_regression.compare_payloads(_payload(), fresh) == []


def test_each_metric_breach_detected():
    slow = check_regression.compare_payloads(_payload(), _payload(wall=2.0))
    assert [v.metric for v in slow] == ["wall_seconds"]
    cold = check_regression.compare_payloads(_payload(), _payload(tput=100.0))
    assert [v.metric for v in cold] == ["sim_events_per_second"]
    fat = check_regression.compare_payloads(_payload(), _payload(rss=500_000_000))
    assert [v.metric for v in fat] == ["peak_rss_bytes"]
    assert "peak_rss_bytes" in fat[0].render()


def test_zero_baseline_metrics_are_skipped():
    baseline = _payload(wall=0.0, tput=0.0, rss=0)
    fresh = _payload(wall=100.0, tput=0.0, rss=10**12)
    assert check_regression.compare_payloads(baseline, fresh) == []


def test_custom_tolerances():
    fresh = _payload(wall=1.5)
    assert check_regression.compare_payloads(_payload(), fresh, wall_tol=1.1)
    assert not check_regression.compare_payloads(_payload(), fresh, wall_tol=2.0)


def _write(directory, payload):
    path = directory / f"BENCH_{payload['benchmark']}.json"
    path.write_text(json.dumps(payload))


def test_check_directories_compares_shared_files(tmp_path):
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    _write(baseline_dir, _payload("shared"))
    _write(baseline_dir, _payload("retired"))
    _write(fresh_dir, _payload("shared", wall=5.0))
    _write(fresh_dir, _payload("brand_new", wall=99.0))
    violations = check_regression.check_directories(baseline_dir, fresh_dir)
    # Only the shared benchmark is enforced; one-sided files are notes.
    assert [v.benchmark for v in violations] == ["shared"]


def test_main_exit_codes(tmp_path, capsys):
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    _write(baseline_dir, _payload("ok"))
    _write(fresh_dir, _payload("ok"))
    argv = ["--fresh", str(fresh_dir), "--baseline", str(baseline_dir)]
    assert check_regression.main(argv) == 0
    _write(fresh_dir, _payload("ok", wall=10.0))
    assert check_regression.main(argv) == 1
    assert "wall_seconds" in capsys.readouterr().out
    assert check_regression.main(["--fresh", str(tmp_path / "missing")]) == 2


def test_repo_baselines_are_valid_json():
    directory = _MODULE_PATH.parent / "_baselines"
    names = sorted(path.name for path in directory.glob("BENCH_*.json"))
    assert names, "committed benchmark baselines are missing"
    for path in directory.glob("BENCH_*.json"):
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == path.stem[len("BENCH_"):]
        assert payload["wall_seconds"] >= 0


def _sweep_payload(speedup, cpu_count, jobs=4):
    payload = _payload("parallel", wall=1.0)
    payload["speedup_vs_serial"] = speedup
    payload["cpu_count"] = cpu_count
    payload["jobs"] = jobs
    return payload


def test_speedup_enforced_between_many_core_runs():
    baseline = _sweep_payload(3.0, cpu_count=8)
    ok = _sweep_payload(2.2, cpu_count=8)
    assert check_regression.compare_payloads(baseline, ok) == []
    collapsed = _sweep_payload(1.2, cpu_count=8)
    violations = check_regression.compare_payloads(baseline, collapsed)
    assert [v.metric for v in violations] == ["speedup_vs_serial"]


def test_speedup_low_core_run_only_checks_serial_fallback_floor():
    # Baseline from an 8-core runner, fresh run on 1 core: near-linear
    # speedup is impossible there, so only the fallback floor applies.
    baseline = _sweep_payload(3.0, cpu_count=8)
    serial_fallback = _sweep_payload(0.97, cpu_count=1)
    assert check_regression.compare_payloads(baseline, serial_fallback) == []
    # The historical 1-core mis-fire: the pool time-slicing four
    # workers on one CPU measured 0.35x — that must now fail.
    thrash = _sweep_payload(0.35, cpu_count=1)
    violations = check_regression.compare_payloads(baseline, thrash)
    assert [v.metric for v in violations] == ["speedup_vs_serial"]
    assert "serial fallback" in violations[0].render()


def test_speedup_ignored_when_either_side_lacks_it():
    assert check_regression.compare_payloads(
        _payload(), _sweep_payload(0.2, cpu_count=1)
    ) == []


def test_profiler_overhead_enforced():
    baseline = _payload("overhead")
    baseline["profiler_overhead_x"] = 1.1
    ok = _payload("overhead")
    ok["profiler_overhead_x"] = 1.3
    assert check_regression.compare_payloads(baseline, ok) == []
    bloated = _payload("overhead")
    bloated["profiler_overhead_x"] = 2.5
    violations = check_regression.compare_payloads(baseline, bloated)
    assert [v.metric for v in violations] == ["profiler_overhead_x"]


def test_streaming_overhead_enforced():
    baseline = _payload("overhead")
    baseline["streaming_overhead_x"] = 1.16
    ok = _payload("overhead")
    ok["streaming_overhead_x"] = 1.4
    assert check_regression.compare_payloads(baseline, ok) == []
    bloated = _payload("overhead")
    bloated["streaming_overhead_x"] = 2.5
    violations = check_regression.compare_payloads(baseline, bloated)
    assert [v.metric for v in violations] == ["streaming_overhead_x"]


@pytest.mark.parametrize("env_name, flag", [
    ("SPOTVERSE_BENCH_WALL_TOL", "wall_tol"),
    ("SPOTVERSE_BENCH_TPUT_TOL", "tput_tol"),
    ("SPOTVERSE_BENCH_RSS_TOL", "rss_tol"),
])
def test_env_tolerance_overrides(monkeypatch, env_name, flag):
    monkeypatch.setenv(env_name, "9.5")
    assert check_regression._env_tol(env_name, 1.0) == 9.5
    monkeypatch.delenv(env_name)
    assert check_regression._env_tol(env_name, 1.0) == 1.0


def test_scheduler_speedup_enforced():
    baseline = _payload("engine_core")
    baseline["scheduler_speedup_x"] = 1.3
    ok = _payload("engine_core")
    ok["scheduler_speedup_x"] = 0.9  # within the 1.6x band
    assert check_regression.compare_payloads(baseline, ok) == []
    collapsed = _payload("engine_core")
    collapsed["scheduler_speedup_x"] = 0.5
    violations = check_regression.compare_payloads(baseline, collapsed)
    assert [v.metric for v in violations] == ["scheduler_speedup_x"]
    # One-sided payloads are never enforced (new benchmark landing).
    assert check_regression.compare_payloads(_payload(), collapsed) == []


def test_fanout_speedup_enforced():
    baseline = _payload("dag_fanout")
    baseline["fanout_speedup_x"] = 5.4
    ok = _payload("dag_fanout")
    ok["fanout_speedup_x"] = 4.0  # within the 1.6x band, above the floor
    assert check_regression.compare_payloads(baseline, ok) == []
    eroded = _payload("dag_fanout")
    eroded["fanout_speedup_x"] = 2.9  # breaks both band and floor
    violations = check_regression.compare_payloads(baseline, eroded)
    assert [v.metric for v in violations] == [
        "fanout_speedup_x",
        "fanout_speedup_x",
    ]
    assert any("absolute floor" in v.render() for v in violations)
    # Even inside the relative band, the acceptance floor is absolute.
    baseline_low = _payload("dag_fanout")
    baseline_low["fanout_speedup_x"] = 3.2
    slipped = _payload("dag_fanout")
    slipped["fanout_speedup_x"] = 2.5  # 3.2/1.6 = 2.0 < 2.5, band OK
    violations = check_regression.compare_payloads(baseline_low, slipped)
    assert [v.limit for v in violations] == [">= 3 (absolute floor)"]
    # One-sided payloads are never enforced (new benchmark landing).
    assert check_regression.compare_payloads(_payload(), eroded) == []


def test_throughput_floor_enforced():
    baseline = _payload("fig3", tput=33000.0)
    baseline["floor_events_per_second"] = 32400.0
    # Fresh run inside the relative band AND above floor/tol: passes.
    ok = _payload("fig3", tput=25000.0)
    assert check_regression.compare_payloads(baseline, ok) == []
    # A slide below floor/tol fails (here the relative band breaks too;
    # the floor violation is the one naming the absolute limit).
    regressed = _payload("fig3", tput=15000.0)
    violations = check_regression.compare_payloads(baseline, regressed)
    assert [v.metric for v in violations] == [
        "sim_events_per_second",
        "sim_events_per_second",
    ]
    assert any("floor" in v.render() for v in violations)


def test_throughput_floor_is_independent_of_relative_band():
    # The floor binds even when the committed payload carries no
    # throughput of its own (so the relative band is skipped) — a
    # regenerated baseline cannot silently drop the guarantee.
    baseline = _payload("fig3", tput=0.0)
    baseline["floor_events_per_second"] = 32400.0
    regressed = _payload("fig3", tput=15000.0)
    violations = check_regression.compare_payloads(baseline, regressed)
    assert [v.metric for v in violations] == ["sim_events_per_second"]
    assert "floor" in violations[0].render()
    assert check_regression.compare_payloads(
        baseline, _payload("fig3", tput=25000.0)
    ) == []
