"""Tests for workflow serialization and the timeline analysis module."""

import csv
import io
import json

import pytest

from repro.errors import WorkflowValidationError
from repro.galaxy.planemo import PlanemoRunner
from repro.galaxy.serialize import (
    workflow_from_dict,
    workflow_from_ga,
    workflow_to_dict,
    workflow_to_ga,
)
from repro.galaxy.workflow import StepInput, Workflow, WorkflowStep
from repro.workloads import build_genome_reconstruction_workflow, build_qiime_workflow


class TestWorkflowSerialization:
    def make_workflow(self):
        return Workflow(
            "pipeline",
            [
                WorkflowStep(label="a", tool_id="sleep", params={"seconds": 5}, duration=10.0),
                WorkflowStep(
                    label="b",
                    tool_id="sleep",
                    inputs={"x": StepInput("a", "slept")},
                    duration=20.0,
                ),
            ],
        )

    def test_dict_roundtrip(self):
        workflow = self.make_workflow()
        restored = workflow_from_dict(workflow_to_dict(workflow))
        assert restored.name == workflow.name
        assert restored.labels() == workflow.labels()
        assert restored.step("b").inputs["x"] == StepInput("a", "slept")
        assert restored.step("a").params["seconds"] == 5
        assert restored.total_duration() == 30.0

    def test_ga_json_roundtrip(self):
        workflow = self.make_workflow()
        text = workflow_to_ga(workflow)
        document = json.loads(text)
        assert document["a_galaxy_workflow"] == "true"
        restored = workflow_from_ga(text)
        assert restored.labels() == workflow.labels()

    def test_qiime_workflow_roundtrip_and_execution(self):
        workflow = build_qiime_workflow(duration_hours=0.1)
        restored = workflow_from_ga(workflow_to_ga(workflow))
        invocation = PlanemoRunner().run(restored)
        assert invocation.ok

    def test_genome_reconstruction_roundtrip(self):
        workflow = build_genome_reconstruction_workflow(duration_hours=0.1)
        restored = workflow_from_ga(workflow_to_ga(workflow))
        assert len(restored) == 23

    def test_bad_documents_rejected(self):
        with pytest.raises(WorkflowValidationError):
            workflow_from_ga("not json")
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict({"name": "x", "steps": []})  # missing marker
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict({"a_galaxy_workflow": "true", "steps": []})  # no name
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict(
                {
                    "a_galaxy_workflow": "true",
                    "name": "x",
                    "steps": [{"label": "a"}],  # missing tool_id
                }
            )

    def test_non_json_params_rejected(self):
        workflow = Workflow(
            "bad",
            [WorkflowStep(label="a", tool_id="sleep", params={"obj": object()})],
        )
        with pytest.raises(WorkflowValidationError):
            workflow_to_ga(workflow)

    def test_import_revalidates_dag(self):
        document = {
            "a_galaxy_workflow": "true",
            "name": "cycle",
            "steps": [
                {
                    "label": "a",
                    "tool_id": "sleep",
                    "inputs": {"x": {"source_step": "a", "output_name": "y"}},
                }
            ],
        }
        with pytest.raises(WorkflowValidationError):
            workflow_from_dict(document)


class TestTimeline:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core import FleetController, SpotVerseConfig
        from repro.cloud.provider import CloudProvider
        from repro.strategies import SingleRegionPolicy
        from repro.workloads import synthetic_workload

        provider = CloudProvider(seed=4)
        provider.warmup_markets(24)
        controller = FleetController(
            provider, SingleRegionPolicy(region="ca-central-1"), SpotVerseConfig()
        )
        return controller.run(
            [synthetic_workload(f"w{i}", duration_hours=8.0) for i in range(8)],
            max_hours=72,
        )

    def test_timeline_rows(self, result):
        from repro.experiments.timeline import timeline_rows

        rows = timeline_rows(result)
        assert len(rows) == 8
        for row in rows:
            assert row["elapsed_h"] is not None
            assert row["attempts"] >= 1
            assert row["cost_usd"] > 0

    def test_csv_export_parses(self, result):
        from repro.experiments.timeline import to_csv

        parsed = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert len(parsed) == 8
        assert parsed[0]["workload_id"] == "w0"

    def test_json_export_parses(self, result):
        from repro.experiments.timeline import to_json

        document = json.loads(to_json(result))
        assert document["strategy"] == "single-region"
        assert len(document["workloads"]) == 8
        assert document["total_interruptions"] == result.total_interruptions

    def test_interruptions_by_hour_sums(self, result):
        from repro.experiments.timeline import interruptions_by_hour

        by_hour = interruptions_by_hour(result)
        assert sum(by_hour.values()) == result.total_interruptions

    def test_interruption_concentration_reflects_bursts(self, result):
        from repro.experiments.timeline import interruption_concentration

        concentration = interruption_concentration(result)
        # Burst-driven interruptions cluster well above uniform.
        if result.total_interruptions >= 5:
            assert concentration > 0.4

    def test_attempt_statistics(self, result):
        from repro.experiments.timeline import attempt_statistics

        stats = attempt_statistics(result)
        assert stats["mean_attempts"] >= 1.0
        assert stats["max_attempts"] >= stats["mean_attempts"]
        assert 0 <= stats["restart_fraction"] < 1

    def test_empty_fleet_concentration(self):
        from repro.core.result import FleetResult
        from repro.experiments.timeline import attempt_statistics, interruption_concentration

        empty = FleetResult(
            strategy="x", records=[], total_cost=0, instance_cost=0,
            overhead_cost=0, ended_at=0,
        )
        assert interruption_concentration(empty) == 0.0
        assert attempt_statistics(empty)["mean_attempts"] == 0.0
