"""Tests for the SpotVerse facade and the end-to-end happy path."""


from repro.cloud.provider import CloudProvider
from repro.core import SpotVerse, SpotVerseConfig
from repro.core.policy import PurchasingOption
from repro.workloads import ngs_preprocessing_workload, synthetic_workload


class TestSpotVerseFacade:
    def test_run_small_fleet(self):
        provider = CloudProvider(seed=42)
        spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
        result = spotverse.run(
            [synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(6)]
        )
        assert result.all_complete
        assert result.strategy == "spotverse"
        assert result.total_cost > 0

    def test_recommended_regions_are_stable_tier(self):
        provider = CloudProvider(seed=42)
        spotverse = SpotVerse(provider)
        recommended = spotverse.recommended_regions()
        assert 1 <= len(recommended) <= 4
        assert {m.region for m in recommended} <= {
            "us-west-1",
            "ap-northeast-3",
            "eu-west-1",
            "eu-north-1",
        }
        assert not spotverse.recommends_on_demand()

    def test_recommendation_single_placement(self):
        provider = CloudProvider(seed=42)
        spotverse = SpotVerse(provider)
        placement = spotverse.recommendation()
        assert placement.option is PurchasingOption.SPOT

    def test_high_threshold_recommends_on_demand(self):
        provider = CloudProvider(seed=42)
        spotverse = SpotVerse(provider, SpotVerseConfig(score_threshold=9.0))
        assert spotverse.recommends_on_demand()
        assert spotverse.recommendation().option is PurchasingOption.ON_DEMAND

    def test_checkpoint_fleet_end_to_end(self):
        provider = CloudProvider(seed=9)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        spotverse = SpotVerse(provider, config)
        fleet = [
            ngs_preprocessing_workload(f"w{i}", duration_hours=6.0) for i in range(6)
        ]
        result = spotverse.run(fleet)
        assert result.all_complete
        # Checkpoints for interrupted workloads are durable in DynamoDB.
        for record in result.records:
            item = provider.dynamodb.get_item("spotverse-checkpoints", record.workload_id)
            assert item is not None
            assert item["completed_segments"] == 20

    def test_package_level_exports(self):
        import repro

        assert repro.SpotVerse is SpotVerse
        assert repro.SpotVerseConfig is SpotVerseConfig
        assert repro.__version__

    def test_deterministic_given_seed(self):
        def run_once():
            provider = CloudProvider(seed=123)
            spotverse = SpotVerse(provider, SpotVerseConfig())
            fleet = [synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(4)]
            result = spotverse.run(fleet)
            return (
                result.total_interruptions,
                result.makespan,
                round(result.total_cost, 6),
            )

        assert run_once() == run_once()
