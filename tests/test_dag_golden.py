"""DAG-aware placement: golden equivalence plus fan-out integration.

Two gates on the DAG refactor:

* **Golden equivalence** — every scenario of the committed fixture,
  compiled to single-stage chains via
  :func:`repro.core.dag.compile_workload` and run through
  ``controller.run_dags``, must be *bit-identical* to the monolithic
  ``controller.run`` path (same floats, same interruption times, same
  regions).  The step refactor may add capability, not move bits.
* **Fan-out** — independent steps of a real DAG run concurrently on
  separate instances, cut makespan well below the serial path, pay
  cross-region egress per input edge, migrate only the interrupted
  step, and survive a controller teardown mid-DAG.
"""

import json

import pytest

from tests.golden_scenarios import (
    FIXTURE_PATH,
    MAX_HOURS,
    SCENARIOS,
    SEED,
    WARMUP_STEPS,
    _make_policy,
    _needs_monitor,
    _workloads,
    result_to_dict,
    run_scenario_dag_chain,
)

from repro.chaos import OnlineInvariantMonitor
from repro.cloud.billing import CostCategory, S3_CROSS_REGION_TRANSFER_PRICE
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.dag import StepGraph, StepTask, compile_graph, compile_workload
from repro.core.monitor import Monitor
from repro.core.policy import Placement, PlacementPolicy, PurchasingOption
from repro.errors import ExperimentError
from repro.obs import EventType, Telemetry, render_explanation
from repro.sim.clock import HOUR
from repro.strategies import OnDemandPolicy
from repro.workloads.base import WorkloadKind

GiB = 1024**3


# ----------------------------------------------------------------------
# Golden equivalence: the chain case moves zero bits
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fixture():
    assert FIXTURE_PATH.exists()
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_single_step_chains_replay_bit_identical(name, fixture):
    assert result_to_dict(run_scenario_dag_chain(name)) == fixture[name]


def test_chain_restart_mid_run_is_bit_identical(fixture):
    # Teardown the controller mid-DAG and resume from the store alone:
    # the chain case must still reproduce the fixture bit for bit.
    name = "single-region"
    config = SCENARIOS[name]()
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(WARMUP_STEPS)
    policy = _make_policy(name, config, None)
    controller = FleetController(provider, policy, config)
    dags = [compile_workload(workload) for workload in _workloads()]
    controller.submit_dags(dags)
    provider.engine.run_until(provider.engine.now + 3.0 * HOUR)
    store = controller.state_store
    controller.teardown()
    del controller
    rebuilt = FleetController(provider, policy, config, state_store=store)
    result = rebuilt.resume_dags(dags, max_hours=MAX_HOURS)
    provider.shutdown()
    assert result_to_dict(result) == fixture[name]


# ----------------------------------------------------------------------
# Fan-out integration
# ----------------------------------------------------------------------
def fan_out_graph(width: int = 8) -> StepGraph:
    steps = [StepTask("prep", 0.5 * HOUR, output_bytes=2 * GiB)]
    steps += [
        StepTask(f"sample{i}", 2.0 * HOUR, deps=("prep",), output_bytes=2 * GiB)
        for i in range(width)
    ]
    steps.append(
        StepTask("merge", 0.5 * HOUR, deps=tuple(f"sample{i}" for i in range(width)))
    )
    return StepGraph("fanout", steps)


def build_controller(policy_name: str, seed: int = SEED):
    config = SCENARIOS[policy_name]()
    provider = CloudProvider(seed=seed)
    provider.warmup_markets(WARMUP_STEPS)
    monitor = (
        Monitor(provider, [config.instance_type], collect_interval=config.collect_interval)
        if _needs_monitor(policy_name)
        else None
    )
    policy = _make_policy(policy_name, config, monitor)
    controller = FleetController(provider, policy, config, monitor=monitor)
    return provider, controller


class ScriptedPolicy(PlacementPolicy):
    """Pin every stage to a scripted on-demand region (deterministic)."""

    name = "scripted"

    def __init__(self, regions):
        self._regions = dict(regions)

    def _place(self, workload):
        return Placement(
            self._regions[workload.workload_id], PurchasingOption.ON_DEMAND
        )

    def initial_placements(self, workloads, ctx):
        return [self._place(workload) for workload in workloads]

    def migration_placement(self, workload, interrupted_region, ctx):
        return self._place(workload)


class TestFanOut:
    def test_fan_out_beats_serial_by_3x(self):
        provider, controller = build_controller("on-demand")
        dag = compile_graph(fan_out_graph(8), "run1")
        result = controller.run_dags([dag], max_hours=48.0)
        provider.shutdown()
        assert len(result.records) == dag.n_stages
        assert all(r.completed_at is not None for r in result.records)
        serial_hours = dag.serial_duration() / HOUR  # 17 h on one instance
        assert result.makespan_hours * 3 < serial_hours

    def test_ready_set_places_in_one_batched_decision(self):
        # Only the SpotVerse optimizer writes the decision audit trail.
        provider, controller = build_controller("spotverse")
        dag = compile_graph(fan_out_graph(8), "run1")
        controller.run_dags([dag], max_hours=48.0)
        decisions = provider.telemetry.decisions.records("initial")
        batch = [d for d in decisions if d.ready_set_size == 8]
        assert len(batch) == 1  # the 8 samples: one Algorithm-1 round
        assert sorted(batch[0].steps.values()) == sorted(
            f"sample{i}" for i in range(8)
        )
        released = [
            e for e in provider.telemetry.bus if e.type is EventType.DAG_STEP_RELEASED
        ]
        assert len(released) == dag.n_stages
        assert {e.attrs["ready_set"] for e in released} == {1, 8}
        provider.shutdown()

    def test_explain_renders_the_per_step_chain(self):
        provider, controller = build_controller("on-demand")
        controller.run_dags([compile_graph(fan_out_graph(4), "run1")], max_hours=48.0)
        text = render_explanation(list(provider.telemetry.bus), "run1")
        provider.shutdown()
        assert "dag.submitted" in text
        assert "dag.step_released[run1:sample0]" in text
        assert "ready-set" in text
        assert "dag.done" in text

    @staticmethod
    def _egress_graph():
        # produce fans out to two consumers, so each consumer is its
        # own stage with a cross-stage edge (a linear produce->consume
        # pair would condense into one chain and ship nothing).
        return StepGraph(
            "fan",
            [
                StepTask("produce", 1.0 * HOUR, output_bytes=3 * GiB),
                StepTask("near", 1.0 * HOUR, deps=("produce",)),
                StepTask("far", 1.0 * HOUR, deps=("produce",)),
            ],
        )

    def _run_egress(self, far_region):
        config = SpotVerseConfig(instance_type="m5.xlarge")
        provider = CloudProvider(seed=SEED)
        provider.warmup_markets(WARMUP_STEPS)
        dag = compile_graph(self._egress_graph(), "run1", kind=WorkloadKind.STANDARD)
        policy = ScriptedPolicy(
            {
                "run1:produce": "us-east-1",
                "run1:near": "us-east-1",
                "run1:far": far_region,
            }
        )
        controller = FleetController(provider, policy, config)
        result = controller.run_dags([dag], max_hours=24.0)
        egress = provider.ledger.total(CostCategory.S3_TRANSFER)
        provider.shutdown()
        assert all(r.completed_at is not None for r in result.records)
        return egress

    def test_cross_region_edges_pay_egress_once_per_boot(self):
        # Only the far consumer pays: 3 GiB us-east-1 -> eu-west-1.
        egress = self._run_egress("eu-west-1")
        assert egress == pytest.approx(3 * S3_CROSS_REGION_TRANSFER_PRICE)

    def test_same_region_edges_are_free(self):
        assert self._run_egress("us-east-1") == 0.0

    def test_interruption_reschedules_only_the_interrupted_step(self):
        provider, controller = build_controller("spotverse")
        dag = compile_graph(fan_out_graph(8), "run1")
        result = controller.run_dags([dag], max_hours=48.0)
        provider.shutdown()
        assert all(r.completed_at is not None for r in result.records)
        assert result.total_interruptions > 0  # seed 11 interrupts a sample
        untouched = [r for r in result.records if not r.interruptions]
        assert untouched  # the rest of the fleet never moved
        assert all(r.attempts == 1 for r in untouched)
        for record in result.records:
            if record.interruptions:
                assert record.attempts > 1

    def test_teardown_mid_dag_resumes_to_completion(self):
        provider, controller = build_controller("on-demand")
        dag = compile_graph(fan_out_graph(8), "run1")
        controller.submit_dags([dag])
        # Stop mid-fan-out: prep is done, samples are running.
        provider.engine.run_until(provider.engine.now + 1.5 * HOUR)
        store = controller.state_store
        controller.teardown()
        del controller
        config = SCENARIOS["on-demand"]()
        rebuilt = FleetController(
            provider,
            OnDemandPolicy(instance_type=config.instance_type),
            config,
            state_store=store,
        )
        result = rebuilt.resume_dags([dag], max_hours=48.0)
        provider.shutdown()
        assert len(result.records) == dag.n_stages
        assert all(r.completed_at is not None for r in result.records)

    def test_submit_rejects_duplicate_and_reused_dag_ids(self):
        provider, controller = build_controller("on-demand")
        dag = compile_graph(fan_out_graph(2), "run1")
        with pytest.raises(ExperimentError, match="duplicate dag ids"):
            controller.submit_dags([dag, dag])
        controller.submit_dags([dag])
        with pytest.raises(ExperimentError, match="already used"):
            controller.submit_dags([compile_graph(fan_out_graph(2), "run1")])
        with pytest.raises(ExperimentError, match="at least one"):
            controller.submit_dags([])
        provider.shutdown()

    def test_restore_requires_stored_progress(self):
        provider, controller = build_controller("on-demand")
        with pytest.raises(ExperimentError, match="no stored progress"):
            controller.restore_dags([compile_graph(fan_out_graph(2), "run9")])
        provider.shutdown()


class TestDagDependenciesInvariant:
    def test_real_run_upholds_topological_release(self):
        provider, controller = build_controller("spotverse")
        monitor = OnlineInvariantMonitor()
        monitor.attach(provider.telemetry.bus)
        controller.run_dags([compile_graph(fan_out_graph(4), "run1")], max_hours=48.0)
        monitor.detach()
        provider.shutdown()
        assert not any(v.name == "dag-deps-ordered" for v in monitor.violations)

    def test_out_of_order_release_is_flagged(self):
        telemetry = Telemetry()
        monitor = OnlineInvariantMonitor()
        monitor.attach(telemetry.bus)
        telemetry.bus.emit(
            EventType.DAG_STEP_RELEASED,
            workload_id="run1:merge",
            deps=["run1:sample0"],
        )
        monitor.detach()
        flagged = [v for v in monitor.violations if v.name == "dag-deps-ordered"]
        assert len(flagged) == 1
        assert "run1:sample0" in flagged[0].detail

    def test_release_after_completion_passes(self):
        telemetry = Telemetry()
        monitor = OnlineInvariantMonitor()
        monitor.attach(telemetry.bus)
        telemetry.bus.emit(EventType.WORKLOAD_DONE, workload_id="run1:sample0")
        telemetry.bus.emit(
            EventType.DAG_STEP_RELEASED,
            workload_id="run1:merge",
            deps=["run1:sample0"],
        )
        monitor.detach()
        assert not any(v.name == "dag-deps-ordered" for v in monitor.violations)
