"""Edge cases of the shared retry primitive (``repro.cloud.retry``)."""

import numpy as np
import pytest

from repro.cloud.retry import RetryPolicy, call_with_retries
from repro.errors import ServiceError, ThrottlingError


class TestDelayBeforeAttempt:
    def test_attempt_one_never_waits(self):
        policy = RetryPolicy(max_attempts=5, interval=30.0, backoff_rate=2.0)
        assert policy.delay_before_attempt(1) == 0.0

    def test_attempt_zero_and_negative_never_wait(self):
        policy = RetryPolicy(interval=30.0)
        assert policy.delay_before_attempt(0) == 0.0
        assert policy.delay_before_attempt(-3) == 0.0

    def test_second_attempt_waits_one_interval(self):
        policy = RetryPolicy(interval=30.0, backoff_rate=2.0)
        assert policy.delay_before_attempt(2) == 30.0

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(interval=10.0, backoff_rate=3.0)
        assert policy.delay_before_attempt(3) == 30.0
        assert policy.delay_before_attempt(4) == 90.0

    def test_no_jitter_draws_nothing_without_rng(self):
        policy = RetryPolicy(interval=10.0, jitter=0.5)
        # jitter configured but no rng passed: deterministic base delay
        assert policy.delay_before_attempt(2) == 10.0

    def test_jitter_zero_ignores_rng(self):
        rng = np.random.default_rng(0)
        policy = RetryPolicy(interval=10.0, jitter=0.0)
        before = rng.bit_generator.state
        assert policy.delay_before_attempt(2, rng=rng) == 10.0
        assert rng.bit_generator.state == before  # no draw consumed

    def test_jitter_bounds(self):
        policy = RetryPolicy(interval=10.0, jitter=0.5)
        rng = np.random.default_rng(7)
        for attempt in range(2, 8):
            base = policy.interval * policy.backoff_rate ** (attempt - 2)
            delay = policy.delay_before_attempt(attempt, rng=rng)
            assert base <= delay <= base * 1.5


class TestCallWithRetries:
    def test_success_first_try_calls_nothing_else(self):
        hooks = []
        result = call_with_retries(
            lambda: "ok",
            RetryPolicy(max_attempts=3),
            retryable=(ThrottlingError,),
            on_retry=lambda attempt, exc: hooks.append(("retry", attempt)),
            on_exhausted=lambda exc: hooks.append(("exhausted", exc)),
        )
        assert result == "ok"
        assert hooks == []

    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ThrottlingError("throttled")
            return calls["n"]

        retries = []
        result = call_with_retries(
            flaky,
            RetryPolicy(max_attempts=5),
            retryable=(ThrottlingError,),
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert result == 3
        assert retries == [1, 2]

    def test_max_attempts_exhaustion_raises_last_error(self):
        errors = [ThrottlingError(f"boom {i}") for i in range(3)]

        def always_fails():
            raise errors[len(seen)]

        seen = []
        with pytest.raises(ThrottlingError) as excinfo:
            call_with_retries(
                always_fails,
                RetryPolicy(max_attempts=3),
                retryable=(ThrottlingError,),
                on_retry=lambda attempt, exc: seen.append(exc),
            )
        # the surfaced error is the *last* attempt's, not the first's
        assert excinfo.value is errors[2]
        assert seen == errors[:2]

    def test_on_exhausted_result_replaces_raise(self):
        def always_fails():
            raise ThrottlingError("nope")

        result = call_with_retries(
            always_fails,
            RetryPolicy(max_attempts=2),
            retryable=(ThrottlingError,),
            on_exhausted=lambda exc: "fallback",
        )
        assert result == "fallback"

    def test_max_attempts_one_never_retries(self):
        retries = []
        with pytest.raises(ThrottlingError):
            call_with_retries(
                lambda: (_ for _ in ()).throw(ThrottlingError("once")),
                RetryPolicy(max_attempts=1),
                retryable=(ThrottlingError,),
                on_retry=lambda attempt, exc: retries.append(attempt),
            )
        assert retries == []

    def test_non_retryable_error_propagates_immediately(self):
        calls = {"n": 0}

        def fails_differently():
            calls["n"] += 1
            raise ServiceError("not retryable")

        with pytest.raises(ServiceError):
            call_with_retries(
                fails_differently,
                RetryPolicy(max_attempts=5),
                retryable=(ThrottlingError,),
            )
        assert calls["n"] == 1
