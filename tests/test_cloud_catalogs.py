"""Unit tests for region, instance, and profile catalogs."""

import pytest

from repro.cloud.instances import default_instance_catalog
from repro.cloud.pricing import PriceBook
from repro.cloud.profiles import (
    P3_UNAVAILABLE_REGIONS,
    REGION_TIERS,
    THRESHOLD_EPOCH_OVERRIDES,
    default_market_profiles,
    stability_score_from_frequency,
)
from repro.cloud.regions import default_region_catalog
from repro.errors import CloudError, UnknownInstanceTypeError, UnknownRegionError


def test_region_catalog_has_papers_twelve_regions():
    catalog = default_region_catalog()
    assert len(catalog) == 12
    for name in ("ca-central-1", "ap-northeast-3", "eu-north-1", "us-west-1"):
        assert name in catalog


def test_each_region_has_three_zones():
    for region in default_region_catalog():
        assert len(region.zones) == 3
        assert all(zone.region_name == region.name for zone in region.zones)
        assert region.zone_names()[0].endswith("a")


def test_unknown_region_raises():
    with pytest.raises(UnknownRegionError):
        default_region_catalog().get("mars-north-1")


def test_instance_catalog_families_and_sizes():
    catalog = default_instance_catalog()
    m5 = catalog.get("m5.2xlarge")
    assert m5.vcpus == 8
    assert m5.memory_gib == 32.0
    assert m5.category == "general-purpose"
    sizes = [itype.size for itype in catalog.family("m5")]
    assert sizes == ["large", "xlarge", "2xlarge", "4xlarge"]


def test_instance_prices_scale_linearly_with_size():
    catalog = default_instance_catalog()
    assert catalog.get("m5.xlarge").base_od_price == pytest.approx(
        2 * catalog.get("m5.large").base_od_price
    )


def test_p3_starts_at_2xlarge_with_gpu():
    catalog = default_instance_catalog()
    assert "p3.large" not in catalog
    assert catalog.get("p3.2xlarge").gpus == 4


def test_comparable_to_returns_same_size_other_families():
    catalog = default_instance_catalog()
    names = {itype.name for itype in catalog.comparable_to("m5.2xlarge")}
    assert {"m5.2xlarge", "c5.2xlarge", "r5.2xlarge", "p3.2xlarge"} <= names


def test_unknown_instance_type_raises():
    with pytest.raises(UnknownInstanceTypeError):
        default_instance_catalog().get("z9.mega")


def test_price_book_applies_region_multiplier():
    book = PriceBook()
    base = book.od_price("us-east-1", "m5.xlarge")
    osaka = book.od_price("ap-northeast-3", "m5.xlarge")
    assert base == pytest.approx(0.192)
    assert osaka == pytest.approx(0.192 * 1.24)


def test_cheapest_od_region_is_a_multiplier_one_region():
    book = PriceBook()
    region, price = book.cheapest_od_region("m5.xlarge")
    assert price == pytest.approx(0.192)
    assert book.regions.get(region).od_price_multiplier == 1.0


def test_stability_score_buckets_match_paper_edges():
    assert stability_score_from_frequency(4.9) == 3
    assert stability_score_from_frequency(5.0) == 2
    assert stability_score_from_frequency(20.0) == 2
    assert stability_score_from_frequency(20.1) == 1


def test_profile_book_covers_full_grid():
    profiles = default_market_profiles()
    assert len(profiles) == 12 * len(default_instance_catalog())


def test_p3_unavailable_in_excluded_regions():
    profiles = default_market_profiles()
    for region in P3_UNAVAILABLE_REGIONS:
        assert not profiles.get(region, "p3.2xlarge").available
    offering = profiles.regions_offering("p3.2xlarge")
    assert set(offering).isdisjoint(P3_UNAVAILABLE_REGIONS)


def test_stable_tier_outscores_cheap_tier():
    profiles = default_market_profiles()
    stable = profiles.get("us-west-1", "m5.2xlarge")
    cheap = profiles.get("us-east-1", "m5.2xlarge")
    assert stable.placement_mean > cheap.placement_mean
    assert stable.interruption_freq_pct < cheap.interruption_freq_pct
    assert stable.spot_fraction > cheap.spot_fraction


def test_every_region_is_tiered():
    assert set(REGION_TIERS) == {region.name for region in default_region_catalog()}


def test_with_overrides_replaces_fields_without_mutating_original():
    profiles = default_market_profiles()
    before = profiles.get("us-east-1", "m5.xlarge").spot_fraction
    shifted = profiles.with_overrides(THRESHOLD_EPOCH_OVERRIDES)
    assert shifted.get("us-east-1", "m5.xlarge").spot_fraction == pytest.approx(0.26)
    assert profiles.get("us-east-1", "m5.xlarge").spot_fraction == before


def test_with_overrides_rejects_unknown_market():
    with pytest.raises(CloudError):
        default_market_profiles().with_overrides({("nowhere", "m5.large"): {}})


def test_hazard_property_scales_frequency_and_multiplier():
    profiles = default_market_profiles()
    plain = profiles.get("eu-west-2", "m5.xlarge")  # no per-market override
    assert plain.interruption_hazard_per_hour == pytest.approx(
        plain.interruption_freq_pct * 0.7 / 100.0 * plain.hazard_multiplier
    )
    # The ca-central-1 m5.xlarge anchor derates the advisor metric and
    # relies on reclaim bursts instead.
    anchor = profiles.get("ca-central-1", "m5.xlarge")
    assert anchor.hazard_multiplier == pytest.approx(0.15)
    assert anchor.burst_period_hours > 0
    assert anchor.burst_hazard_per_hour > 0
