"""Golden-equivalence gate for the decomposed fleet control plane.

The committed fixture was produced by the monolithic pre-refactor
``FleetController`` (see ``tests/golden_scenarios.py``).  Every float is
compared with ``==``: the service decomposition must not move a single
bit of any ``FleetResult`` — cost, interruption times, migration
regions, completion times — for SpotVerse or any baseline policy, on
either checkpoint backend.

The restart tests assert the tentpole's durability property on top:
tearing the controller down mid-run and rebuilding it from the
``FleetStateStore`` alone must also reproduce the fixture bit for bit.
"""

import json

import pytest

from tests.golden_scenarios import (
    FIXTURE_PATH,
    SCENARIOS,
    result_to_dict,
    run_scenario,
    run_scenario_restarted,
)


@pytest.fixture(scope="module")
def fixture():
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate ONLY from a pre-refactor "
        "monolith build: PYTHONPATH=src python -m tests.golden_scenarios"
    )
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bit_identical_to_monolith(name, fixture):
    assert result_to_dict(run_scenario(name)) == fixture[name]


@pytest.mark.parametrize("name", ["single-region", "spotverse-efs"])
def test_restart_mid_run_is_bit_identical(name, fixture):
    # single-region: the interruption-heaviest scenario (S3 backend);
    # spotverse-efs: exercises EFS file-system registry restore.
    assert result_to_dict(run_scenario_restarted(name)) == fixture[name]


def test_fixture_has_expected_shape(fixture):
    assert set(fixture) == set(SCENARIOS)
    for name, payload in fixture.items():
        assert len(payload["records"]) == 6, name
        assert all(r["completed_at"] is not None for r in payload["records"]), name
