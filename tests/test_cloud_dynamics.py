"""Tests for the interruption dynamics: diurnal swing, reclaim bursts,
burst-degraded fulfillment, and the sweep's recovery path."""

import numpy as np
import pytest

from repro.cloud.market import (
    DIURNAL_AMPLITUDE,
    GEOGRAPHY_PEAK_HOURS,
    SpotMarket,
    diurnal_factor,
)
from repro.cloud.profiles import MarketProfile
from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import SpotRequestState
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.strategies import SingleRegionPolicy
from repro.workloads import synthetic_workload


def burst_market(**kwargs):
    defaults = dict(
        region="us-east-1",
        instance_type="m5.xlarge",
        interruption_freq_pct=5.0,
        burst_period_hours=6.0,
        burst_width_hours=0.5,
        burst_hazard_per_hour=1.2,
    )
    defaults.update(kwargs)
    return SpotMarket(
        profile=MarketProfile(**defaults),
        od_price=0.2,
        rng=np.random.default_rng(3),
    )


class TestDiurnal:
    def test_peak_and_trough(self):
        peak = 3.0
        at_peak = diurnal_factor(3 * HOUR, peak)
        at_trough = diurnal_factor(15 * HOUR, peak)
        assert at_peak == pytest.approx(1 + DIURNAL_AMPLITUDE)
        assert at_trough == pytest.approx(1 - DIURNAL_AMPLITUDE)

    def test_never_negative_even_with_large_amplitude(self):
        for t in range(0, int(DAY), 3600):
            assert diurnal_factor(float(t), 3.0, amplitude=1.5) >= 0.0

    def test_geographies_have_distinct_peaks(self):
        peaks = set(GEOGRAPHY_PEAK_HOURS.values())
        assert len(peaks) == 3

    def test_provider_assigns_peaks_by_geography(self):
        provider = CloudProvider(seed=0)
        assert provider.market("us-east-1", "m5.large").hazard_peak_hour == 3.0
        assert provider.market("eu-west-1", "m5.large").hazard_peak_hour == 11.0
        assert provider.market("ap-southeast-1", "m5.large").hazard_peak_hour == 19.0


class TestReclaimBursts:
    def test_burst_raises_hazard(self):
        market = burst_market()
        baseline = market.interruption_hazard_per_hour
        in_burst = []
        out_burst = []
        for minutes in range(0, 24 * 60, 5):
            t = minutes * 60.0
            if market.in_reclaim_burst(t):
                in_burst.append(market.hazard_at(t))
            else:
                out_burst.append(market.hazard_at(t))
        assert in_burst, "a 6-hour burst period must hit within a day"
        assert min(in_burst) > max(out_burst)
        assert min(in_burst) >= 1.2  # at least the burst hazard

    def test_burst_periodicity(self):
        market = burst_market(burst_period_hours=6.0, burst_width_hours=0.5)
        burst_minutes = [
            minutes
            for minutes in range(0, 24 * 60)
            if market.in_reclaim_burst(minutes * 60.0)
        ]
        # Four bursts of ~30 minutes each in 24 hours.
        assert 4 * 25 <= len(burst_minutes) <= 4 * 35

    def test_no_bursts_when_period_zero(self):
        market = burst_market(burst_period_hours=0.0)
        assert not any(
            market.in_reclaim_burst(m * 60.0) for m in range(0, 24 * 60, 5)
        )

    def test_market_phases_differ_across_markets(self):
        provider = CloudProvider(seed=0)
        phases = {
            provider.market(region, "m5.xlarge")._burst_phase
            for region in ("us-east-1", "us-east-2", "us-west-2")
        }
        assert len(phases) == 3

    def test_episode_decay_multiplies_hazard(self):
        market = burst_market(
            burst_period_hours=0.0, episode_boost=4.0, episode_tau_hours=5.0
        )
        early = market.hazard_at(0.0)
        late = market.hazard_at(30 * HOUR)
        assert early > 3 * late


class TestBurstFulfillment:
    def test_requests_rarely_fulfill_during_burst(self):
        provider = CloudProvider(seed=1)
        market = provider.market("ca-central-1", "m5.xlarge")
        # Find a time inside a burst and park the engine there.
        t = 0.0
        while not market.in_reclaim_burst(t):
            t += MINUTE
        provider.engine.run_until(t)
        outcomes = []
        for i in range(40):
            request = provider.ec2.request_spot_instances(
                "ca-central-1", "m5.xlarge", tag=f"w{i}"
            )
            outcomes.append(request)
        provider.engine.run_until(t + 10 * MINUTE)
        open_count = sum(
            1 for request in outcomes if request.state is SpotRequestState.OPEN
        )
        # With p_fulfill scaled by 0.15, most requests stay open.
        assert open_count > 25

    def test_sweep_recovers_requests_stuck_in_burst(self):
        provider = CloudProvider(seed=2)
        provider.warmup_markets(24)
        config = SpotVerseConfig(instance_type="m5.xlarge")
        controller = FleetController(
            provider, SingleRegionPolicy(region="ca-central-1"), config
        )
        result = controller.run(
            [synthetic_workload(f"w{i}", duration_hours=6.0) for i in range(10)],
            max_hours=72,
        )
        # Despite bursts degrading fulfillment, the 15-minute sweep
        # keeps retrying until every workload completes.
        assert result.all_complete


class TestProviderLifecycle:
    def test_shutdown_stops_periodic_machinery(self):
        provider = CloudProvider(seed=3)
        provider.ec2.run_on_demand("us-east-1", "m5.large", tag="w")
        provider.engine.run_until(HOUR)
        provider.shutdown()
        pending_before = provider.engine.pending_events
        provider.engine.run_until(2 * HOUR)
        # No periodic tasks rearming themselves.
        assert provider.engine.pending_events <= pending_before

    def test_shutdown_settles_billing(self):
        provider = CloudProvider(seed=3)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.large", tag="w")
        provider.engine.run_until(HOUR)
        provider.shutdown()
        assert instance.accrued_cost == pytest.approx(0.096, rel=0.01)
