"""Market observatory + Algorithm-1 decision provenance (acceptance).

Unit coverage for the ring-buffer time-series store, the anomaly
detector, and the decision audit trail — then the seeded end-to-end
acceptance: every migration has a decision record excluding the
interrupted region, fallbacks carry their reason, ``obs explain``
renders a causal chain from the exported JSONL alone, and ring-buffer
series stay within capacity over multi-day runs while covering the
full time range.
"""

import pytest

from repro.cli import main
from repro.cloud.provider import CloudProvider
from repro.core import SpotVerse, SpotVerseConfig
from repro.errors import ReproError
from repro.obs import (
    EventType,
    RingSeries,
    Telemetry,
    TelemetryStream,
    TimeSeriesStore,
    decisions_from_events,
    render_explanation,
    validate_stream,
    write_jsonl,
)
from repro.obs.observatory import MarketObservatory
from repro.obs.provenance import (
    FALLBACK_BELOW_THRESHOLD,
    DecisionLog,
    DecisionRecord,
    RegionEvaluation,
)
from repro.sim.clock import DAY, HOUR
from repro.workloads import genome_reconstruction_workload, synthetic_workload


# ----------------------------------------------------------------------
# Ring-buffer time series
# ----------------------------------------------------------------------
class TestRingSeries:
    def test_capacity_must_be_even_and_at_least_four(self):
        for bad in (0, 2, 3, 7):
            with pytest.raises(ReproError):
                RingSeries(capacity=bad)

    def test_under_capacity_keeps_raw_samples(self):
        series = RingSeries(capacity=8)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert len(series) == 5
        assert series.values() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert series.stride == 1

    def test_downsampling_bounds_length_and_covers_range(self):
        series = RingSeries(capacity=16)
        n = 10_000
        for i in range(n):
            series.append(float(i), float(i))
        assert len(series) <= 16
        assert series.n_samples == n
        first, last = series.span()
        # Coarse buckets, but the retained window still reaches from
        # (near) the first sample to the last.
        assert first < n * 0.2
        assert last > n * 0.9

    def test_merge_preserves_extremes_and_counts(self):
        series = RingSeries(capacity=4)
        for i, value in enumerate([1.0, 100.0, -5.0, 7.0, 3.0, 2.0, 9.0, 4.0]):
            series.append(float(i), value)
        buckets = series.buckets()
        assert sum(bucket.count for bucket in buckets) == 8
        assert min(bucket.lo for bucket in buckets) == -5.0
        assert max(bucket.hi for bucket in buckets) == 100.0

    def test_window_filters_by_time(self):
        series = RingSeries(capacity=32)
        for i in range(10):
            series.append(float(i), float(i))
        window = series.window(3.0, 6.0)
        assert [bucket.time for bucket in window] == [3.0, 4.0, 5.0, 6.0]


class TestTimeSeriesStore:
    def test_record_and_label_views(self):
        store = TimeSeriesStore()
        store.record("price", 1.0, 0.5, region="us-east-1", instance_type="m5")
        store.record("price", 1.0, 0.7, region="eu-west-1", instance_type="m5")
        store.record("score", 1.0, 4.0, region="us-east-1", instance_type="m5")
        assert store.names() == ["price", "score"]
        assert store.label_values("price", "region") == ["eu-west-1", "us-east-1"]
        assert len(store.series_for("price")) == 2
        assert len(store.series_for("price", region="eu-west-1")) == 1

    def test_points_round_trip(self):
        store = TimeSeriesStore(capacity=8)
        for i in range(20):
            store.record("price", float(i), float(i), region="r1")
        rebuilt = TimeSeriesStore.from_points(list(store.points()), capacity=64)
        (key, series), = rebuilt.series_for("price")
        assert dict(key)["region"] == "r1"
        original = store.get("price", region="r1")
        assert series.values() == original.values()
        assert series.times() == original.times()


# ----------------------------------------------------------------------
# Anomaly detection on synthetic markets
# ----------------------------------------------------------------------
class _FakeMarket:
    """Duck-typed market with scriptable price and hazard."""

    def __init__(self, region="r1", price=0.10, hazard=0.05):
        self.region = region
        self.instance_type = "m5.xlarge"
        self.available = True
        self.spot_price = price
        self.placement_score = 5.0
        self.interruption_frequency = 5.0
        self._hazard = hazard

    def hazard_at(self, now):
        return self._hazard

    def utilization(self):
        return 0.0

    def fulfillment_factor(self):
        return 1.0


class TestMarketObservatory:
    def test_price_spike_is_edge_triggered(self):
        observatory = MarketObservatory(min_baseline=8)
        market = _FakeMarket(price=0.10)
        rng_prices = [0.10 + 0.001 * ((i * 7) % 5 - 2) for i in range(20)]
        for i, price in enumerate(rng_prices):
            market.spot_price = price
            observatory.observe(float(i) * HOUR, [market])
        assert observatory.anomalies == []
        # A 5x spike held for three steps raises exactly one anomaly.
        market.spot_price = 0.50
        for i in range(3):
            observatory.observe((20 + i) * HOUR, [market])
        spikes = observatory.anomalies_for("r1", kind="price_spike")
        assert len(spikes) == 1
        assert spikes[0].field == "spot_price"
        assert spikes[0].zscore > observatory.price_z_threshold

    def test_reclaim_burst_against_rolling_baseline(self):
        observatory = MarketObservatory(min_baseline=8, hazard_factor=3.0)
        market = _FakeMarket(hazard=0.05)
        for i in range(12):
            observatory.observe(float(i) * HOUR, [market])
        market._hazard = 0.50  # 10x the baseline
        observatory.observe(12.0 * HOUR, [market])
        observatory.observe(13.0 * HOUR, [market])
        bursts = observatory.anomalies_for("r1", kind="reclaim_burst")
        assert len(bursts) == 1  # edge-triggered, not one per step
        assert bursts[0].field == "hazard_per_hour"

    def test_anomalies_publish_on_bus(self):
        telemetry = Telemetry()
        observatory = MarketObservatory(
            store=telemetry.timeseries, bus=telemetry.bus, min_baseline=4
        )
        market = _FakeMarket(price=0.10)
        for i in range(8):
            observatory.observe(float(i), [market])
        market.spot_price = 1.0
        observatory.observe(9.0, [market])
        events = telemetry.bus.events(EventType.MARKET_ANOMALY)
        assert len(events) == 1
        assert events[0].region == "r1"
        assert events[0].attrs["kind"] == "price_spike"

    def test_unavailable_markets_are_skipped(self):
        observatory = MarketObservatory()
        market = _FakeMarket()
        market.available = False
        observatory.observe(0.0, [market])
        assert observatory.store.names() == []


# ----------------------------------------------------------------------
# Decision records
# ----------------------------------------------------------------------
def evaluation(region, score, threshold=6.0, spot=0.05):
    return RegionEvaluation(
        region=region,
        spot_price=spot,
        od_price=0.192,
        placement_score=score - 2,
        stability_score=2,
        score=score,
        threshold=threshold,
        passed=score >= threshold,
        margin=score - threshold,
        collected_at=10.0,
    )


class TestDecisionRecords:
    def test_round_trip(self):
        record = DecisionRecord(
            decision_id=3,
            time=120.0,
            kind="migration",
            workload_ids=("wl-001",),
            threshold=6.0,
            max_regions=4,
            evaluations=[evaluation("a", 7.0), evaluation("b", 5.0)],
            excluded_region="c",
            candidates=("a",),
            chosen_region="a",
            draw_index=0,
        )
        clone = DecisionRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.n_passed == 1
        assert not clone.is_fallback
        assert clone.evaluation_for("b").margin == pytest.approx(-1.0)

    def test_log_mirrors_records_onto_bus(self):
        telemetry = Telemetry()
        log = telemetry.decisions
        log.record(
            kind="initial",
            workload_ids=["w1", "w2"],
            threshold=6.0,
            max_regions=4,
            evaluations=[evaluation("a", 7.0)],
            candidates=["a"],
            chosen_region="",
        )
        events = telemetry.bus.events(EventType.DECISION_EVALUATED)
        assert len(events) == 1
        assert events[0].workload_id == ""  # fleet-level decision
        rebuilt = decisions_from_events(events)
        assert rebuilt == log.records()
        assert "round-robin" in rebuilt[0].summary()

    def test_fallback_record_and_query(self):
        log = DecisionLog()
        log.record(
            kind="initial",
            workload_ids=["w"],
            threshold=9.0,
            max_regions=4,
            evaluations=[evaluation("a", 7.0, threshold=9.0)],
            candidates=[],
            chosen_region="us-west-1",
            chosen_option="on-demand",
            fallback_reason=FALLBACK_BELOW_THRESHOLD,
        )
        (fallback,) = log.fallbacks()
        assert fallback.is_fallback
        assert FALLBACK_BELOW_THRESHOLD in fallback.summary()

    def test_explanation_requires_known_workload(self):
        with pytest.raises(ReproError, match="never appears"):
            render_explanation([], "ghost")


# ----------------------------------------------------------------------
# End-to-end acceptance: seeded SpotVerse fleet with interruptions
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def provenance_run(tmp_path_factory):
    """Seed 13: a SpotVerse fleet that suffers several interruptions."""
    telemetry = Telemetry()
    provider = CloudProvider(seed=13, telemetry=telemetry, observatory=True)
    spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
    fleet = [
        genome_reconstruction_workload(f"wl-{i:03d}", duration_hours=20.0)
        for i in range(10)
    ]
    result = spotverse.run(fleet, max_hours=160.0)
    path = tmp_path_factory.mktemp("provenance") / "run.jsonl"
    write_jsonl(str(path), telemetry)
    return provider, telemetry, result, path


class TestProvenanceAcceptance:
    def test_stream_stays_valid_with_new_event_types(self, provenance_run):
        provider, telemetry, result, _ = provenance_run
        assert result.all_complete
        assert result.total_interruptions > 0
        assert validate_stream(list(telemetry.bus)) == []

    def test_every_migration_has_a_decision_excluding_interrupted_region(
        self, provenance_run
    ):
        """Acceptance (a)."""
        provider, telemetry, result, _ = provenance_run
        bus = telemetry.bus
        migration_starts = bus.events(EventType.MIGRATION_STARTED)
        assert migration_starts  # the seed produces migrations
        migration_decisions = telemetry.decisions.records("migration")
        assert len(migration_decisions) == len(migration_starts)
        by_workload = {}
        for decision in migration_decisions:
            by_workload.setdefault(decision.workload_ids[0], []).append(decision)
        for event in migration_starts:
            decisions = by_workload[event.workload_id]
            # One decision per migration, excluding the region the
            # interruption came from.
            matching = [d for d in decisions if d.excluded_region == event.region]
            assert matching, f"no decision excludes {event.region} for {event.workload_id}"
            for decision in matching:
                assert decision.excluded_region not in decision.candidates
                assert decision.chosen_region != decision.excluded_region
                # The excluded region was still *observed*.
                assert decision.evaluation_for(decision.excluded_region) is not None
                if decision.candidates:
                    assert decision.draw_index is not None
                    assert (
                        decision.candidates[decision.draw_index]
                        == decision.chosen_region
                    )

    def test_fallbacks_record_reason_with_all_regions_failing(self, tmp_path):
        """Acceptance (b): an unreachable threshold forces on-demand."""
        telemetry = Telemetry()
        provider = CloudProvider(seed=5, telemetry=telemetry, observatory=True)
        config = SpotVerseConfig(instance_type="m5.xlarge", score_threshold=14.0)
        spotverse = SpotVerse(provider, config)
        fleet = [synthetic_workload(f"fb-{i}", duration_hours=2.0) for i in range(4)]
        result = spotverse.run(fleet, max_hours=24.0)
        assert result.all_complete
        fallback_events = telemetry.bus.events(EventType.FALLBACK_ON_DEMAND)
        assert len(fallback_events) == 4
        for event in fallback_events:
            assert event.attrs["reason"] == FALLBACK_BELOW_THRESHOLD
        fallbacks = telemetry.decisions.fallbacks()
        assert fallbacks
        for decision in fallbacks:
            assert decision.fallback_reason == FALLBACK_BELOW_THRESHOLD
            assert decision.candidates == ()
            assert decision.evaluations  # every region was scored...
            assert all(not e.passed for e in decision.evaluations)  # ...and failed
            assert decision.chosen_option == "on-demand"

    def test_explain_renders_causal_chain_from_jsonl(self, provenance_run, capsys):
        """Acceptance (c): the chain comes from the saved stream alone."""
        provider, telemetry, result, path = provenance_run
        interrupted = next(
            record.workload_id
            for record in result.records
            if record.n_interruptions > 0
        )
        stream = TelemetryStream.load(str(path))
        text = render_explanation(stream.events, interrupted)
        assert f"causal chain for {interrupted}" in text
        assert "spot.interruption_warning" in text
        assert "(migration)" in text
        assert "excluded" in text
        # The chain is ordered: the migration decision comes after the
        # interruption warning it reacts to.
        lines = text.splitlines()
        warning_at = next(
            i for i, line in enumerate(lines) if "interruption_warning" in line
        )
        decision_at = next(
            i for i, line in enumerate(lines) if "(migration)" in line
        )
        assert decision_at > warning_at
        # And the CLI renders the same thing from the file.
        assert main(["obs", "explain", interrupted, "--from-events", str(path)]) == 0
        assert f"causal chain for {interrupted}" in capsys.readouterr().out

    def test_ring_buffers_stay_bounded_over_multi_day_sim(self):
        """Acceptance (d): capacity respected, full range covered."""
        capacity = 32
        telemetry = Telemetry(timeseries=TimeSeriesStore(capacity=capacity))
        provider = CloudProvider(seed=3, telemetry=telemetry, observatory=True)
        days = 6
        provider.engine.run_until(days * DAY)
        store = telemetry.timeseries
        assert store.names()  # the observatory sampled
        for key in store.keys():
            series = store._series[key]  # noqa: SLF001 - white-box capacity check
            assert len(series) <= capacity
            assert series.n_samples == days * 24  # hourly market steps
            first, last = series.span()
            # Downsampling kept (coarse) coverage of the whole range.
            assert first <= DAY
            assert last >= (days - 1) * DAY
        provider.shutdown()

    def test_run_report_includes_decisions_section(self, provenance_run):
        provider, telemetry, result, _ = provenance_run
        text = telemetry.report().render()
        assert "algorithm-1 decisions:" in text
        assert "threshold verdicts" in text
        assert "market anomalies" in text

    def test_observatory_never_perturbs_the_run(self):
        """Layering: observing markets must not change outcomes."""

        def run(observatory):
            telemetry = Telemetry()
            provider = CloudProvider(
                seed=11, telemetry=telemetry, observatory=observatory
            )
            spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
            fleet = [
                synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(5)
            ]
            result = spotverse.run(fleet, max_hours=48.0)
            return (
                result.instance_cost,
                result.total_interruptions,
                [record.regions for record in result.records],
            )

        assert run(observatory=False) == run(observatory=True)
