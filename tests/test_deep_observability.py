"""The deep-observability layer: profiler, causal tracing, and SLOs.

Integration surface for PR 6's tentpole: a chaos-campaign fleet run
with tracing and the hot-path profiler enabled must (a) leave the
fleet's numerical results bit-identical to an uninstrumented run of
the same seed, (b) yield a complete submit→placed→(interrupt→
reacquire)*→done causal tree per workload — including the retry and
dead-letter hops injected faults provoke — and (c) feed the latency
series the SLO engine scores.
"""

from __future__ import annotations

import pytest

from tests.golden_scenarios import result_to_dict

from repro.chaos import ChaosController, default_campaign
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.errors import ReproError
from repro.obs import RunReport, Telemetry
from repro.obs.events import EventType, TelemetryEvent
from repro.obs.profiler import SUBSYSTEMS, HotPathProfile, subsystem_for
from repro.obs.slo import (
    SLOSpec,
    SLOTarget,
    default_slo_spec,
    evaluate_slo,
    evaluate_slo_from_events,
    latency_series,
)
from repro.obs.tracing import render_trace
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload

#: Statuses that mark a hop as a retry/failure leg of its chain.
_FAULT_STATUSES = {"retry", "throttled", "dropped", "dead_letter", "error"}


def _run_chaos_fleet(instrumented: bool):
    """One seeded chaos-campaign fleet, with or without instrumentation."""
    provider = CloudProvider(seed=11, tracing=instrumented)
    if instrumented:
        provider.engine.trace = True
    ChaosController(provider, default_campaign().without_kills()).install()
    provider.warmup_markets(24)
    controller = FleetController(
        provider,
        SingleRegionPolicy(instance_type="m5.xlarge"),
        SpotVerseConfig(instance_type="m5.xlarge"),
    )
    fleet = [genome_reconstruction_workload(f"wl-{i:03d}") for i in range(6)]
    result = controller.run(fleet, max_hours=72.0)
    return provider, result


@pytest.fixture(scope="module")
def traced_chaos_fleet():
    return _run_chaos_fleet(instrumented=True)


class TestInstrumentationIsReadOnly:
    def test_traced_run_is_bit_identical_to_plain_run(self, traced_chaos_fleet):
        _, traced_result = traced_chaos_fleet
        _, plain_result = _run_chaos_fleet(instrumented=False)
        assert result_to_dict(traced_result) == result_to_dict(plain_result)


class TestCausalTracing:
    def test_every_workload_has_one_closed_root(self, traced_chaos_fleet):
        provider, result = traced_chaos_fleet
        tracer = provider.telemetry.tracer
        for record in result.records:
            hops = tracer.hops_for(record.workload_id)
            roots = [h for h in hops if h.parent_id is None]
            assert [h.name for h in roots] == ["workload:submit"]
            if record.completed:
                # WORKLOAD_DONE closes the root, so the whole chain has
                # a span: submit time to completion time.
                assert roots[0].end is not None
                assert roots[0].latency == pytest.approx(
                    record.completed_at - record.submitted_at
                )

    def test_interrupted_workload_tree_is_complete(self, traced_chaos_fleet):
        provider, result = traced_chaos_fleet
        tracer = provider.telemetry.tracer
        interrupted = [r for r in result.records if r.n_interruptions > 0]
        assert interrupted, "chaos campaign must interrupt at least one workload"
        record = interrupted[0]
        names = {hop.name for hop in tracer.hops_for(record.workload_id)}
        assert "workload:submit" in names
        assert "capacity:acquire" in names
        assert names & {"capacity:attach", "ec2:run-on-demand"}
        assert "ec2:interruption-warning" in names
        assert names & {
            "interruption:handle",
            "interruption:reconcile",
            "interruption:restrand",
        }

    def test_chaos_faults_surface_as_retry_hops(self, traced_chaos_fleet):
        provider, _ = traced_chaos_fleet
        tracer = provider.telemetry.tracer
        statuses = {
            hop.status
            for trace_id in tracer.trace_ids()
            for hop in tracer.hops_for(trace_id)
        }
        assert statuses & _FAULT_STATUSES, (
            "a default-campaign run should record at least one retry/"
            f"dead-letter hop, saw only {sorted(statuses)}"
        )

    def test_render_trace_shows_tree_and_critical_path(self, traced_chaos_fleet):
        provider, result = traced_chaos_fleet
        tracer = provider.telemetry.tracer
        record = next(r for r in result.records if r.n_interruptions > 0)
        text = render_trace(tracer.hops_for(record.workload_id), record.workload_id)
        assert record.workload_id in text
        assert "workload:submit" in text
        assert "critical path" in text


class TestHotPathProfiler:
    def test_profile_names_top_hot_labels(self, traced_chaos_fleet):
        provider, _ = traced_chaos_fleet
        profile = HotPathProfile.from_tracer(provider.engine.tracer)
        top = profile.top(5)
        assert len(top) == 5
        assert all(entry.count > 0 for entry in top)
        assert all(entry.subsystem in SUBSYSTEMS for entry in top)
        assert profile.fired_events == sum(e.count for e in profile.entries())
        report = profile.report(top=5)
        for entry in top:
            assert entry.group in report

    def test_profile_round_trips_through_payload(self, traced_chaos_fleet):
        provider, _ = traced_chaos_fleet
        profile = HotPathProfile.from_tracer(provider.engine.tracer)
        clone = HotPathProfile.from_payload(profile.to_payload())
        assert clone.fired_events == profile.fired_events
        assert [e.group for e in clone.top(5)] == [e.group for e in profile.top(5)]

    def test_subsystem_attribution(self):
        assert subsystem_for("markets:step") == "market"
        assert subsystem_for("ec2:fulfill:sir-000007") == "capacity"
        assert subsystem_for("ec2:reclaim") == "interruption"
        assert subsystem_for("cloudwatch:spotverse-collect-metrics") == "monitor"
        assert subsystem_for("chaos:window-open") == "chaos"
        assert subsystem_for("") == "other"


class TestSLOEngine:
    def _events(self):
        return [
            TelemetryEvent(
                seq=0, time=0.0, type=EventType.WORKLOAD_SUBMITTED, workload_id="w"
            ),
            TelemetryEvent(
                seq=1, time=120.0, type=EventType.INSTANCE_ATTACHED, workload_id="w"
            ),
            # A re-attach after migration must not count as placement.
            TelemetryEvent(
                seq=2, time=500.0, type=EventType.INSTANCE_ATTACHED, workload_id="w"
            ),
            TelemetryEvent(
                seq=3,
                time=900.0,
                type=EventType.MIGRATION_COMPLETED,
                workload_id="w",
                attrs={"latency": 400.0},
            ),
            TelemetryEvent(
                seq=4,
                time=950.0,
                type=EventType.CHECKPOINT_PERSISTED,
                workload_id="w",
                attrs={"latency": 30.0},
            ),
        ]

    def test_latency_series_derivation(self):
        series = latency_series(self._events())
        assert series["submit_to_placed_seconds"] == [120.0]
        assert series["interruption_to_reacquire_seconds"] == [400.0]
        assert series["checkpoint_write_seconds"] == [30.0]

    def test_breached_spec_fails_and_renders(self):
        spec = SLOSpec(
            name="breach",
            targets=(
                SLOTarget(
                    metric="submit_to_placed_seconds", threshold=1.0, objective=0.99
                ),
            ),
        )
        scorecard = evaluate_slo_from_events(spec, self._events())
        assert not scorecard.all_passed
        text = scorecard.render()
        assert "FAIL" in text and "SLO BREACH" in text

    def test_vacuous_pass_with_no_samples(self):
        scorecard = evaluate_slo(default_slo_spec(), {})
        assert scorecard.all_passed
        assert all(result.samples == 0 for result in scorecard.results)

    def test_spec_round_trip_and_validation(self):
        spec = default_slo_spec()
        assert SLOSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ReproError):
            SLOTarget(metric="x", threshold=1.0, objective=0.0)
        with pytest.raises(ReproError):
            SLOTarget(metric="x", threshold=-1.0)
        with pytest.raises(ReproError):
            SLOSpec.from_dict({"name": "empty", "targets": []})

    def test_fleet_run_produces_scoreable_series(self, traced_chaos_fleet):
        provider, result = traced_chaos_fleet
        series = latency_series(list(provider.telemetry.bus))
        assert len(series["submit_to_placed_seconds"]) == len(result.records)
        assert len(series["interruption_to_reacquire_seconds"]) == (
            result.total_interruptions
        )
        scorecard = evaluate_slo_from_events(None, list(provider.telemetry.bus))
        assert len(scorecard.results) == 3


class TestRunReportSections:
    def test_latency_and_resilience_sections_render(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w")
        event = telemetry.bus.emit
        event(EventType.INSTANCE_ATTACHED, workload_id="w")
        event(EventType.MIGRATION_COMPLETED, workload_id="w", latency=300.0)
        telemetry.metrics.counter("resilience_retries_total").inc(
            3, scope="fleet-state:save-execution"
        )
        telemetry.metrics.counter("resilience_dead_letters_total").inc(
            scope="fleet-state:save-execution"
        )
        text = RunReport.from_telemetry(telemetry).render()
        assert "service latency (sim time)" in text
        assert "resilience by scope" in text
        assert "fleet-state:save-execution" in text

    def test_sections_absent_on_quiet_runs(self):
        telemetry = Telemetry(clock=lambda: 0.0)
        telemetry.bus.emit(EventType.WORKLOAD_SUBMITTED, workload_id="w")
        text = RunReport.from_telemetry(telemetry).render()
        assert "resilience by scope" not in text
