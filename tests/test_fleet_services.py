"""Unit and integration tests for the decomposed fleet control plane."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import InstanceState, SpotRequestState
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.fleet import (
    DynamoCheckpointBackend,
    EFSCheckpointBackend,
    FleetStateStore,
)
from repro.errors import ExperimentError
from repro.galaxy.checkpoint import InMemoryCheckpointStore
from repro.obs import EventType
from repro.sim.clock import HOUR
from repro.strategies import OnDemandPolicy, SingleRegionPolicy
from repro.workloads.base import synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


@pytest.fixture()
def provider():
    p = CloudProvider(seed=4)
    p.warmup_markets(24)
    return p


class TestFleetStateStore:
    def test_tables_are_unmetered(self, provider):
        store = FleetStateStore(provider.dynamodb)
        before = provider.ledger.total()
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        store.bind_instance(instance, "w")
        store.instance_bindings()
        store.mapping("meta")["k"] = 1
        assert provider.ledger.total() == before

    def test_instance_bindings_roundtrip(self, provider):
        store = FleetStateStore(provider.dynamodb)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        store.bind_instance(instance, "w")
        assert store.instance_bindings() == {instance.instance_id: "w"}
        assert store.pop_instance(instance.instance_id) == "w"
        assert store.pop_instance(instance.instance_id) is None
        assert store.instance_bindings() == {}

    def test_request_tracking_keeps_filing_order(self, provider):
        store = FleetStateStore(provider.dynamodb)
        requests = [
            provider.ec2.request_spot_instances("us-east-1", "m5.xlarge", tag=f"w{i}")
            for i in range(3)
        ]
        for i, request in enumerate(requests):
            store.track_request(request, f"w{i}")
        assert store.tracked_requests() == [
            (request.request_id, f"w{i}") for i, request in enumerate(requests)
        ]
        assert store.pop_request(requests[1].request_id) == "w1"
        assert store.pop_request(requests[1].request_id) is None
        assert [wid for _, wid in store.tracked_requests()] == ["w0", "w2"]

    def test_meta_mapping_behaves_like_a_dict(self, provider):
        store = FleetStateStore(provider.dynamodb)
        mapping = store.mapping("efs-filesystems")
        mapping["us-east-1"] = "fs-0"
        mapping["eu-west-1"] = "fs-1"
        assert mapping["us-east-1"] == "fs-0"
        assert mapping.get("nope") is None
        assert sorted(mapping) == ["eu-west-1", "us-east-1"]
        assert len(mapping) == 2
        del mapping["us-east-1"]
        with pytest.raises(KeyError):
            mapping["us-east-1"]
        # Sections are isolated partitions of one meta table.
        assert "eu-west-1" not in store.mapping("other-section")

    def test_namespaces_isolate_controllers(self, provider):
        a = FleetStateStore(provider.dynamodb)
        b = FleetStateStore(provider.dynamodb)
        assert a.namespace != b.namespace
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        a.bind_instance(instance, "w")
        assert b.instance_bindings() == {}


class TestCapacityService:
    def make_controller(self, provider, policy=None):
        config = SpotVerseConfig(instance_type="m5.xlarge")
        policy = policy or SingleRegionPolicy(region="ca-central-1")
        return FleetController(provider, policy, config), config

    def test_untracked_fulfillment_is_discarded_with_telemetry(self, provider):
        controller, _ = self.make_controller(provider)
        capacity = controller.services["capacity"]
        request = provider.ec2.request_spot_instances(
            "us-east-1", "m5.xlarge", tag="ghost"
        )
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge", tag="ghost")
        capacity.on_spot_fulfilled(request, instance)
        assert instance.state is InstanceState.TERMINATED
        events = provider.telemetry.bus.events(EventType.CAPACITY_DISCARDED)
        assert len(events) == 1
        assert events[0].attrs["reason"] == "untracked-request"
        assert events[0].workload_id == "ghost"
        assert events[0].instance_id == instance.instance_id

    def test_satisfied_workload_fulfillment_is_discarded(self, provider):
        controller, _ = self.make_controller(provider)
        controller.submit([synthetic_workload("w", duration_hours=1.0)])
        # Give the workload on-demand capacity, so the late spot
        # fulfillment arrives for an already-satisfied workload.
        execution = controller.execution("w")
        execution.attach(provider.ec2.run_on_demand("ca-central-1", "m5.xlarge", tag="w"))
        request = provider.ec2.request_spot_instances("ca-central-1", "m5.xlarge", tag="w")
        controller.state_store.track_request(request, "w")
        late = provider.ec2.run_on_demand("ca-central-1", "m5.xlarge", tag="w")
        controller.services["capacity"].on_spot_fulfilled(request, late)
        assert late.state is InstanceState.TERMINATED
        events = provider.telemetry.bus.events(EventType.CAPACITY_DISCARDED)
        assert [e.attrs["reason"] for e in events] == ["workload-satisfied"]
        assert controller.state_store.pop_request(request.request_id) is None

    def test_sweep_prunes_requests_that_left_open_unfulfilled(self, provider):
        controller, _ = self.make_controller(provider)
        controller.submit([synthetic_workload("w", duration_hours=1.0)])
        (request_id, _), = controller.state_store.tracked_requests()
        # Cancelled outside the controller: the request leaves OPEN
        # without ever being fulfilled.  Pre-fix, its tracking entry
        # lingered forever; the sweep now prunes it.
        provider.ec2.cancel_spot_request(request_id)
        controller.services["capacity"].sweep_open_requests()
        assert controller.state_store.tracked_requests() == []

    def test_sweep_cancels_requests_nobody_needs(self, provider):
        controller, _ = self.make_controller(provider)
        controller.submit([synthetic_workload("w", duration_hours=1.0)])
        (request_id, _), = controller.state_store.tracked_requests()
        execution = controller.execution("w")
        execution.attach(provider.ec2.run_on_demand("ca-central-1", "m5.xlarge", tag="w"))
        assert not execution.needs_instance
        controller.services["capacity"].sweep_open_requests()
        request = next(
            r
            for r in provider.ec2.describe_spot_requests()
            if r.request_id == request_id
        )
        assert request.state is SpotRequestState.CANCELLED
        assert controller.state_store.tracked_requests() == []
        cancelled = provider.telemetry.bus.events(EventType.SPOT_REQUEST_CANCELLED)
        assert [e.request_id for e in cancelled] == [request_id]


class TestCheckpointBackends:
    def test_dynamo_backend_progress_and_artifacts(self, provider):
        provider.s3.create_bucket("results", "us-east-1")
        progress = InMemoryCheckpointStore()
        backend = DynamoCheckpointBackend(provider, "results", progress_store=progress)
        assert backend.name == "s3"
        assert backend.save_progress("w", 2, detail={"region": "us-east-1"})
        assert backend.load_progress("w") == 2
        assert backend.progress_detail("w") == {"region": "us-east-1"}
        backend.persist_artifact("w", 1, 512, region="us-east-1")
        assert provider.s3.list_objects("results", prefix="checkpoints/w/") == [
            "checkpoints/w/1.bin"
        ]

    def test_efs_backend_lazily_provisions_per_region(self, provider):
        backend = EFSCheckpointBackend(provider, results_region="us-east-1")
        assert backend.name == "efs"
        assert provider.efs.file_systems() == []
        backend.persist_artifact("w", 1, 1024, region="eu-west-1")
        backend.persist_artifact("w", 2, 1024, region="eu-west-1")
        # One file system per region, however many artifacts.
        assert len(provider.efs.file_systems()) == 1
        backend.persist_artifact("w", 3, 1024, region="ap-southeast-2")
        assert len(provider.efs.file_systems()) == 2

    def test_efs_backend_home_region_has_no_replica(self, provider):
        backend = EFSCheckpointBackend(provider, results_region="us-east-1")
        backend.persist_artifact("w", 1, 1024, region="us-east-1")
        (fs_id,) = provider.efs.file_systems()
        assert provider.efs.list_files(fs_id) == ["checkpoints/w/1.bin"]

    def test_efs_backend_durable_registry_survives_rebuild(self, provider):
        store = FleetStateStore(provider.dynamodb)
        registry = store.mapping("efs-filesystems")
        first = EFSCheckpointBackend(
            provider, results_region="us-east-1", fs_registry=registry
        )
        first.persist_artifact("w", 1, 1024, region="eu-west-1")
        assert len(provider.efs.file_systems()) == 1
        # A rebuilt control plane constructs a fresh backend over the
        # same durable registry: no new file system is provisioned.
        second = EFSCheckpointBackend(
            provider, results_region="us-east-1", fs_registry=store.mapping("efs-filesystems")
        )
        second.persist_artifact("w", 2, 1024, region="eu-west-1")
        assert len(provider.efs.file_systems()) == 1

    def test_efs_fleet_emits_efs_backend_events(self, provider):
        config = SpotVerseConfig(instance_type="m5.xlarge", checkpoint_backend="efs")
        controller = FleetController(
            provider, SingleRegionPolicy(region="ca-central-1"), config
        )
        workloads = [
            ngs_preprocessing_workload(f"w{i}", duration_hours=8.0) for i in range(6)
        ]
        result = controller.run(workloads, max_hours=72)
        assert result.all_complete
        saves = provider.telemetry.bus.events(EventType.CHECKPOINT_SAVED)
        assert saves, "expected at least one interruption-time checkpoint"
        assert {e.attrs["backend"] for e in saves} == {"efs"}
        assert len(provider.efs.file_systems()) >= 1


class TestControllerRestart:
    def test_rebuild_from_store_finishes_fleet(self, provider):
        config = SpotVerseConfig(instance_type="m5.xlarge")
        policy = SingleRegionPolicy(region="ca-central-1")
        controller = FleetController(provider, policy, config)
        workloads = [synthetic_workload(f"w{i}", duration_hours=4.0) for i in range(4)]
        controller.submit(workloads)
        provider.engine.run_until(provider.engine.now + HOUR)
        store = controller.state_store
        controller.teardown()
        rebuilt = FleetController(provider, policy, config, state_store=store)
        result = rebuilt.resume(workloads, max_hours=72)
        assert result.all_complete
        assert {r.workload_id for r in result.records} == {w.workload_id for w in workloads}

    def test_teardown_leaves_cloud_wiring_deployed(self, provider):
        config = SpotVerseConfig()
        controller = FleetController(provider, OnDemandPolicy(), config)
        store = controller.state_store
        controller.teardown()
        assert "spotverse-open-request-sweep" in provider.cloudwatch.scheduled_rules()
        assert "spotverse-interruption-handler" in provider.lambda_.functions()
        # Rebuilding over the same store must not redeploy (the sweep
        # rule would double up / shift phase).
        FleetController(provider, OnDemandPolicy(), config, state_store=store)
        assert provider.cloudwatch.scheduled_rules().count(
            "spotverse-open-request-sweep"
        ) == 1

    def test_resume_requires_definitions_for_stored_workloads(self, provider):
        config = SpotVerseConfig()
        controller = FleetController(provider, OnDemandPolicy(), config)
        workloads = [synthetic_workload("w", duration_hours=1.0)]
        controller.submit(workloads)
        store = controller.state_store
        controller.teardown()
        rebuilt = FleetController(provider, OnDemandPolicy(), config, state_store=store)
        with pytest.raises(ExperimentError):
            rebuilt.resume([])

    def test_restore_rejected_on_populated_controller(self, provider):
        config = SpotVerseConfig()
        controller = FleetController(provider, OnDemandPolicy(), config)
        workloads = [synthetic_workload("w", duration_hours=1.0)]
        controller.submit(workloads)
        with pytest.raises(ExperimentError):
            controller.resume(workloads)

    def test_unbound_router_discards_fulfillments(self, provider):
        config = SpotVerseConfig(instance_type="m5.xlarge")
        policy = SingleRegionPolicy(region="ca-central-1")
        controller = FleetController(provider, policy, config)
        controller.submit([synthetic_workload("w", duration_hours=1.0)])
        controller.teardown()
        # With no control plane bound, a late fulfillment has no owner:
        # the router terminates it instead of leaking a running instance.
        request = provider.ec2.request_spot_instances("ca-central-1", "m5.xlarge", tag="w")
        instance = provider.ec2.run_on_demand("ca-central-1", "m5.xlarge", tag="w")
        controller.state_store.router.spot_fulfilled(request, instance)
        assert instance.state is InstanceState.TERMINATED


class _AlwaysThrottleBatch:
    """Chaos stub: throttle every batch write until switched off."""

    def __init__(self):
        self.active = True

    def dynamodb_fault(self, op, conditional):
        if self.active and op == "batch_write_item":
            return "throttle"
        return None


class TestStateStoreBatching:
    """The write-through overlay: staged reads, per-tick flush, chaos."""

    def test_mutations_stage_until_flush(self, provider):
        store = FleetStateStore(provider.dynamodb)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        store.bind_instance(instance, "w")
        # Visible through the overlay immediately, but nothing has hit
        # the simulated DynamoDB yet.
        assert store.instance_bindings() == {instance.instance_id: "w"}
        assert provider.dynamodb.scan(store.instances_table) == []
        store.flush()
        assert provider.dynamodb.scan(store.instances_table) == [
            {"instance_id": instance.instance_id, "workload_id": "w"}
        ]

    def test_engine_tick_flushes_pending_writes(self, provider):
        store = FleetStateStore(provider.dynamodb)
        store.mapping("s")["k"] = 42
        assert provider.dynamodb.query(store.meta_table, "s") == []
        provider.engine.run_until(provider.engine.now + 1.0)
        assert provider.dynamodb.query(store.meta_table, "s") == [
            {"section": "s", "key": "k", "value": 42}
        ]

    def test_delete_after_flush_stages_tombstone(self, provider):
        store = FleetStateStore(provider.dynamodb)
        instance = provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        store.bind_instance(instance, "w")
        store.flush()
        assert store.pop_instance(instance.instance_id) == "w"
        # The tombstone hides the durable row until it is flushed away.
        assert store.instance_bindings() == {}
        assert len(provider.dynamodb.scan(store.instances_table)) == 1
        store.flush()
        assert provider.dynamodb.scan(store.instances_table) == []

    def test_flush_batches_one_write_per_table_per_tick(self, provider):
        store = FleetStateStore(provider.dynamodb)
        calls = []
        original = provider.dynamodb.batch_write_item

        def counting(table_name, puts=(), deletes=()):
            calls.append((table_name, len(puts), len(deletes)))
            return original(table_name, puts=puts, deletes=deletes)

        provider.dynamodb.batch_write_item = counting
        try:
            mapping = store.mapping("s")
            for i in range(5):
                mapping[f"k{i}"] = i
            store.flush()
        finally:
            provider.dynamodb.batch_write_item = original
        assert calls == [(store.meta_table, 5, 0)]

    def test_throttled_flush_retains_pending_and_self_heals(self, provider):
        store = FleetStateStore(provider.dynamodb)
        chaos = _AlwaysThrottleBatch()
        provider.attach_chaos(chaos)
        store.mapping("s")["k"] = 1
        store.flush()  # exhausts retries, dead-letters the batch
        assert provider.dynamodb.query(store.meta_table, "s") == []
        # Staged state is still readable and still pending...
        assert store.mapping("s")["k"] == 1
        chaos.active = False
        store.flush()  # ...and lands once the throttle window closes
        assert provider.dynamodb.query(store.meta_table, "s") == [
            {"section": "s", "key": "k", "value": 1}
        ]

    def test_scans_merge_overlay_with_durable_rows(self, provider):
        store = FleetStateStore(provider.dynamodb)
        instances = [
            provider.ec2.run_on_demand("us-east-1", "m5.xlarge") for _ in range(3)
        ]
        store.bind_instance(instances[0], "w0")
        store.flush()
        store.bind_instance(instances[1], "w1")  # staged only
        assert store.pop_instance(instances[0].instance_id) == "w0"  # tombstone
        store.bind_instance(instances[2], "w2")
        assert store.instance_bindings() == {
            instances[1].instance_id: "w1",
            instances[2].instance_id: "w2",
        }

    def test_teardown_flushes_outstanding_state(self, provider):
        config = SpotVerseConfig(instance_type="m5.xlarge")
        controller = FleetController(provider, OnDemandPolicy(), config)
        store = controller.state_store
        store.mapping("s")["k"] = 1
        controller.teardown()
        assert provider.dynamodb.query(store.meta_table, "s") == [
            {"section": "s", "key": "k", "value": 1}
        ]
