"""Unit tests for the spot dataset substrates (advisor, placement,
SpotLake archive, price traces)."""

import pytest

from repro.cloud.profiles import P3_UNAVAILABLE_REGIONS
from repro.data.placement import generate_placement_dataset
from repro.data.spot_advisor import generate_advisor_dataset
from repro.data.spotlake import SpotLakeArchive
from repro.data.traces import PriceTrace, generate_price_traces, trace_statistics
from repro.errors import CloudError


@pytest.fixture(scope="module")
def advisor():
    return generate_advisor_dataset(days=30, instance_types=["m5.2xlarge"], seed=1)


@pytest.fixture(scope="module")
def placement():
    return generate_placement_dataset(days=30, instance_types=["m5.2xlarge"], seed=1)


class TestAdvisorDataset:
    def test_coverage(self, advisor):
        assert advisor.days == 30
        assert len(advisor) == 12 * 30
        assert len(advisor.regions()) == 12

    def test_series_ordered_by_day(self, advisor):
        series = advisor.series("us-east-1", "m5.2xlarge")
        assert [record.day for record in series] == list(range(30))

    def test_missing_series_raises(self, advisor):
        with pytest.raises(CloudError):
            advisor.series("us-east-1", "z9.mega")

    def test_records_carry_instance_specs(self, advisor):
        record = advisor.series("us-east-1", "m5.2xlarge")[0]
        assert record.vcpus == 8
        assert record.memory_gib == 32.0

    def test_stability_derived_from_frequency(self, advisor):
        for record in advisor.records[:50]:
            if record.interruption_freq_pct < 5:
                assert record.stability_score == 3
            elif record.interruption_freq_pct <= 20:
                assert record.stability_score == 2
            else:
                assert record.stability_score == 1

    def test_heatmap_and_series_views(self, advisor):
        heatmap = advisor.frequency_heatmap("m5.2xlarge")
        assert set(heatmap) == set(advisor.regions())
        assert all(len(series) == 30 for series in heatmap.values())
        stability = advisor.average_stability_series("m5.2xlarge")
        assert len(stability) == 30
        assert all(1 <= value <= 3 for value in stability)

    def test_mean_stability_by_region(self, advisor):
        scores = advisor.mean_stability_by_region("m5.2xlarge", day=15)
        assert scores["us-west-1"] == 3
        assert scores["us-east-1"] <= 2

    def test_p3_exclusions(self):
        dataset = generate_advisor_dataset(days=5, instance_types=["p3.2xlarge"], seed=0)
        assert set(dataset.regions()).isdisjoint(P3_UNAVAILABLE_REGIONS)

    def test_determinism(self):
        a = generate_advisor_dataset(days=5, instance_types=["m5.large"], seed=9)
        b = generate_advisor_dataset(days=5, instance_types=["m5.large"], seed=9)
        assert a.records == b.records


class TestPlacementDataset:
    def test_series_and_views(self, placement):
        series = placement.series("eu-west-1", "m5.2xlarge")
        assert len(series) == 30
        assert all(1 <= record.score <= 10 for record in series)
        assert 1 <= series[0].reported_score <= 10

    def test_average_series(self, placement):
        averaged = placement.average_score_series("m5.2xlarge")
        assert len(averaged) == 30

    def test_regional_spread_positive(self, placement):
        assert placement.regional_spread("m5.2xlarge") > 0.5

    def test_missing_raises(self, placement):
        with pytest.raises(CloudError):
            placement.series("nowhere", "m5.2xlarge")
        with pytest.raises(CloudError):
            placement.regional_spread("z9.mega")

    def test_pairs(self, placement):
        assert ("us-east-1", "m5.2xlarge") in placement.pairs()


class TestSpotLake:
    def test_ingest_and_snapshot(self, advisor, placement):
        archive = SpotLakeArchive()
        assert archive.ingest_advisor(advisor) == len(advisor)
        assert archive.ingest_placement(placement) == len(placement)
        snapshot = archive.snapshot("us-east-1", "m5.2xlarge", day=10)
        assert snapshot.interruption_freq_pct is not None
        assert snapshot.placement_score is not None
        assert snapshot.combined_score == pytest.approx(
            snapshot.placement_score + snapshot.stability_score
        )

    def test_at_or_before_semantics(self, advisor):
        archive = SpotLakeArchive()
        archive.ingest_advisor(advisor)
        day_5 = archive.snapshot("us-east-1", "m5.2xlarge", day=5)
        day_5_again = archive.snapshot("us-east-1", "m5.2xlarge", day=5)
        assert day_5.interruption_freq_pct == day_5_again.interruption_freq_pct
        # Querying beyond the window returns the last known record.
        late = archive.snapshot("us-east-1", "m5.2xlarge", day=999)
        assert late.interruption_freq_pct is not None

    def test_unknown_market_raises(self):
        with pytest.raises(CloudError):
            SpotLakeArchive().snapshot("us-east-1", "m5.2xlarge", day=1)

    def test_snapshots_for_type(self, advisor):
        archive = SpotLakeArchive()
        archive.ingest_advisor(advisor)
        snapshots = archive.snapshots_for_type("m5.2xlarge", day=3)
        assert len(snapshots) == 12
        assert [s.region for s in snapshots] == sorted(s.region for s in snapshots)

    def test_partial_coverage(self, placement):
        archive = SpotLakeArchive()
        archive.ingest_placement(placement)
        snapshot = archive.snapshot("us-east-1", "m5.2xlarge", day=3)
        assert snapshot.interruption_freq_pct is None
        assert snapshot.combined_score is None
        assert archive.coverage() == {"advisor": 0, "placement": 12}


class TestPersistence:
    def test_advisor_roundtrip(self, advisor, tmp_path):
        from repro.data.persist import load_advisor_dataset, save_advisor_dataset

        path = tmp_path / "advisor.jsonl"
        written = save_advisor_dataset(advisor, path)
        assert written == len(advisor)
        loaded = load_advisor_dataset(path)
        assert loaded.days == advisor.days
        assert loaded.records == advisor.records

    def test_placement_roundtrip(self, placement, tmp_path):
        from repro.data.persist import load_placement_dataset, save_placement_dataset

        path = tmp_path / "placement.jsonl"
        save_placement_dataset(placement, path)
        loaded = load_placement_dataset(path)
        assert loaded.days == placement.days
        assert loaded.records == placement.records

    def test_schema_mismatch_rejected(self, advisor, placement, tmp_path):
        from repro.data.persist import (
            load_placement_dataset,
            save_advisor_dataset,
        )

        path = tmp_path / "advisor.jsonl"
        save_advisor_dataset(advisor, path)
        with pytest.raises(CloudError):
            load_placement_dataset(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.data.persist import load_advisor_dataset

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(CloudError):
            load_advisor_dataset(path)

    def test_loaded_dataset_feeds_spotlake(self, advisor, tmp_path):
        from repro.data.persist import load_advisor_dataset, save_advisor_dataset

        path = tmp_path / "advisor.jsonl"
        save_advisor_dataset(advisor, path)
        archive = SpotLakeArchive()
        archive.ingest_advisor(load_advisor_dataset(path))
        snapshot = archive.snapshot("us-east-1", "m5.2xlarge", day=5)
        assert snapshot.stability_score is not None


class TestPriceTraces:
    def test_generation_shape(self):
        traces = generate_price_traces(["m5.large"], days=2, seed=0)
        assert len(traces) == 36  # 12 regions x 3 AZs
        assert all(len(trace.prices) == 48 for trace in traces)

    def test_csv_roundtrip(self):
        traces = generate_price_traces(["m5.large"], days=1, seed=0)
        trace = traces[0]
        parsed = PriceTrace.from_csv(
            trace.to_csv(), trace.region, trace.az, trace.instance_type
        )
        assert parsed.prices == pytest.approx(trace.prices, abs=1e-6)
        assert parsed.times == pytest.approx(trace.times)

    def test_statistics(self):
        traces = generate_price_traces(["m5.large"], days=3, seed=0)
        stats = trace_statistics(traces)["m5.large"]
        assert stats["markets"] == 36
        assert stats["spread_ratio"] > 1
        assert stats["mean_cv"] > 0

    def test_az_skew_within_region(self):
        traces = generate_price_traces(["m5.large"], days=1, seed=0)
        use1 = sorted(
            (trace for trace in traces if trace.region == "us-east-1"),
            key=lambda trace: trace.az,
        )
        assert use1[0].mean() < use1[1].mean() < use1[2].mean()
