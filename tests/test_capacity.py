"""Unit tests for the finite-capacity market pool model."""

import numpy as np
import pytest

from repro.cloud.market import SpotMarket
from repro.cloud.profiles import MarketProfile, default_market_profiles
from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import InstanceLifecycle
from repro.sim.clock import HOUR


def metered_market(capacity=10, **kwargs):
    profile = MarketProfile(
        region="us-east-1",
        instance_type="m5.xlarge",
        capacity=capacity,
        **kwargs,
    )
    return SpotMarket(profile=profile, od_price=0.2, rng=np.random.default_rng(1))


class TestPressureModel:
    def test_unmetered_market_has_no_pressure(self):
        market = metered_market(capacity=0)
        market.instances_running = 1000
        assert market.utilization() == 0.0
        assert market.pressure_factor() == 1.0
        assert market.fulfillment_factor() == 1.0

    def test_utilization_clamped(self):
        market = metered_market(capacity=10)
        market.instances_running = 15
        assert market.utilization() == 1.0

    def test_pressure_quadratic(self):
        market = metered_market(capacity=10)
        market.instances_running = 5
        assert market.pressure_factor() == pytest.approx(1.5)
        market.instances_running = 10
        assert market.pressure_factor() == pytest.approx(3.0)

    def test_fulfillment_shrinks_with_utilization(self):
        market = metered_market(capacity=10)
        market.instances_running = 0
        assert market.fulfillment_factor() == 1.0
        market.instances_running = 8
        assert market.fulfillment_factor() == pytest.approx(0.2)
        market.instances_running = 10
        assert market.fulfillment_factor() == 0.0

    def test_pressure_scales_hazard(self):
        market = metered_market(capacity=10, interruption_freq_pct=10.0)
        base = market.hazard_at(0.0)
        market.instances_running = 10
        assert market.hazard_at(0.0) == pytest.approx(3.0 * base)


class TestEC2CapacityAccounting:
    def test_spot_launch_and_termination_track_pool(self):
        profiles = default_market_profiles().with_overrides(
            {("us-east-1", "m5.xlarge"): {"capacity": 5}}
        )
        provider = CloudProvider(seed=1, profiles=profiles)
        market = provider.market("us-east-1", "m5.xlarge")
        instances = [
            provider.ec2._launch("us-east-1", "m5.xlarge", InstanceLifecycle.SPOT, "w")
            for _ in range(3)
        ]
        assert market.instances_running == 3
        provider.ec2.terminate_instances([instances[0].instance_id])
        assert market.instances_running == 2
        # Idempotent termination does not double-release.
        provider.ec2.terminate_instances([instances[0].instance_id])
        assert market.instances_running == 2

    def test_on_demand_does_not_consume_pool(self):
        profiles = default_market_profiles().with_overrides(
            {("us-east-1", "m5.xlarge"): {"capacity": 5}}
        )
        provider = CloudProvider(seed=1, profiles=profiles)
        provider.ec2.run_on_demand("us-east-1", "m5.xlarge")
        assert provider.market("us-east-1", "m5.xlarge").instances_running == 0

    def test_interruption_releases_pool(self):
        profiles = default_market_profiles().with_overrides(
            {("us-east-1", "m5.xlarge"): {"capacity": 5, "interruption_freq_pct": 35.0,
                                          "hazard_multiplier": 20.0}}
        )
        provider = CloudProvider(seed=1, profiles=profiles)
        market = provider.market("us-east-1", "m5.xlarge")
        provider.ec2._launch("us-east-1", "m5.xlarge", InstanceLifecycle.SPOT, "w")
        assert market.instances_running == 1
        provider.engine.run_until(4 * HOUR)  # extreme hazard interrupts it
        assert market.instances_running == 0

    def test_full_pool_blocks_fulfillment(self):
        profiles = default_market_profiles().with_overrides(
            {("us-east-1", "m5.xlarge"): {"capacity": 2}}
        )
        provider = CloudProvider(seed=1, profiles=profiles)
        for _ in range(2):
            provider.ec2._launch("us-east-1", "m5.xlarge", InstanceLifecycle.SPOT, "w")
        requests = [
            provider.ec2.request_spot_instances("us-east-1", "m5.xlarge")
            for _ in range(10)
        ]
        provider.engine.run_until(HOUR)
        from repro.cloud.services.ec2 import SpotRequestState

        assert all(request.state is SpotRequestState.OPEN for request in requests)
