"""The chaos subsystem: campaigns, fault injection, and resilience.

The load-bearing guarantees under test:

* campaigns are declarative, serialisable, and seeded-replayable;
* the default campaign never breaks a single resilience invariant on
  *any* built-in policy;
* an empty campaign (and ``chaos=None``) is bit-identical to the
  pre-chaos golden fixtures — fault injection off means *off*;
* specific fault modes exercise their designed recovery path (retries,
  dead letters, reconciliation, checkpoint fallback);
* a controller kill mid-campaign recovers to a bit-identical result.
"""

import json

import pytest

from repro.chaos import (
    CampaignSpec,
    ChaosController,
    Injection,
    POLICY_NAMES,
    default_campaign,
    default_fleet,
    random_campaign,
    run_campaign,
)
from repro.cloud.provider import CloudProvider
from repro.errors import ChaosError, CloudError
from repro.obs import EventType
from repro.sim.clock import HOUR
from repro.workloads.base import synthetic_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


def small_fleet():
    fleet = [synthetic_workload(f"std-{i}", duration_hours=3.0, n_segments=3) for i in range(2)]
    fleet += [
        ngs_preprocessing_workload(f"ckpt-{i}", duration_hours=3.0, n_segments=3)
        for i in range(2)
    ]
    return fleet


# ----------------------------------------------------------------------
# Campaign specs
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            Injection(kind="meteor-strike")

    def test_rate_bounds_enforced(self):
        with pytest.raises(ChaosError, match="rate"):
            Injection(kind="dynamodb-throttle", rate=1.5)

    def test_blackout_requires_region(self):
        with pytest.raises(ChaosError, match="requires a region"):
            Injection(kind="region-blackout", at=10.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ChaosError):
            Injection(kind="lambda-error", at=-1.0)

    def test_round_trip_through_json(self):
        campaign = default_campaign()
        payload = json.dumps(campaign.to_dict(), sort_keys=True)
        rebuilt = CampaignSpec.from_dict(json.loads(payload))
        assert rebuilt == campaign

    def test_without_kills_strips_only_kills(self):
        campaign = CampaignSpec(
            name="k",
            injections=(
                Injection(kind="lambda-error", at=60.0, duration=60.0),
                Injection(kind="controller-kill", at=120.0),
            ),
        )
        assert campaign.kills == (120.0,)
        stripped = campaign.without_kills()
        assert [inj.kind for inj in stripped.injections] == ["lambda-error"]

    def test_random_campaign_is_seed_deterministic(self):
        regions = ("us-east-1", "eu-west-2", "ap-south-1")
        assert random_campaign(5, regions) == random_campaign(5, regions)
        assert random_campaign(5, regions) != random_campaign(6, regions)


# ----------------------------------------------------------------------
# Controller plumbing
# ----------------------------------------------------------------------
class TestChaosController:
    def test_double_install_rejected(self):
        provider = CloudProvider(seed=1)
        controller = ChaosController(provider, CampaignSpec(name="x"))
        controller.install()
        with pytest.raises(ChaosError):
            controller.install()

    def test_second_controller_rejected(self):
        provider = CloudProvider(seed=1)
        ChaosController(provider, CampaignSpec(name="x")).install()
        with pytest.raises(CloudError):
            ChaosController(provider, CampaignSpec(name="y")).install()

    def test_injection_offsets_are_campaign_relative(self):
        provider = CloudProvider(seed=1)
        provider.warmup_markets(24)
        started = provider.engine.now
        controller = ChaosController(
            provider,
            CampaignSpec(
                name="rel",
                injections=(Injection(kind="lambda-error", at=HOUR, duration=HOUR),),
            ),
        )
        controller.install()
        assert controller.started_at == started
        provider.engine.run_until(started + 0.5 * HOUR)
        assert not any(
            e.type is EventType.CHAOS_WINDOW_OPENED for e in provider.telemetry.bus
        )
        provider.engine.run_until(started + 1.5 * HOUR)
        opened = [
            e for e in provider.telemetry.bus if e.type is EventType.CHAOS_WINDOW_OPENED
        ]
        assert len(opened) == 1
        assert opened[0].time == started + HOUR


# ----------------------------------------------------------------------
# Zero-fault equivalence: chaos off (or empty) changes nothing
# ----------------------------------------------------------------------
class TestZeroFaultEquivalence:
    def test_empty_campaign_matches_golden_fixture(self):
        from tests.golden_scenarios import FIXTURE_PATH, result_to_dict

        fixture = json.loads(FIXTURE_PATH.read_text())
        outcome = run_campaign(
            policy="spotverse", campaign=CampaignSpec(name="empty", injections=())
        )
        assert result_to_dict(outcome.result) == fixture["spotverse"]
        assert outcome.all_passed

    def test_empty_campaign_reports_zero_faults(self):
        outcome = run_campaign(
            policy="single-region",
            campaign=CampaignSpec(name="empty"),
            workloads=small_fleet(),
            max_hours=48.0,
        )
        faults = outcome.scorecard["faults"]
        assert faults["total"] == 0
        assert faults["retries"] == 0
        assert faults["dead_letters"] == 0


# ----------------------------------------------------------------------
# The default campaign across every built-in policy
# ----------------------------------------------------------------------
class TestDefaultCampaignInvariants:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_all_invariants_pass(self, policy):
        outcome = run_campaign(policy=policy)
        failed = [
            inv["name"] for inv in outcome.scorecard["invariants"] if not inv["passed"]
        ]
        assert not failed, f"{policy}: {failed}"
        assert outcome.scorecard["faults"]["total"] > 0

    def test_scorecard_replays_bit_for_bit(self):
        first = run_campaign(policy="spotverse").scorecard
        second = run_campaign(policy="spotverse").scorecard
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_different_seeds_diverge(self):
        a = run_campaign(policy="spotverse", seed=11).scorecard
        b = run_campaign(policy="spotverse", seed=12).scorecard
        assert a != b


# ----------------------------------------------------------------------
# Individual fault modes hit their designed recovery paths
# ----------------------------------------------------------------------
class TestFaultModes:
    def test_throttle_storm_retries_and_dead_letters(self):
        campaign = CampaignSpec(
            name="throttle",
            injections=(
                Injection(kind="dynamodb-throttle", at=0.0, duration=48 * HOUR, rate=0.6),
            ),
        )
        outcome = run_campaign(
            policy="single-region",
            campaign=campaign,
            workloads=small_fleet(),
            max_hours=48.0,
        )
        assert outcome.all_passed
        assert outcome.scorecard["faults"]["retries"] > 0

    def test_total_eventbridge_drop_is_reconciled(self):
        # Every interruption notice is lost; the CloudWatch sweep must
        # detect the dead instances and restage the workloads.
        campaign = CampaignSpec(
            name="drop-everything",
            injections=(
                Injection(kind="eventbridge-drop", at=0.0, duration=72 * HOUR, rate=1.0),
            ),
        )
        outcome = run_campaign(
            policy="single-region",
            campaign=campaign,
            workloads=small_fleet(),
            max_hours=72.0,
        )
        assert outcome.all_passed
        interruptions = outcome.scorecard["totals"]["interruptions"]
        if interruptions:
            assert outcome.scorecard["faults"]["reconciled_interruptions"] > 0

    def test_checkpoint_corruption_triggers_fallback(self):
        campaign = CampaignSpec(
            name="corrupt",
            injections=(
                Injection(
                    kind="checkpoint-corruption", at=0.0, duration=72 * HOUR, rate=1.0
                ),
            ),
        )
        outcome = run_campaign(policy="single-region", campaign=campaign)
        assert outcome.all_passed
        # ca-central-1 is interruption-prone enough that checkpointable
        # workloads restore at least once; every artifact is corrupt, so
        # each verified restore demotes to a fallback.
        if outcome.scorecard["totals"]["interruptions"]:
            assert outcome.scorecard["faults"]["checkpoint_fallbacks"] > 0

    def test_region_blackout_forces_interruptions(self):
        campaign = CampaignSpec(
            name="blackout",
            injections=(
                Injection(
                    kind="region-blackout",
                    at=2 * HOUR,
                    duration=HOUR,
                    region="ca-central-1",
                ),
            ),
        )
        outcome = run_campaign(
            policy="single-region",
            campaign=campaign,
            workloads=small_fleet(),
            max_hours=48.0,
        )
        assert outcome.all_passed
        assert outcome.scorecard["faults"]["by_kind"].get("region-blackout") == 1
        assert outcome.scorecard["totals"]["interruptions"] > 0

    def test_reclaim_storm_interrupts_spot_capacity(self):
        campaign = CampaignSpec(
            name="storm",
            injections=(Injection(kind="reclaim-storm", at=HOUR, rate=1.0),),
        )
        outcome = run_campaign(
            policy="single-region",
            campaign=campaign,
            workloads=small_fleet(),
            max_hours=48.0,
        )
        assert outcome.all_passed
        assert outcome.scorecard["totals"]["interruptions"] >= len(small_fleet())


# ----------------------------------------------------------------------
# Controller kills: crash recovery under active fault windows
# ----------------------------------------------------------------------
class TestControllerKill:
    def test_kill_recovers_bit_identically(self):
        base = default_campaign()
        # 5h sits between the 4h reclaim storm and the 6h blackout, with
        # no rate-based window active — recovery's extra store reads
        # must not consume live window draws for bit-equality to hold.
        killed = CampaignSpec(
            name="default+kill",
            injections=tuple(base.injections)
            + (Injection(kind="controller-kill", at=5 * HOUR),),
        )
        outcome = run_campaign(
            policy="spotverse", campaign=killed, verify_resume_equivalence=True
        )
        by_name = {inv["name"]: inv for inv in outcome.scorecard["invariants"]}
        assert by_name["resume-equivalence"]["passed"], by_name["resume-equivalence"]
        assert outcome.all_passed

    def test_double_kill_still_completes(self):
        killed = CampaignSpec(
            name="two-kills",
            injections=(
                Injection(kind="dynamodb-throttle", at=0.5 * HOUR, duration=HOUR, rate=0.3),
                Injection(kind="controller-kill", at=2 * HOUR),
                Injection(kind="controller-kill", at=4 * HOUR),
            ),
        )
        outcome = run_campaign(
            policy="single-region",
            campaign=killed,
            workloads=small_fleet(),
            max_hours=48.0,
        )
        assert outcome.all_passed
