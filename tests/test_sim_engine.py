"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import HOUR, MINUTE, format_duration, hours, minutes
from repro.sim.engine import SimulationEngine


def test_clock_starts_at_zero():
    assert SimulationEngine().now == 0.0


def test_call_at_fires_at_requested_time():
    engine = SimulationEngine()
    seen = []
    engine.call_at(10.0, lambda: seen.append(engine.now))
    engine.run_until(20.0)
    assert seen == [10.0]
    assert engine.now == 20.0


def test_call_in_is_relative_to_now():
    engine = SimulationEngine()
    seen = []
    engine.call_at(5.0, lambda: engine.call_in(3.0, lambda: seen.append(engine.now)))
    engine.run_until(100.0)
    assert seen == [8.0]


def test_scheduling_into_the_past_rejected():
    engine = SimulationEngine()
    engine.run_until(10.0)
    with pytest.raises(SchedulingError):
        engine.call_at(5.0, lambda: None)
    with pytest.raises(SchedulingError):
        engine.call_in(-1.0, lambda: None)


def test_run_until_does_not_fire_future_events():
    engine = SimulationEngine()
    seen = []
    engine.call_at(50.0, lambda: seen.append("late"))
    engine.run_until(49.0)
    assert seen == []
    engine.run_until(50.0)
    assert seen == ["late"]


def test_run_until_backwards_rejected():
    engine = SimulationEngine()
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_run_until_idle_drains_queue():
    engine = SimulationEngine()
    seen = []
    engine.call_at(1.0, lambda: engine.call_in(1.0, lambda: seen.append("nested")))
    engine.run_until_idle()
    assert seen == ["nested"]
    assert engine.pending_events == 0


def test_run_until_idle_respects_max_time():
    engine = SimulationEngine()
    task = engine.every(10.0, lambda: None)
    engine.run_until_idle(max_time=35.0)
    assert engine.now == 35.0
    assert task.invocations == 3


def test_periodic_task_fires_on_interval():
    engine = SimulationEngine()
    times = []
    engine.every(MINUTE, lambda: times.append(engine.now))
    engine.run_until(5 * MINUTE)
    assert times == [60.0, 120.0, 180.0, 240.0, 300.0]


def test_periodic_task_start_at_override():
    engine = SimulationEngine()
    times = []
    engine.every(10.0, lambda: times.append(engine.now), start_at=0.0)
    engine.run_until(25.0)
    assert times == [0.0, 10.0, 20.0]


def test_periodic_task_cancel_stops_firing():
    engine = SimulationEngine()
    count = []
    task = engine.every(10.0, lambda: count.append(1))
    engine.run_until(25.0)
    task.cancel()
    engine.run_until(100.0)
    assert len(count) == 2
    assert task.cancelled


def test_periodic_interval_must_be_positive():
    with pytest.raises(SchedulingError):
        SimulationEngine().every(0.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = SimulationEngine()
    seen = []
    event = engine.call_at(5.0, lambda: seen.append("x"))
    event.cancel()
    engine.run_until(10.0)
    assert seen == []


def test_fired_events_counter():
    engine = SimulationEngine()
    for t in (1.0, 2.0, 3.0):
        engine.call_at(t, lambda: None)
    engine.run_until(10.0)
    assert engine.fired_events == 3


def test_trace_records_labels():
    engine = SimulationEngine(trace=True)
    engine.call_at(1.0, lambda: None, label="one")
    engine.run_until(2.0)
    assert engine.tracer.as_tuples() == [(1.0, "one")]


def test_reset_rewinds_clock_and_drops_events():
    engine = SimulationEngine()
    engine.call_at(5.0, lambda: None)
    engine.run_until(2.0)
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending_events == 0


def test_named_streams_are_reproducible():
    a = SimulationEngine(seed=3).streams.get("x").random()
    b = SimulationEngine(seed=3).streams.get("x").random()
    c = SimulationEngine(seed=4).streams.get("x").random()
    assert a == b
    assert a != c


def test_clock_helpers():
    assert hours(2) == 2 * HOUR
    assert minutes(3) == 3 * MINUTE
    assert format_duration(93784) == "1d 02:03:04"
    assert format_duration(42.9) == "00:00:42"

# ----------------------------------------------------------------------
# Scheduler selection
# ----------------------------------------------------------------------
def test_scheduler_flag_selects_queue_class():
    from repro.sim.events import BucketedEventQueue, EventQueue

    assert isinstance(SimulationEngine()._queue, BucketedEventQueue)
    assert isinstance(SimulationEngine(scheduler="heap")._queue, EventQueue)
    with pytest.raises(SchedulingError):
        SimulationEngine(scheduler="fifo")


def test_heap_and_wheel_engines_run_identically():
    def drive(engine):
        fired = []
        engine.every(7.0, lambda: fired.append(("periodic", engine.now)))
        engine.call_at(10.0, lambda: engine.call_in(0.0, lambda: fired.append(("child", engine.now))))
        doomed = engine.call_at(15.0, lambda: fired.append(("doomed", engine.now)))
        engine.call_at(12.0, doomed.cancel)
        engine.run_until(60.0)
        return fired

    assert drive(SimulationEngine(scheduler="heap")) == drive(SimulationEngine(scheduler="wheel"))


# ----------------------------------------------------------------------
# Batched periodic work
# ----------------------------------------------------------------------
def test_every_batch_fires_callbacks_in_registration_order():
    engine = SimulationEngine()
    fired = []
    task = engine.every_batch(
        10.0, [lambda: fired.append("a"), lambda: fired.append("b")], label="batch"
    )
    engine.run_until(25.0)
    assert fired == ["a", "b", "a", "b"]
    assert task.invocations == 2  # ticks, not callback runs
    assert task.batch_size == 2


def test_every_batch_is_one_engine_event_per_tick():
    engine = SimulationEngine()
    callbacks = [lambda: None for _ in range(5)]
    engine.every_batch(10.0, callbacks)
    engine.run_until(30.0)
    assert engine.fired_events == 3  # one event per tick, not per callback


def test_every_batch_add_remove_live():
    engine = SimulationEngine()
    fired = []
    late = lambda: fired.append("late")  # noqa: E731
    task = engine.every_batch(10.0, [lambda: fired.append("base")])
    engine.run_until(10.0)
    task.add(late)
    engine.run_until(20.0)
    task.remove(late)
    task.remove(late)  # absent: no-op
    engine.run_until(30.0)
    assert fired == ["base", "base", "late", "base"]


def test_every_batch_rejects_bad_input():
    engine = SimulationEngine()
    with pytest.raises(SchedulingError):
        engine.every_batch(0.0, [lambda: None])
    with pytest.raises(SchedulingError):
        engine.every_batch(5.0, [lambda: None, None])
    task = engine.every_batch(5.0, [lambda: None])
    with pytest.raises(SchedulingError):
        task.add(None)


def test_every_batch_cancel_stops_firing():
    engine = SimulationEngine()
    fired = []
    task = engine.every_batch(10.0, [lambda: fired.append(engine.now)])
    engine.run_until(15.0)
    task.cancel()
    engine.run_until(60.0)
    assert fired == [10.0]


# ----------------------------------------------------------------------
# Tick hooks
# ----------------------------------------------------------------------
def test_tick_hooks_fire_between_distinct_timestamps():
    engine = SimulationEngine()
    log = []
    engine.add_tick_hook(lambda: log.append(("hook", engine.now)))
    engine.call_at(5.0, lambda: log.append(("a", 5.0)))
    engine.call_at(5.0, lambda: log.append(("b", 5.0)))
    engine.call_at(9.0, lambda: log.append(("c", 9.0)))
    engine.run_until(9.0)
    # Same-timestamp events share one hook boundary; a final hook runs
    # when run_until returns.
    assert log == [
        ("hook", 0.0),
        ("a", 5.0),
        ("b", 5.0),
        ("hook", 5.0),
        ("c", 9.0),
        ("hook", 9.0),
    ]


def test_tick_hooks_do_not_perturb_event_stream():
    def drive(install_hook):
        engine = SimulationEngine(trace=True)
        if install_hook:
            engine.add_tick_hook(lambda: None)
        engine.every(7.0, lambda: None, label="tick")
        engine.call_at(10.0, lambda: None, label="once")
        engine.run_until(50.0)
        return engine.fired_events, engine.tracer.as_tuples()

    assert drive(False) == drive(True)


def test_remove_tick_hook():
    engine = SimulationEngine()
    log = []
    hook = lambda: log.append(engine.now)  # noqa: E731
    engine.add_tick_hook(hook)
    engine.remove_tick_hook(hook)
    engine.remove_tick_hook(hook)  # absent: no-op
    engine.call_at(5.0, lambda: None)
    engine.run_until(10.0)
    assert log == []


def test_tick_hooks_fire_in_run_until_idle():
    engine = SimulationEngine()
    log = []
    engine.add_tick_hook(lambda: log.append(engine.now))
    engine.call_at(5.0, lambda: None)
    engine.run_until_idle()
    assert log == [0.0, 5.0]
