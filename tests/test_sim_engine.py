"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import HOUR, MINUTE, format_duration, hours, minutes
from repro.sim.engine import SimulationEngine


def test_clock_starts_at_zero():
    assert SimulationEngine().now == 0.0


def test_call_at_fires_at_requested_time():
    engine = SimulationEngine()
    seen = []
    engine.call_at(10.0, lambda: seen.append(engine.now))
    engine.run_until(20.0)
    assert seen == [10.0]
    assert engine.now == 20.0


def test_call_in_is_relative_to_now():
    engine = SimulationEngine()
    seen = []
    engine.call_at(5.0, lambda: engine.call_in(3.0, lambda: seen.append(engine.now)))
    engine.run_until(100.0)
    assert seen == [8.0]


def test_scheduling_into_the_past_rejected():
    engine = SimulationEngine()
    engine.run_until(10.0)
    with pytest.raises(SchedulingError):
        engine.call_at(5.0, lambda: None)
    with pytest.raises(SchedulingError):
        engine.call_in(-1.0, lambda: None)


def test_run_until_does_not_fire_future_events():
    engine = SimulationEngine()
    seen = []
    engine.call_at(50.0, lambda: seen.append("late"))
    engine.run_until(49.0)
    assert seen == []
    engine.run_until(50.0)
    assert seen == ["late"]


def test_run_until_backwards_rejected():
    engine = SimulationEngine()
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_run_until_idle_drains_queue():
    engine = SimulationEngine()
    seen = []
    engine.call_at(1.0, lambda: engine.call_in(1.0, lambda: seen.append("nested")))
    engine.run_until_idle()
    assert seen == ["nested"]
    assert engine.pending_events == 0


def test_run_until_idle_respects_max_time():
    engine = SimulationEngine()
    task = engine.every(10.0, lambda: None)
    engine.run_until_idle(max_time=35.0)
    assert engine.now == 35.0
    assert task.invocations == 3


def test_periodic_task_fires_on_interval():
    engine = SimulationEngine()
    times = []
    engine.every(MINUTE, lambda: times.append(engine.now))
    engine.run_until(5 * MINUTE)
    assert times == [60.0, 120.0, 180.0, 240.0, 300.0]


def test_periodic_task_start_at_override():
    engine = SimulationEngine()
    times = []
    engine.every(10.0, lambda: times.append(engine.now), start_at=0.0)
    engine.run_until(25.0)
    assert times == [0.0, 10.0, 20.0]


def test_periodic_task_cancel_stops_firing():
    engine = SimulationEngine()
    count = []
    task = engine.every(10.0, lambda: count.append(1))
    engine.run_until(25.0)
    task.cancel()
    engine.run_until(100.0)
    assert len(count) == 2
    assert task.cancelled


def test_periodic_interval_must_be_positive():
    with pytest.raises(SchedulingError):
        SimulationEngine().every(0.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = SimulationEngine()
    seen = []
    event = engine.call_at(5.0, lambda: seen.append("x"))
    event.cancel()
    engine.run_until(10.0)
    assert seen == []


def test_fired_events_counter():
    engine = SimulationEngine()
    for t in (1.0, 2.0, 3.0):
        engine.call_at(t, lambda: None)
    engine.run_until(10.0)
    assert engine.fired_events == 3


def test_trace_records_labels():
    engine = SimulationEngine(trace=True)
    engine.call_at(1.0, lambda: None, label="one")
    engine.run_until(2.0)
    assert engine.tracer.as_tuples() == [(1.0, "one")]


def test_reset_rewinds_clock_and_drops_events():
    engine = SimulationEngine()
    engine.call_at(5.0, lambda: None)
    engine.run_until(2.0)
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending_events == 0


def test_named_streams_are_reproducible():
    a = SimulationEngine(seed=3).streams.get("x").random()
    b = SimulationEngine(seed=3).streams.get("x").random()
    c = SimulationEngine(seed=4).streams.get("x").random()
    assert a == b
    assert a != c


def test_clock_helpers():
    assert hours(2) == 2 * HOUR
    assert minutes(3) == 3 * MINUTE
    assert format_duration(93784) == "1d 02:03:04"
    assert format_duration(42.9) == "00:00:42"
