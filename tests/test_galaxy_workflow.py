"""Unit tests for workflow DAGs, invocations, histories, and tools."""

import pytest

from repro.errors import (
    GalaxyError,
    ToolNotInstalledError,
    WorkflowValidationError,
)
from repro.galaxy.history import History
from repro.galaxy.tools import Tool, ToolShed, default_toolshed
from repro.galaxy.workflow import (
    Invocation,
    StepInput,
    StepState,
    Workflow,
    WorkflowStep,
)


def two_step_workflow():
    return Workflow(
        "pipeline",
        [
            WorkflowStep(label="first", tool_id="sleep", duration=10.0),
            WorkflowStep(
                label="second",
                tool_id="sleep",
                inputs={"payload": StepInput("first", "slept")},
                duration=20.0,
            ),
        ],
    )


class TestWorkflowValidation:
    def test_valid_workflow(self):
        workflow = two_step_workflow()
        assert workflow.labels() == ["first", "second"]
        assert workflow.total_duration() == 30.0
        assert workflow.upstream_of("second") == ["first"]

    def test_empty_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("empty", [])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(
                "dup",
                [
                    WorkflowStep(label="x", tool_id="sleep"),
                    WorkflowStep(label="x", tool_id="sleep"),
                ],
            )

    def test_forward_reference_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(
                "fwd",
                [
                    WorkflowStep(
                        label="a",
                        tool_id="sleep",
                        inputs={"x": StepInput("b", "out")},
                    ),
                    WorkflowStep(label="b", tool_id="sleep"),
                ],
            )

    def test_self_reference_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow(
                "self",
                [
                    WorkflowStep(
                        label="a", tool_id="sleep", inputs={"x": StepInput("a", "out")}
                    )
                ],
            )

    def test_non_positive_duration_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("bad", [WorkflowStep(label="a", tool_id="sleep", duration=0)])

    def test_unknown_step_lookup(self):
        with pytest.raises(WorkflowValidationError):
            two_step_workflow().step("missing")


class TestInvocation:
    def test_progress_tracking(self):
        invocation = Invocation(two_step_workflow(), "inv-1")
        assert not invocation.finished
        assert invocation.next_step().label == "first"
        invocation.results["first"].state = StepState.OK
        assert invocation.next_step().label == "second"
        assert invocation.completed_steps() == ["first"]
        assert invocation.progress_fraction() == pytest.approx(10.0 / 30.0)

    def test_resolve_params_wires_outputs(self):
        workflow = two_step_workflow()
        invocation = Invocation(workflow, "inv-2")
        invocation.results["first"].state = StepState.OK
        invocation.results["first"].outputs = {"slept": 42}
        params = invocation.resolve_params(workflow.step("second"))
        assert params["payload"] == 42

    def test_resolve_params_incomplete_upstream(self):
        workflow = two_step_workflow()
        invocation = Invocation(workflow, "inv-3")
        with pytest.raises(WorkflowValidationError):
            invocation.resolve_params(workflow.step("second"))

    def test_resolve_params_missing_output(self):
        workflow = two_step_workflow()
        invocation = Invocation(workflow, "inv-4")
        invocation.results["first"].state = StepState.OK
        invocation.results["first"].outputs = {}
        with pytest.raises(WorkflowValidationError):
            invocation.resolve_params(workflow.step("second"))

    def test_reset_and_reset_from(self):
        invocation = Invocation(two_step_workflow(), "inv-5")
        for label in ("first", "second"):
            invocation.results[label].state = StepState.OK
        invocation.reset_from("second")
        assert invocation.results["first"].state is StepState.OK
        assert invocation.results["second"].state is StepState.NEW
        invocation.reset()
        assert invocation.results["first"].state is StepState.NEW

    def test_ok_property(self):
        invocation = Invocation(two_step_workflow(), "inv-6")
        for label in ("first", "second"):
            invocation.results[label].state = StepState.OK
        assert invocation.finished and invocation.ok
        invocation.results["second"].state = StepState.ERROR
        assert invocation.finished and not invocation.ok


class TestHistory:
    def test_add_and_lookup(self):
        history = History("h")
        history.add("reads", "payload-1", step_label="trim")
        latest = history.add("reads", "payload-2", step_label="trim")
        assert len(history) == 2
        assert history.latest("reads") is latest
        assert history.by_step("trim")[0].content == "payload-1"
        assert history.names() == ["reads", "reads"]

    def test_missing_dataset_raises(self):
        with pytest.raises(GalaxyError):
            History("h").latest("nope")

    def test_dataset_ids_unique(self):
        history = History("h")
        a = history.add("x", 1)
        b = history.add("x", 2)
        assert a.dataset_id != b.dataset_id


class TestToolShed:
    def test_default_shed_contents(self):
        shed = default_toolshed()
        for tool_id in (
            "fastqc",
            "multiqc",
            "cutadapt",
            "demux",
            "dada2",
            "phylogeny",
            "diversity",
            "vcf_consensus",
            "pangolin",
            "variant_caller",
            "sleep",
        ):
            assert tool_id in shed

    def test_missing_tool_raises(self):
        with pytest.raises(ToolNotInstalledError):
            ToolShed().get("fastqc")

    def test_install_and_upgrade(self):
        shed = ToolShed()
        shed.install(Tool("t", "T", "1.0", "", lambda p: {}))
        shed.install(Tool("t", "T", "2.0", "", lambda p: {}))
        assert shed.get("t").version == "2.0"
        assert shed.installed() == ["t"]

    def test_tool_failure_wrapped(self):
        def broken(params):
            raise ValueError("boom")

        tool = Tool("b", "B", "1", "", broken)
        with pytest.raises(GalaxyError) as excinfo:
            tool.run({})
        assert "boom" in str(excinfo.value)

    def test_fastqc_tool_runs(self):
        from repro.bio.fastq import write_fastq
        from repro.bio.seq import random_genome
        from repro.bio.fastq import simulate_reads
        import numpy as np

        reads = simulate_reads(
            random_genome(300, np.random.default_rng(0)), 10,
            rng=np.random.default_rng(1),
        )
        outputs = default_toolshed().get("fastqc").run(
            {"fastq": write_fastq(reads), "name": "x"}
        )
        assert outputs["report"].n_reads == 10
