"""Failure-injection tests: the control plane must absorb transient
failures the way the paper's Step Functions retry wiring promises."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import SpotRequestState
from repro.cloud.services.stepfunctions import ExecutionStatus
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.errors import SimulationError
from repro.sim.clock import HOUR, MINUTE
from repro.sim.engine import SimulationEngine
from repro.strategies import SingleRegionPolicy
from repro.workloads import synthetic_workload


class TestEngineGuards:
    def test_reentrant_run_until_rejected(self):
        engine = SimulationEngine()
        failures = []

        def nested():
            try:
                engine.run_until(100.0)
            except SimulationError as exc:
                failures.append(exc)

        engine.call_at(1.0, nested)
        engine.run_until(10.0)
        assert len(failures) == 1

    def test_reentrant_run_until_idle_rejected(self):
        engine = SimulationEngine()
        failures = []

        def nested():
            try:
                engine.run_until_idle()
            except SimulationError as exc:
                failures.append(exc)

        engine.call_at(1.0, nested)
        engine.run_until_idle()
        assert len(failures) == 1

    def test_callback_exception_leaves_engine_usable(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            engine.run_until(10.0)
        # The engine is not left in the running state.
        engine.call_at(engine.now + 1.0, lambda: None)
        engine.run_until(engine.now + 5.0)


class TestReacquireRetries:
    def test_transient_migration_failure_is_retried(self):
        """A policy that fails its first migration decisions recovers
        through Step Functions retries."""
        provider = CloudProvider(seed=14)
        provider.warmup_markets(24)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = SpotVerseOptimizer(monitor, config)
        failures_left = {"count": 2}
        original = policy.migration_placement

        def flaky_migration(workload, interrupted_region, ctx):
            if failures_left["count"] > 0:
                failures_left["count"] -= 1
                raise RuntimeError("transient metadata outage")
            return original(workload, interrupted_region, ctx)

        policy.migration_placement = flaky_migration
        controller = FleetController(provider, policy, config, monitor=monitor)
        result = controller.run(
            [synthetic_workload(f"w{i}", duration_hours=6.0) for i in range(6)],
            max_hours=72,
        )
        assert result.all_complete
        assert failures_left["count"] == 0, "the failure path must have been exercised"
        machine = provider.stepfunctions.get_state_machine("spotverse-reacquire")
        assert any(
            execution.attempts > 1 for execution in machine.executions
        ), "retries must have occurred"

    def test_permanent_migration_failure_marks_execution_failed(self):
        provider = CloudProvider(seed=14)
        provider.warmup_markets(24)
        config = SpotVerseConfig(
            instance_type="m5.xlarge",
            initial_distribution=False,
            start_region="ca-central-1",
        )
        monitor = Monitor(provider, ["m5.xlarge"])
        policy = SpotVerseOptimizer(monitor, config)
        policy.migration_placement = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("permanent")
        )
        controller = FleetController(provider, policy, config, monitor=monitor)
        result = controller.run(
            [synthetic_workload("w", duration_hours=8.0)], max_hours=24
        )
        machine = provider.stepfunctions.get_state_machine("spotverse-reacquire")
        if machine.executions:  # the workload was interrupted at least once
            assert all(
                execution.status is ExecutionStatus.FAILED
                for execution in machine.executions
            )
            assert not result.all_complete


class TestSweepHygiene:
    def test_sweep_cancels_requests_for_finished_workloads(self):
        """An open request whose workload already completed (e.g. via a
        later successful request) is cancelled by the sweep."""
        provider = CloudProvider(seed=15)
        provider.warmup_markets(24)
        config = SpotVerseConfig(instance_type="m5.xlarge")
        controller = FleetController(
            provider, SingleRegionPolicy(region="ca-central-1"), config
        )
        workload = synthetic_workload("w", duration_hours=0.5)
        result = controller.run([workload], max_hours=24)
        assert result.all_complete
        provider.engine.run_until(provider.engine.now + HOUR)
        open_requests = provider.ec2.describe_spot_requests(
            states=[SpotRequestState.OPEN]
        )
        assert open_requests == []

    def test_duplicate_fulfillment_terminates_extra_instance(self):
        """If a stale request fulfills after the workload got capacity
        elsewhere, the extra instance is terminated, not leaked."""
        provider = CloudProvider(seed=16)
        provider.warmup_markets(24)
        config = SpotVerseConfig(instance_type="m5.xlarge")
        controller = FleetController(
            provider, SingleRegionPolicy(region="eu-west-1"), config
        )
        result = controller.run(
            [synthetic_workload(f"w{i}", duration_hours=2.0) for i in range(4)],
            max_hours=24,
        )
        assert result.all_complete
        # After completion, nothing is left running or billing.
        from repro.cloud.services.ec2 import InstanceState

        assert provider.ec2.describe_instances(states=[InstanceState.RUNNING]) == []


class TestLambdaErrorContainment:
    def test_eventbridge_target_swallows_handler_errors(self):
        """A crashing rule target must not take down the simulation."""
        provider = CloudProvider(seed=17)

        def bad_handler(event, context):
            raise RuntimeError("handler bug")

        provider.lambda_.create_function("bad", bad_handler)
        provider.eventbridge.put_rule("r", "src", "T")
        provider.eventbridge.add_target("r", provider.lambda_.as_target("bad"))
        provider.eventbridge.put_event("src", "T")
        provider.engine.run_until(MINUTE)  # must not raise
        assert provider.lambda_.get_function("bad").failures == 1
        assert provider.lambda_.error_log
