"""Small coverage tests for corners not exercised elsewhere."""


from repro.sim.clock import days, format_duration
from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_spawn_creates_independent_namespace(self):
        parent = RandomStreams(seed=5)
        child_a = parent.spawn("rep-1")
        child_b = parent.spawn("rep-2")
        again = RandomStreams(seed=5).spawn("rep-1")
        # Same lineage reproduces; different lineages diverge.
        assert child_a.get("x").random() == again.get("x").random()
        assert child_a.seed != child_b.seed
        assert RandomStreams(seed=5).get("x").random() != RandomStreams(
            seed=5
        ).spawn("rep-1").get("x").random()

    def test_seed_property(self):
        assert RandomStreams(seed=9).seed == 9


class TestClockHelpers:
    def test_days_helper(self):
        assert days(2) == 2 * 86400

    def test_format_duration_negative(self):
        assert format_duration(-42) == "-00:00:42"

    def test_format_duration_zero(self):
        assert format_duration(0) == "00:00:00"


class TestLedgerZeroCharge:
    def test_zero_amount_recorded(self):
        from repro.cloud.billing import CostCategory, CostLedger

        ledger = CostLedger()
        ledger.charge(0.0, CostCategory.LAMBDA, 0.0, detail="free tier")
        entries = ledger.entries
        assert len(entries) == 1
        assert entries[0].detail == "free tier"
        assert entries[0].amount == 0.0
        assert ledger.total() == 0.0


class TestInstanceUptime:
    def test_uptime_clamped_non_negative(self):
        from repro.cloud.services.ec2 import Instance, InstanceLifecycle

        instance = Instance(
            instance_id="i-1",
            region="us-east-1",
            az="us-east-1a",
            instance_type="m5.large",
            lifecycle=InstanceLifecycle.ON_DEMAND,
            launch_time=100.0,
        )
        assert instance.uptime(50.0) == 0.0
        assert instance.uptime(160.0) == 60.0


class TestWorkloadDescriptionFields:
    def test_paper_workload_descriptions_are_informative(self):
        from repro.workloads import (
            genome_reconstruction_workload,
            ngs_preprocessing_workload,
            standard_general_workload,
        )

        assert "QIIME" in standard_general_workload("w").description
        assert "23 steps" in genome_reconstruction_workload("w").description
        assert "checkpointable" in ngs_preprocessing_workload("w").description


class TestVersionMetadata:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
