"""Unit tests for scoring, the Monitor, and SpotVerse configuration."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.monitor import METRICS_TABLE, Monitor
from repro.core.scoring import RegionMetrics, cheapest_first, combined_score, qualifying_regions
from repro.errors import CloudError, ReproError
from repro.sim.clock import HOUR, MINUTE


def metrics(region, spot=0.05, placement=4.0, freq=3.0):
    return RegionMetrics(
        region=region,
        instance_type="m5.xlarge",
        spot_price=spot,
        od_price=0.192,
        placement_score=placement,
        interruption_frequency=freq,
    )


class TestScoring:
    def test_combined_score_buckets(self):
        assert combined_score(4.0, 3.0) == 7.0  # stability 3
        assert combined_score(4.0, 10.0) == 6.0  # stability 2
        assert combined_score(4.0, 25.0) == 5.0  # stability 1

    def test_region_metrics_properties(self):
        m = metrics("r", spot=0.048, placement=3.5, freq=8.0)
        assert m.stability_score == 2
        assert m.combined_score == 5.5
        assert m.savings_fraction == pytest.approx(1 - 0.048 / 0.192)

    def test_zero_od_price_guard(self):
        m = RegionMetrics("r", "t", 0.1, 0.0, 3.0, 3.0)
        assert m.savings_fraction == 0.0

    def test_qualifying_regions_filter(self):
        pool = [metrics("a", placement=4.5), metrics("b", placement=2.0)]
        survivors = qualifying_regions(pool, threshold=6.0)
        assert [m.region for m in survivors] == ["a"]

    def test_cheapest_first_deterministic_ties(self):
        pool = [metrics("b", spot=0.05), metrics("a", spot=0.05), metrics("c", spot=0.04)]
        assert [m.region for m in cheapest_first(pool)] == ["c", "a", "b"]


class TestMonitor:
    def test_collect_writes_all_regions(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        written = monitor.collect()
        assert written == 12
        assert provider.dynamodb.item_count(METRICS_TABLE) == 12

    def test_snapshot_round_trips_market_state(self):
        provider = CloudProvider(seed=2)
        provider.warmup_markets(24)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        snapshot = monitor.snapshot("m5.xlarge")
        assert len(snapshot) == 12
        by_region = {m.region: m for m in snapshot}
        market = provider.market("eu-west-1", "m5.xlarge")
        assert by_region["eu-west-1"].spot_price == pytest.approx(market.spot_price)
        assert by_region["eu-west-1"].placement_score == pytest.approx(
            market.placement_score
        )

    def test_snapshot_without_collection_raises(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        with pytest.raises(CloudError):
            monitor.snapshot("c5.2xlarge")

    def test_deployed_monitor_collects_periodically(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], collect_interval=5 * MINUTE)
        assert monitor.collections == 1  # primed at deploy time
        provider.engine.run_until(HOUR)
        assert monitor.collections == 1 + 12

    def test_deploy_stages_spotinfo_in_s3(self):
        provider = CloudProvider(seed=2)
        Monitor(provider, ["m5.xlarge"])
        assert provider.s3.head_object("spotverse-tools", "spotinfo")
        assert provider.s3.head_object("spotverse-tools", "collector.py")

    def test_snapshot_staleness_ages_across_collect_cycles(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        assert monitor.staleness("m5.xlarge") == 0.0
        # No collection while the clock advances: every row ages.
        provider.engine.run_until(3 * HOUR)
        assert monitor.staleness("m5.xlarge") == pytest.approx(3 * HOUR)
        for m in monitor.snapshot("m5.xlarge"):
            assert m.collected_at == 0.0
            assert m.age(provider.engine.now) == pytest.approx(3 * HOUR)
        # A fresh collect re-stamps collected_at and resets staleness.
        monitor.collect()
        assert monitor.staleness("m5.xlarge") == 0.0
        for m in monitor.snapshot("m5.xlarge"):
            assert m.collected_at == pytest.approx(3 * HOUR)

    def test_deployed_monitor_staleness_bounded_by_interval(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], collect_interval=5 * MINUTE)
        provider.engine.run_until(HOUR + 2 * MINUTE)
        # The schedule keeps the snapshot fresher than one interval.
        assert 0.0 <= monitor.staleness("m5.xlarge") <= 5 * MINUTE

    def test_region_metrics_lookup(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        assert monitor.region_metrics("m5.xlarge", "us-east-1").region == "us-east-1"
        with pytest.raises(CloudError):
            monitor.region_metrics("m5.xlarge", "atlantis-1")

    def test_needs_instance_types(self):
        provider = CloudProvider(seed=2)
        with pytest.raises(CloudError):
            Monitor(provider, [], deploy=False)

    def test_watch_frequency_alarm_fires_on_flaky_region(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        alerts = []
        # The cheap tier's advisor frequency (~17 %) sits below this
        # threshold; force the market over it and collect.
        monitor.watch_frequency(
            "m5.xlarge", "us-east-1", alerts.append, threshold_pct=10.0
        )
        monitor.collect()
        assert alerts and alerts[0] > 10.0
        # Stable regions never trip the paper's >20 % rule.
        stable_alerts = []
        monitor.watch_frequency(
            "m5.xlarge", "eu-west-1", stable_alerts.append, threshold_pct=20.0
        )
        monitor.collect()
        assert stable_alerts == []

    def test_watch_frequency_fires_once_per_ok_to_alarm_crossing(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        alerts = []
        monitor.watch_frequency(
            "m5.xlarge", "us-east-1", alerts.append, threshold_pct=20.0
        )
        dimensions = {"region": "us-east-1", "instance_type": "m5.xlarge"}

        def publish(value):
            provider.cloudwatch.put_metric_data(
                "SpotVerse", "interruption_frequency", value, dimensions=dimensions
            )

        publish(5.0)  # OK
        assert alerts == []
        publish(25.0)  # OK -> ALARM: fires with the breaching value
        assert alerts == [25.0]
        publish(30.0)  # still ALARM: must not re-fire
        publish(40.0)
        assert alerts == [25.0]
        publish(10.0)  # ALARM -> OK resets the alarm silently
        assert alerts == [25.0]
        publish(21.0)  # second OK -> ALARM crossing fires again, once
        assert alerts == [25.0, 21.0]

    def test_watch_frequency_ignores_other_dimensions(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        alerts = []
        monitor.watch_frequency(
            "m5.xlarge", "us-east-1", alerts.append, threshold_pct=20.0
        )
        # Breaching data for a different region/type must not trip it.
        provider.cloudwatch.put_metric_data(
            "SpotVerse",
            "interruption_frequency",
            99.0,
            dimensions={"region": "eu-west-1", "instance_type": "m5.xlarge"},
        )
        provider.cloudwatch.put_metric_data(
            "SpotVerse",
            "interruption_frequency",
            99.0,
            dimensions={"region": "us-east-1", "instance_type": "c5.xlarge"},
        )
        assert alerts == []

    def test_collector_publishes_frequency_metric(self):
        provider = CloudProvider(seed=2)
        monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
        monitor.collect()
        value = provider.cloudwatch.get_metric_statistics(
            "SpotVerse",
            "interruption_frequency",
            dimensions={"region": "ca-central-1", "instance_type": "m5.xlarge"},
            statistic="Last",
        )
        market = provider.market("ca-central-1", "m5.xlarge")
        assert value == pytest.approx(market.interruption_frequency)


class TestConfig:
    def test_defaults_reasonable(self):
        config = SpotVerseConfig()
        assert config.instance_type == "m5.xlarge"
        assert config.score_threshold == 6.0
        assert config.max_regions == 4
        assert config.initial_distribution

    def test_validation(self):
        with pytest.raises(ReproError):
            SpotVerseConfig(max_regions=0)
        with pytest.raises(ReproError):
            SpotVerseConfig(boot_delay=-1)
        with pytest.raises(ReproError):
            SpotVerseConfig(sweep_interval=0)
        with pytest.raises(ReproError):
            SpotVerseConfig(collect_interval=0)
        with pytest.raises(ReproError):
            SpotVerseConfig(preferred_regions=[])

    def test_frozen(self):
        config = SpotVerseConfig()
        with pytest.raises(AttributeError):
            config.max_regions = 9
