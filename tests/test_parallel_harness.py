"""Process-pool arm execution: equality with serial, spec plumbing."""

import os
import pickle

import pytest

from repro.core.config import SpotVerseConfig
from repro.experiments import harness
from repro.experiments.harness import (
    ArmSpec,
    default_jobs,
    indexed_workload_factory,
    mean_over_seeds,
    policy_factory,
    run_arms,
    run_arms_parallel,
    set_default_jobs,
)
from repro.obs import Telemetry
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload


def _spec(name="arm", seed=3, telemetry=None, observatory=False):
    return ArmSpec(
        name=name,
        policy_factory=policy_factory(SingleRegionPolicy, region="ca-central-1"),
        config=SpotVerseConfig(instance_type="m5.xlarge"),
        workload_factory=indexed_workload_factory(
            genome_reconstruction_workload, "w-{:02d}", duration_hours=2.0
        ),
        n_workloads=2,
        seed=seed,
        max_hours=20.0,
        telemetry=telemetry,
        observatory=observatory,
    )


def _fleet_equal(a, b):
    return (
        a.total_cost == b.total_cost
        and a.total_interruptions == b.total_interruptions
        and a.makespan_hours == b.makespan_hours
        and [r.workload_id for r in a.records] == [r.workload_id for r in b.records]
    )


def test_factories_are_picklable():
    spec = _spec()
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.name == spec.name
    assert clone.workload_factory(3).workload_id == "w-03"


def test_parallel_results_equal_serial():
    specs = [_spec(name=f"arm-{seed}", seed=seed) for seed in (1, 2, 3)]
    serial = run_arms(specs, jobs=1)
    parallel = run_arms_parallel(specs, jobs=2)
    assert list(parallel) == [spec.name for spec in specs]
    # On a multi-core host the arms cross the pool and shed their
    # provider; a 1-core host takes the serial fallback and keeps it.
    pooled = (os.cpu_count() or 1) >= 2
    for name in serial:
        assert _fleet_equal(serial[name].fleet, parallel[name].fleet), name
        assert serial[name].provider is not None
        if pooled:
            assert parallel[name].provider is None
            assert parallel[name].telemetry is None
        else:
            assert parallel[name].provider is not None


def test_non_picklable_spec_falls_back_to_serial():
    safe = _spec(name="safe", seed=1)
    closure = _spec(name="closure", seed=2)
    closure.workload_factory = lambda i: genome_reconstruction_workload(
        f"w-{i:02d}", duration_hours=2.0
    )
    results = run_arms_parallel([safe, closure], jobs=2)
    # The closure arm ran in-process and keeps its provider.
    assert results["closure"].provider is not None
    assert list(results) == ["safe", "closure"]


def test_live_telemetry_pins_arm_to_serial():
    spec = _spec(name="observed", telemetry=Telemetry())
    results = run_arms_parallel([spec, _spec(name="plain", seed=4)], jobs=2)
    assert results["observed"].provider is not None
    assert results["observed"].telemetry is spec.telemetry


def test_duplicate_arm_names_rejected():
    with pytest.raises(ValueError):
        run_arms([_spec(name="dup"), _spec(name="dup", seed=9)])


def test_mean_over_seeds_preserves_spec_fields():
    telemetry = Telemetry()
    spec = _spec(telemetry=telemetry, observatory=True)
    captured = []
    original = harness.run_arms

    def capture(specs, jobs=None):
        captured.extend(specs)
        return original(specs, jobs=jobs)

    harness.run_arms = capture
    try:
        means = mean_over_seeds(spec, seeds=[1, 2])
    finally:
        harness.run_arms = original
    assert len(means) == 3
    assert [clone.seed for clone in captured] == [1, 2]
    for clone in captured:
        assert clone.telemetry is telemetry
        assert clone.observatory is True
        assert clone.max_hours == spec.max_hours
        assert clone.warmup_steps == spec.warmup_steps


def test_mean_over_seeds_parallel_matches_serial():
    spec = _spec()
    assert mean_over_seeds(spec, seeds=[1, 2], jobs=2) == mean_over_seeds(
        spec, seeds=[1, 2], jobs=1
    )


def test_default_jobs_knob():
    assert default_jobs() == 1
    set_default_jobs(3)
    try:
        assert default_jobs() == 3
        set_default_jobs(0)  # clamped to at least one worker
        assert default_jobs() == 1
    finally:
        set_default_jobs(1)
