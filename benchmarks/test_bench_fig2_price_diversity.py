"""Figure 2 bench: spot price diversity across types and regions.

Shape claims checked against the paper's Figure 2:
* every instance type trades in many (region, AZ) markets;
* cross-market mean prices spread by a substantial factor (the figure
  shows multi-x gaps between the cheapest and dearest markets);
* prices fluctuate within each market (non-trivial coefficient of
  variation) — the volatility the multi-region strategy exploits.
"""

from conftest import run_once

from repro.experiments.price_diversity import FIGURE2_TYPES, run_price_diversity


def test_fig2_price_diversity(benchmark):
    result = run_once(benchmark, run_price_diversity, days=30, seed=0)
    print()
    print(result.render())

    for itype in FIGURE2_TYPES:
        stats = result.stats[itype]
        expected_markets = 24 if itype == "p3.2xlarge" else 36
        assert stats["markets"] == expected_markets
        assert stats["spread_ratio"] > 1.5, f"{itype}: too little regional spread"
        assert 0.01 < stats["mean_cv"] < 0.5, f"{itype}: implausible fluctuation"

    # p3 is excluded from four regions (the paper's availability note).
    p3_regions = {trace.region for trace in result.traces_for("p3.2xlarge")}
    assert "ca-central-1" not in p3_regions

    # Traces are hourly over the window, per AZ.
    trace = result.traces_for("m5.2xlarge")[0]
    assert len(trace.prices) == 30 * 24
