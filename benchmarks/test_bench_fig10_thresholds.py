"""Figure 10 + Tables 2-3 bench: threshold-based allocation.

Shape claims from Section 5.2.4:
* Table 3 — the region set Algorithm 1 selects per threshold matches
  the paper exactly on the threshold-study collection date;
* thresholds 5 and 6 save versus on-demand at every duration (paper:
  up to 65 %);
* threshold 4 (price-only) crosses above on-demand at 20 h (paper: up
  to +36 %), the paper's headline warning against chasing price;
* savings shrink as duration grows for every threshold.
"""

from conftest import run_once

from repro.experiments.thresholds import DURATIONS_HOURS, THRESHOLDS, run_threshold_study


def test_fig10_threshold_study(benchmark):
    result = run_once(benchmark, run_threshold_study, n_workloads=40, seed=3)
    print()
    print(result.render())

    assert result.table3_matches(), (
        f"selected {result.selected_regions} != paper Table 3"
    )

    grid = result.normalized_cost

    # Thresholds 5 and 6 save at every duration.
    for threshold in (5, 6):
        for duration in DURATIONS_HOURS:
            assert grid[(threshold, duration)] < 1.0, (threshold, duration)

    # Threshold 4 saves at short durations but loses to on-demand at
    # 20 h — the paper's crossover.
    assert grid[(4, 5)] < 1.0
    assert grid[(4, 20)] > 1.0

    # Savings shrink with duration for every threshold.
    for threshold in THRESHOLDS:
        costs = [grid[(threshold, duration)] for duration in DURATIONS_HOURS]
        assert costs[0] < costs[-1], f"threshold {threshold}: no duration penalty"

    # Best savings are substantial (paper: up to 65 %).
    best = min(grid.values())
    assert best < 0.55, f"best normalized cost {best:.2f} should be a deep saving"
