"""Fleet-scale bench: 100k workload lifecycles across 100 tenants.

One simulation drives :data:`N_LIFECYCLES` single-segment workloads
through the full multi-tenant control plane — fair-share admission
over :data:`N_TENANTS` tenants with per-tenant quotas, a sharded
:class:`~repro.core.fleet.state.FleetStateStore`, and batched
Algorithm-1 placement.  The committed baseline records sim-events/sec
and peak RSS; ``check_regression.py`` holds both inside tolerance
bands and enforces two absolute floors:

* ``floor_events_per_second`` — the control plane must keep simulating
  at least this fast at fleet scale;
* ``floor_lifecycles_per_round`` — batching efficiency: admitted
  lifecycles per Algorithm-1 scoring round.  If batching regresses to
  per-workload placement this collapses to ~1 and the gate fails.

The batch audit asserts the batched-placement contract directly from
the decision stream: every admission rides an ``initial`` decision
whose ``batch_size`` sums to the total admitted count — one
region-scoring pass per round, no matter how many tenants' workloads
rode it.  The bench also caps the decision log (satellite of the same
PR) so ``decisions_dropped`` is exercised at scale, and trims the
telemetry bus as it goes — the audit folds events incrementally, so
peak RSS measures the control plane, not the event archive.

``SPOTVERSE_FLEET_SCALE`` scales the lifecycle count down for CI
smoke runs (the tenant count never drops below 100; per-tenant load
shrinks instead).
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.tenancy import MultiTenantController, TenantSpec
from repro.obs.events import EventType
from repro.workloads.base import synthetic_workload

SEED = 11
N_TENANTS = 100
N_LIFECYCLES = int(os.environ.get("SPOTVERSE_FLEET_SCALE", "100000"))
N_SHARDS = 16
QUOTA = 4  # per-tenant concurrent lifecycles -> up to 400 in flight
ADMIT_INTERVAL = 300.0  # coalesce freed quota into 5-sim-minute rounds
DECISION_CAP = 512
BUS_TRIM_THRESHOLD = 50_000


def run_fleet_scale(extra: dict) -> int:
    """One sharded multi-tenant sim; returns completed lifecycles."""
    config = SpotVerseConfig(instance_type="m5.xlarge")
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    monitor = Monitor(
        provider, [config.instance_type], collect_interval=config.collect_interval
    )
    policy = SpotVerseOptimizer(monitor, config)
    controller = MultiTenantController(
        provider,
        policy,
        config,
        monitor=monitor,
        n_shards=N_SHARDS,
        admit_interval=ADMIT_INTERVAL,
    )
    decisions = provider.telemetry.decisions
    decisions.cap(DECISION_CAP)

    # Incremental batch audit + bus trim.  The audit folds every
    # initial-placement decision as it is emitted, then the bus is
    # cleared whenever it grows past the threshold so the archive never
    # dominates peak RSS (the flight-recorder trim_bus pattern).
    audit = {"rounds": 0, "batched": 0, "max_batch": 0, "times": set()}
    bus = provider.telemetry.bus

    def observe(event) -> None:
        if event.type is EventType.DECISION_EVALUATED:
            payload = event.attrs.get("decision", {})
            if payload.get("kind") == "initial":
                batch = payload.get(
                    "batch_size", len(payload.get("workload_ids", ()))
                )
                audit["rounds"] += 1
                audit["batched"] += batch
                audit["max_batch"] = max(audit["max_batch"], batch)
                audit["times"].add(event.time)
        if len(bus) > BUS_TRIM_THRESHOLD:
            bus.clear()

    bus.subscribe(observe)

    for index in range(N_TENANTS):
        controller.register_tenant(
            TenantSpec(
                tenant_id=f"tenant-{index:03d}",
                weight=float(1 + index % 5),
                max_in_flight=QUOTA,
            )
        )
    for index in range(N_LIFECYCLES):
        tenant_id = f"tenant-{index % N_TENANTS:03d}"
        assert controller.submit(
            tenant_id,
            synthetic_workload(f"wl-{index:06d}", duration_hours=0.25, n_segments=1),
        )
    result = controller.wait(max_hours=4000.0)

    done = sum(1 for record in result.records if record.completed_at is not None)
    usage = controller.usage()
    extra["lifecycles"] = done
    extra["tenants"] = len(usage)
    extra["placement_rounds"] = audit["rounds"]
    extra["admitted_via_batches"] = audit["batched"]
    extra["lifecycles_per_round"] = (
        round(done / audit["rounds"], 2) if audit["rounds"] else 0.0
    )
    extra["max_batch_size"] = audit["max_batch"]
    extra["admit_interval"] = ADMIT_INTERVAL
    extra["one_pass_per_tick"] = len(audit["times"]) == audit["rounds"]
    extra["decisions_dropped"] = decisions.decisions_dropped
    extra["n_shards"] = N_SHARDS
    provider.shutdown()

    # The batched-placement contract, asserted not eyeballed:
    assert done == N_LIFECYCLES, f"only {done}/{N_LIFECYCLES} lifecycles completed"
    assert audit["batched"] == N_LIFECYCLES, (
        f"batch audit: {audit['batched']} admitted via initial decisions, "
        f"expected {N_LIFECYCLES}"
    )
    assert extra["one_pass_per_tick"], (
        "multiple initial region-scoring passes at one sim time "
        f"({audit['rounds']} rounds over {len(audit['times'])} distinct ticks)"
    )
    assert all(row["in_flight"] <= QUOTA for row in usage.values())
    if N_LIFECYCLES >= 10_000:
        assert decisions.decisions_dropped > 0, (
            "decision-log ring cap never engaged at fleet scale"
        )
    return done


def test_fleet_scale(benchmark):
    extra = {
        # Absolute floors enforced by check_regression.py on top of the
        # relative bands (conservative: ~1/4 of observed on the dev
        # box, so slower CI runners pass while order-of-magnitude
        # regressions fail).
        "floor_events_per_second": 4000.0,
        "floor_lifecycles_per_round": 20.0,
    }
    done = run_once(benchmark, run_fleet_scale, extra, extra=extra)
    assert done == N_LIFECYCLES
