"""Profiler-overhead bench: instrumented vs. plain fig3 scenario.

Runs the motivation experiment with the same seed with no engine
tracer (the production fast path) and under ``run_once``, which forces
every engine to trace so the hot-path profile can be attributed.  The
ratio of the two wall times is committed as ``profiler_overhead_x``
and guarded by ``check_regression.py``: instrumentation that starts
costing materially more than the committed overhead fails CI even when
absolute wall time stays inside the generous noise band.

Each leg is the **best of two** timed runs after a shared untimed
warm-up — a single-shot ratio on a busy 1-core runner can swing 2x
from scheduler noise and allocator state left by earlier benchmarks,
which is exactly the false-positive the guardrail must not produce.

The two modes must also produce identical experiment deltas —
profiling is read-only and must never perturb virtual time, RNG
streams, or event order.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.experiments.motivation import run_motivation_experiment

N_WORKLOADS = 42
SEED = 7
TIMED_RUNS = 2

#: Hard ceiling on instrumented/plain wall ratio.  Per-event tracing
#: costs two ``perf_counter`` calls and one record append; anything
#: past this means the instrumentation grew a hot-path regression.
MAX_OVERHEAD_X = 1.5


def _best_of(n):
    """Run the experiment *n* times; return (best wall, last result)."""
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = run_motivation_experiment(n_workloads=N_WORKLOADS, seed=SEED)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_profiler_overhead(benchmark):
    run_motivation_experiment(n_workloads=N_WORKLOADS, seed=SEED)  # warm-up
    plain_wall, plain = _best_of(TIMED_RUNS)

    extra = {"plain_wall_seconds": round(plain_wall, 4)}

    def instrumented_run():
        wall, result = _best_of(TIMED_RUNS)
        # Filled mid-run so run_once folds these into the baseline.
        extra["instrumented_wall_seconds"] = round(wall, 4)
        extra["profiler_overhead_x"] = (
            round(wall / plain_wall, 2) if plain_wall > 0 else 0.0
        )
        return result

    instrumented = run_once(benchmark, instrumented_run, extra=extra)

    assert instrumented.deltas == plain.deltas, (
        "tracing perturbed the experiment: instrumented and plain runs of "
        "the same seed disagree"
    )
    assert extra["profiler_overhead_x"] <= MAX_OVERHEAD_X, (
        f"engine tracing costs {extra['profiler_overhead_x']:.2f}x the plain "
        f"run (allowed {MAX_OVERHEAD_X:g}x)"
    )
