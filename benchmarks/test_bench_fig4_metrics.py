"""Figure 4 bench: Interruption Frequency and Spot Placement Score.

Shape claims:
* 4a — the m5.2xlarge heatmap shows clear regional separation: the
  stable tier lives in the <5 % band, the cheap tier above it;
* 4b — six-month average Stability Scores sit between 1 and 3 and vary
  over time;
* 4c — c5/m5 placement scores vary across regions while p3's are
  consistent (the paper's explicit contrast).
"""

import numpy as np
from conftest import run_once

from repro.experiments.metrics_analysis import FIGURE4_TYPES, run_metrics_analysis


def test_fig4_metrics(benchmark):
    result = run_once(benchmark, run_metrics_analysis, days=180, seed=0)
    print()
    print(result.render())

    bands = result.heatmap_band_counts()
    # Stable-tier regions live in the lightest band...
    for region in ("us-west-1", "ap-northeast-3", "eu-west-1"):
        assert bands[region]["<5%"] > 150, f"{region} should be mostly <5%"
    # ...while the cheap tier is mostly in the mid/dark bands.
    for region in ("us-east-1", "us-east-2", "us-west-2"):
        assert bands[region]["<5%"] < 20, f"{region} should rarely dip under 5%"
    # The darkest band (>20%) appears in the heatmap, as in the paper.
    assert bands["ap-southeast-2"][">20%"] > 90

    for itype in FIGURE4_TYPES:
        stability = result.stability_series[itype]
        assert len(stability) == 180
        assert all(1.0 <= value <= 3.0 for value in stability)
        placement = result.placement_series[itype]
        assert all(1.0 <= value <= 10.0 for value in placement)

    # The paper's 4c contrast: p3's placement score is consistent
    # across regions; c5/m5 fluctuate regionally.
    assert result.placement_spread["p3.2xlarge"] < 0.5
    assert result.placement_spread["c5.2xlarge"] > 1.0
    assert result.placement_spread["m5.2xlarge"] > 1.0

    # Scores drift over time (the trajectories are not flat lines).
    for itype in ("c5.2xlarge", "m5.2xlarge"):
        assert np.std(result.placement_series[itype]) > 0.005
