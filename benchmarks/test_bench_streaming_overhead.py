"""Streaming-export overhead bench: live plane on vs. off for fig3.

Runs the motivation experiment twice with the same seed: once plain
(no live observability) and once with the full live plane attached —
segmented JSONL export, windowed aggregation, SLO scoring, flight
recorder, and bus trimming.  The wall-time ratio is committed as
``streaming_overhead_x`` and guarded by ``check_regression.py``, so a
hot-path regression in the exporter fails CI even inside the generous
absolute-wall noise band.

Each leg is the **best of two** timed runs after a shared untimed
warm-up, for the same reason as the profiler bench: a single-shot
ratio on a busy 1-core runner swings enough to false-positive.

Both legs run serial (``jobs=1``) so each arm's
:class:`~repro.obs.live.LivePlane` survives into the result, letting
the bench assert the memory contract directly: with ``trim_bus`` on,
the bus never holds more than one trim interval of events, so
telemetry memory is O(window), not O(run).  The two modes must also
produce identical experiment deltas — streaming observation is
read-only and must never perturb virtual time, RNG streams, or event
order.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.experiments.motivation import run_motivation_experiment

N_WORKLOADS = 42
SEED = 7
TIMED_RUNS = 2

#: Hard ceiling on streaming/plain wall ratio.  Per-event cost is one
#: JSON serialisation plus a few dict updates; anything past this
#: means the live plane grew a hot-path regression.  The ceiling is a
#: *ratio*, so it moved when the ISSUE-8 engine rework shrank the
#: denominator ~2.4x: the exporter's absolute per-run cost is
#: unchanged (~0.3s here), but it is now a larger share of a much
#: faster plain run (~1.8x measured).  Serialising the exporter's
#: payloads lazily is the obvious next win if this band gets tight.
MAX_OVERHEAD_X = 2.5


def _best_of(n, **kwargs):
    """Run the experiment *n* times; return (best wall, last result)."""
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = run_motivation_experiment(
            n_workloads=N_WORKLOADS, seed=SEED, jobs=1, **kwargs
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_streaming_overhead(benchmark, tmp_path):
    run_motivation_experiment(n_workloads=N_WORKLOADS, seed=SEED, jobs=1)  # warm-up
    plain_wall, plain = _best_of(TIMED_RUNS)

    extra = {"plain_wall_seconds": round(plain_wall, 4)}

    def streaming_run():
        wall, result = _best_of(
            TIMED_RUNS,
            live_dir=str(tmp_path / "stream"),
            flight_dir=str(tmp_path / "blackbox"),
            trim_bus=True,
        )
        # Filled mid-run so run_once folds these into the baseline.
        extra["streaming_wall_seconds"] = round(wall, 4)
        extra["streaming_overhead_x"] = (
            round(wall / plain_wall, 2) if plain_wall > 0 else 0.0
        )
        extra["peak_bus_events"] = max(
            arm.live_plane.peak_bus_events
            for arm in result.arms.values()
            if arm.live_plane is not None
        )
        return result

    streaming = run_once(benchmark, streaming_run, extra=extra)

    assert streaming.deltas == plain.deltas, (
        "live export perturbed the experiment: streaming and plain runs "
        "of the same seed disagree"
    )

    # The memory contract: with trimming on, the bus never held more
    # than one trim interval of events at a time, for every arm.  Short
    # arms (fewer events than one interval) legitimately never trim, so
    # trimming itself is asserted in aggregate.
    for name, arm in streaming.arms.items():
        plane = arm.live_plane
        assert plane is not None, f"arm {name} ran without its live plane"
        assert plane.peak_bus_events <= plane.trim_every, (
            f"arm {name} bus peaked at {plane.peak_bus_events} events "
            f"(trim interval {plane.trim_every})"
        )
    assert any(arm.live_plane.trims > 0 for arm in streaming.arms.values()), (
        "no arm ever trimmed its bus — the memory bound was never exercised"
    )

    assert extra["streaming_overhead_x"] <= MAX_OVERHEAD_X, (
        f"live export costs {extra['streaming_overhead_x']:.2f}x the plain "
        f"run (allowed {MAX_OVERHEAD_X:g}x)"
    )
