"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once (rounds=1) — these
are *reproduction* benchmarks whose value is the rendered report and
the shape assertions, not statistical timing.

Each :func:`run_once` call also writes a machine-readable baseline,
``BENCH_<test name>.json``, holding the wall time, the simulation
throughput (fired engine events per wall second, via
:class:`~repro.sim.trace.EngineTracer`), and the process's peak RSS —
plus a ``PROFILE_<test name>.json`` hot-path artifact aggregating
every engine's trace into the attributed profile
``spotverse obs profile --from-profile`` renders.  CI uploads these as
artifacts so perf regressions show up as diffable numbers, not vibes.
The output directory defaults to ``benchmarks/_baselines`` and can be
pointed elsewhere with ``SPOTVERSE_BENCH_DIR``.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path
from typing import List

from repro.obs.profiler import HotPathProfile
from repro.sim.engine import SimulationEngine
from repro.sim.trace import EngineTracer


def _baseline_dir() -> Path:
    return Path(
        os.environ.get("SPOTVERSE_BENCH_DIR", str(Path(__file__).parent / "_baselines"))
    )


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":  # pragma: no cover - linux CI
        return peak
    return peak * 1024


def run_once(benchmark, func, *args, extra=None, **kwargs):
    """Run *func* once under pytest-benchmark and return its result.

    Every :class:`SimulationEngine` the experiment constructs is forced
    to trace so the baseline can report total fired events and
    events/sec; tracing never feeds back into virtual time, so results
    are identical to an untraced run.

    *extra* is an optional mapping merged into the baseline payload —
    benchmarks use it for derived numbers (e.g. measured speedups).
    Because it is read *after* the run, the benchmarked function may
    fill a dict passed here as it executes.
    """
    tracers: List[EngineTracer] = []
    original_init = SimulationEngine.__init__

    def traced_init(self, seed=0, trace=False, tracer=None):
        original_init(self, seed=seed, trace=True, tracer=tracer)
        tracers.append(self.tracer)

    SimulationEngine.__init__ = traced_init
    start = time.perf_counter()
    try:
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
    finally:
        SimulationEngine.__init__ = original_init
    wall = time.perf_counter() - start
    _write_baseline(benchmark.name, wall, tracers, extra=extra)
    return result


def _write_baseline(
    name: str, wall: float, tracers: List[EngineTracer], extra=None
) -> Path:
    events = sum(len(tracer.records) for tracer in tracers if tracer is not None)
    payload = {
        "benchmark": name,
        "wall_seconds": round(wall, 4),
        "engines": len(tracers),
        "sim_events": events,
        "sim_events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
        "peak_rss_bytes": _peak_rss_bytes(),
    }
    if extra:
        payload.update(extra)
    directory = _baseline_dir()
    directory.mkdir(parents=True, exist_ok=True)
    profile = HotPathProfile.from_tracers(tracers)
    if profile.fired_events:
        (directory / f"PROFILE_{name}.json").write_text(
            json.dumps(profile.to_payload(), indent=2, sort_keys=True) + "\n"
        )
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
