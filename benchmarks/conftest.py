"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once (rounds=1) — these
are *reproduction* benchmarks whose value is the rendered report and
the shape assertions, not statistical timing.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
