"""Figure 3 bench: motivational single vs naive multi-region experiment.

Shape claims from Section 2.2: for both workload categories, the naive
multi-region spread reduces interruptions, completion time, and cost
relative to the single cheapest region (paper: -13.2 % / -30.5 % /
-5.7 % for standard; -41.6 % / -6.6 % / -9.4 % for checkpoint).
Exact magnitudes differ on our substrate; directions must hold, with
cost allowed a small tolerance for the checkpoint workload where the
paper's own effect is under 10 %.
"""

from conftest import run_once

from repro.experiments.motivation import run_motivation_experiment


def test_fig3_motivation(benchmark):
    result = run_once(benchmark, run_motivation_experiment, n_workloads=42, seed=7)
    print()
    print(result.render())

    standard = result.deltas["standard"]
    assert standard["int_delta_pct"] < -10, "multi-region must cut standard interruptions"
    assert standard["time_delta_pct"] < -10, "multi-region must cut standard completion time"
    assert standard["cost_delta_pct"] < 0, "multi-region must cut standard cost"

    checkpoint = result.deltas["checkpoint"]
    assert checkpoint["int_delta_pct"] < -10, "multi-region must cut checkpoint interruptions"
    assert checkpoint["time_delta_pct"] < 0, "multi-region must cut checkpoint completion time"
    assert checkpoint["cost_delta_pct"] < 5, "checkpoint cost must not regress materially"

    for arm in result.arms.values():
        assert arm.fleet.all_complete, f"arm {arm.name} left workloads unfinished"
