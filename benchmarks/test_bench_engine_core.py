"""Benchmark: pure event-engine scheduling throughput.

Isolates the scheduler from the control plane so `check_regression.py`
can watch the hot path itself, not just fig3's end-to-end number.  Two
measurements:

* **Raw queue drive** — an identical deterministic push/pop/cancel mix
  (dense same-timestamp ties, re-entrant-style pushes behind the active
  bucket) runs against the binary-heap reference ``EventQueue`` and the
  calendar-queue ``BucketedEventQueue``.  The fire orders must match
  element for element (the determinism contract), and the measured
  ``scheduler_speedup_x`` (wheel ops/sec over heap ops/sec) is written
  into the committed baseline, where the regression check holds it.
* **Engine storm** — a :class:`SimulationEngine` run mixing periodic
  tasks, same-timestamp bursts, cascading callbacks, and cancellations;
  ``run_once`` traces it, so the baseline carries the engine-level
  ``sim_events_per_second`` for the scheduler without any cloud
  services in the loop.

Schedules come from a little inline LCG, not :mod:`random`, so the op
mix is identical on every interpreter and platform.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.sim.engine import SimulationEngine
from repro.sim.events import BucketedEventQueue, EventQueue

#: Operations per raw-queue drive.  Large enough that queue mechanics
#: dominate the wall time; small enough to stay sub-second per queue.
QUEUE_OPS = 120_000

#: Drives per queue; the fastest repeat is scored, which filters the
#: allocator/cache warm-up noise that dwarfs real scheduler deltas on
#: sub-second runs.
QUEUE_REPEATS = 3

#: The wheel must at least hold its own against the reference heap on
#: this mix (sub-1.0 would mean the default scheduler is a pessimisation);
#: the committed baseline's measured value is band-checked by
#: ``check_regression.py`` on top of this static floor.
MIN_SPEEDUP = 0.95


def _lcg(state: int) -> int:
    return (state * 1103515245 + 12345) % (1 << 31)


def _drive_queue(queue) -> list:
    """Deterministic engine-style op mix; returns the fire order.

    Mirrors how :class:`SimulationEngine` actually uses a queue: the
    clock only advances to popped event times, and every push lands at
    ``now + delay`` with delays quantised to 2.5s steps (dense ties,
    including zero-delay re-entrant pushes into the tick being
    drained).  A slight push surplus keeps a standing backlog so heap
    pushes pay their ``O(log n)`` while wheel pushes stay O(1).
    """
    fired = []
    pending = []
    now = 0.0
    state = 20260808
    for op in range(QUEUE_OPS):
        state = _lcg(state)
        roll = state % 100
        if roll < 52 or not queue:
            state = _lcg(state)
            delay = float(state % 80) * 2.5  # 0..197.5s ahead of now
            pending.append(queue.push(now + delay, _lcg, label=str(op)))
        elif roll < 62 and pending:
            state = _lcg(state)
            pending[state % len(pending)].cancel()
            if len(pending) > 4096:
                del pending[:2048]
        else:
            event = queue.pop()
            if event is not None:
                now = event.time
                fired.append((event.time, event.seq))
    while queue:
        event = queue.pop()
        if event is not None:
            fired.append((event.time, event.seq))
    return fired


#: Depth of each same-timestamp cascade burst: a burst fires
#: ``2^(CASCADE_DEPTH+1) - 1`` events, all on one tick.
CASCADE_DEPTH = 7


def _storm(engine: SimulationEngine, horizon: float) -> None:
    """Periodic + cascading + cancel-heavy load on one engine."""

    def cascade(depth: int):
        def fire() -> None:
            now = engine.now
            if depth > 0:
                # Same-timestamp burst: three children on this tick,
                # one of which is cancelled before it can run.
                engine.call_at(now, cascade(depth - 1), label="cascade")
                doomed = engine.call_at(now, cascade(0), label="doomed")
                engine.call_at(now, cascade(depth - 1), label="cascade")
                doomed.cancel()
            if depth == CASCADE_DEPTH and now + 13.0 <= horizon:
                # Only the burst root re-arms, so the storm is a steady
                # train of bursts, not exponential growth.
                engine.call_in(13.0, cascade(CASCADE_DEPTH), label="reseed")

        return fire

    for interval in (3.0, 5.0, 7.0, 11.0, 17.0, 23.0):
        engine.every(interval, lambda: None, label=f"periodic:{interval:g}")
    engine.call_at(1.0, cascade(CASCADE_DEPTH), label="seed")
    engine.run_until(horizon)


def _best_drive(queue_factory):
    """Fastest of :data:`QUEUE_REPEATS` drives and its fire order."""
    best_wall, fire_order = float("inf"), None
    for _ in range(QUEUE_REPEATS):
        queue = queue_factory()
        start = time.perf_counter()
        fired = _drive_queue(queue)
        wall = time.perf_counter() - start
        if fire_order is None:
            fire_order = fired
        else:
            assert fired == fire_order  # repeats are deterministic
        best_wall = min(best_wall, wall)
    return best_wall, fire_order


def test_engine_core(benchmark):
    heap_wall, heap_fired = _best_drive(EventQueue)
    wheel_wall, wheel_fired = _best_drive(BucketedEventQueue)

    # The determinism contract: identical (time, seq) fire order.
    assert heap_fired == wheel_fired

    extra = {
        "heap_ops_per_second": round(QUEUE_OPS / heap_wall, 1),
        "wheel_ops_per_second": round(QUEUE_OPS / wheel_wall, 1),
        "scheduler_speedup_x": round(heap_wall / wheel_wall, 2),
    }

    def engine_storm():
        engine = SimulationEngine(seed=3)
        _storm(engine, horizon=600.0)
        return engine

    engine = run_once(benchmark, engine_storm, extra=extra)
    assert engine.fired_events > 10_000  # the storm actually stormed

    assert extra["scheduler_speedup_x"] >= MIN_SPEEDUP, (
        f"wheel scheduler slower than the heap reference on the core mix: "
        f"{extra['scheduler_speedup_x']:.2f}x (heap {heap_wall:.3f}s, "
        f"wheel {wheel_wall:.3f}s)"
    )
