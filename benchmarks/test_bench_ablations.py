"""Ablation benches for the design choices DESIGN.md calls out.

* Migration randomness: random-among-top-R vs always-cheapest
  (herding) — both must complete; the report quantifies the spread.
* On-demand fallback: an unsatisfiable threshold routes the whole
  fleet to on-demand, with zero interruptions; disabling the fallback
  raises :class:`~repro.errors.NoFeasibleRegionError`.
* Checkpoint granularity: finer segmentation monotonically reduces
  completion time and cost under a flaky single region.
"""

import pytest
from conftest import run_once

from repro.experiments.ablations import (
    run_checkpoint_backend_ablation,
    run_checkpoint_granularity,
    run_deadline_policy_ablation,
    run_fallback_ablation,
    run_migration_ablation,
    run_predictive_policy_ablation,
)


def test_ablation_migration_randomness(benchmark):
    result = run_once(benchmark, run_migration_ablation, n_workloads=40, seed=7)
    print()
    print(result.render())
    random_arm = result.arms["random-migration"].fleet
    cheapest_arm = result.arms["cheapest-migration"].fleet
    assert random_arm.all_complete and cheapest_arm.all_complete
    # Herding into the single cheapest region must not *beat* the
    # random spread on interruptions (correlated bursts hit herds).
    assert random_arm.total_interruptions <= cheapest_arm.total_interruptions + 5
    # Cheapest migration concentrates attempts: its busiest migration
    # target absorbs at least as many attempts as random's busiest.
    def busiest_non_start(fleet):
        regions = {
            region: count
            for region, count in fleet.regions_used().items()
            if region != "ca-central-1"
        }
        return max(regions.values()) if regions else 0

    assert busiest_non_start(cheapest_arm) >= busiest_non_start(random_arm)


def test_ablation_on_demand_fallback(benchmark):
    result = run_once(benchmark, run_fallback_ablation, n_workloads=10, seed=7)
    print()
    print(result.render())
    fleet = result.with_fallback.fleet
    assert fleet.all_complete
    assert fleet.on_demand_share() == 1.0
    assert fleet.total_interruptions == 0


def test_ablation_checkpoint_backend(benchmark):
    result = run_once(benchmark, run_checkpoint_backend_ablation, n_workloads=20, seed=7)
    print()
    print(result.render())
    s3 = result.arms["s3"].fleet
    efs = result.arms["efs"].fleet
    # Same market randomness -> identical schedule outcomes; only the
    # storage cost structure differs.
    assert s3.total_interruptions == efs.total_interruptions
    assert s3.makespan_hours == pytest.approx(efs.makespan_hours, rel=0.01)
    # EFS artifacts landed on regional file systems, not in S3.
    assert result.arms["efs"].provider.efs.file_systems()
    efs_checkpoint_keys = result.arms["efs"].provider.s3.list_objects(
        "spotverse-results", prefix="checkpoints/"
    )
    assert efs_checkpoint_keys == []
    # Cost difference is bounded by the storage-price gap (small here).
    assert abs(s3.total_cost - efs.total_cost) < 0.15


def test_ablation_predictive_policy(benchmark):
    result = run_once(benchmark, run_predictive_policy_ablation, n_workloads=40, seed=7)
    print()
    print(result.render())
    standard = result.arms["spotverse"].fleet
    predictive = result.arms["spotverse-predictive"].fleet
    assert standard.all_complete and predictive.all_complete
    # Prediction must not do materially worse than Algorithm 1 on any
    # headline metric (it usually does slightly better).
    assert predictive.total_interruptions <= standard.total_interruptions + 5
    assert predictive.total_cost <= standard.total_cost * 1.1
    assert predictive.makespan_hours <= standard.makespan_hours * 1.15


def test_ablation_deadline_policy(benchmark):
    result = run_once(benchmark, run_deadline_policy_ablation, n_workloads=40, seed=7)
    print()
    print(result.render())
    plain = result.arms["spotverse"].fleet
    deadline = result.arms["spotverse-deadline"].fleet
    assert plain.all_complete and deadline.all_complete
    # Escalation buys deadline compliance and a shorter tail...
    assert result.tail_violations("spotverse-deadline") <= result.tail_violations(
        "spotverse"
    )
    assert deadline.makespan_hours < plain.makespan_hours
    # ...paid for with some on-demand capacity.
    assert deadline.on_demand_share() > 0
    assert deadline.total_cost < 1.35 * plain.total_cost


def test_ablation_checkpoint_granularity(benchmark):
    result = run_once(
        benchmark, run_checkpoint_granularity, segment_counts=[1, 5, 20, 80],
        n_workloads=20, seed=7,
    )
    print()
    print(result.render())
    costs = {segments: arm.fleet.total_cost for segments, arm in result.arms.items()}
    times = {segments: arm.fleet.makespan_hours for segments, arm in result.arms.items()}
    # One segment == restart semantics: strictly worse than 20.
    assert costs[1] > costs[20]
    assert times[1] > times[20]
    # Diminishing returns, but no regression at 80 segments.
    assert costs[80] <= costs[5]
