"""Figure 9 bench: the initial workload distribution strategy.

Shape claims from Section 5.2.3: spreading the fleet over the top-R
recommended regions at launch (versus starting everything in one
region and migrating only on interruption) significantly reduces
interruptions for both workload kinds (paper: -32 % for standard) and
reduces completion time and cost (paper: up to -12 % and -11 %).
"""

from conftest import run_once

from repro.experiments.initial_distribution import run_initial_distribution_experiment


def test_fig9_initial_distribution(benchmark):
    result = run_once(
        benchmark, run_initial_distribution_experiment, n_workloads=40, seed=7
    )
    print()
    print(result.render())

    for kind in ("standard", "checkpoint"):
        deltas = result.deltas[kind]
        assert deltas["int_delta_pct"] < -20, f"{kind}: spread must cut interruptions"
        assert deltas["time_delta_pct"] < 5, f"{kind}: spread must not slow completion"
        assert deltas["cost_delta_pct"] < 5, f"{kind}: spread must not raise cost"

    standard = result.deltas["standard"]
    assert standard["cost_delta_pct"] < 0, "standard workload must get cheaper"

    # The distributed arms actually used several launch regions.
    distributed = result.arms["standard-distributed"].fleet
    launch_regions = {record.regions[0] for record in distributed.records}
    assert len(launch_regions) == 4, "Algorithm 1 spreads over the top-4 regions"

    concentrated = result.arms["standard-concentrated"].fleet
    assert {record.regions[0] for record in concentrated.records} == {"ca-central-1"}
