"""Table 4 bench: SpotVerse vs SkyPilot.

Shape claims from Section 5.2.5: SpotVerse has far fewer interruptions
(paper: 42 vs 129), substantially lower cost (paper: -51 %) and much
shorter completion (paper: -60 %) than the price-chasing SkyPilot
broker, whose numbers land close to the single-region baseline.
"""

from conftest import run_once

from repro.experiments.skypilot_comparison import run_skypilot_comparison


def test_table4_skypilot_comparison(benchmark):
    result = run_once(benchmark, run_skypilot_comparison, n_workloads=40, seed=7)
    print()
    print(result.render())

    spotverse = result.spotverse
    skypilot = result.skypilot

    assert spotverse.all_complete and skypilot.all_complete

    # Interruptions: SkyPilot suffers several times more.
    assert skypilot.total_interruptions > 2 * spotverse.total_interruptions

    # Cost: SpotVerse at least 25 % cheaper (paper: 51 %).
    assert result.cost_reduction_pct() > 25

    # Completion: SpotVerse substantially faster (paper: 60 %).
    assert result.time_reduction_pct() > 25

    # SkyPilot's price-only reasoning keeps it in the cheapest (flaky)
    # market — the paper's explanation for its disruption count.
    skypilot_regions = skypilot.regions_used()
    assert max(skypilot_regions, key=skypilot_regions.get) == "ca-central-1"
