"""CI perf guardrail: compare fresh benchmark baselines to committed ones.

Each benchmark run writes a ``BENCH_<name>.json`` (see ``conftest.py``)
with wall time, simulation throughput, and peak RSS.  This script
compares a directory of freshly produced baselines against the
committed ones under ``benchmarks/_baselines/`` and fails (exit 1)
when a shared benchmark regressed beyond the tolerance band:

* ``wall_seconds`` may grow by at most ``--wall-tol`` (default 1.6x) —
  CI runners are noisy, so the band is generous; it catches order-of-
  magnitude regressions, not percent-level jitter.
* ``sim_events_per_second`` may shrink to no less than ``1/tput-tol``
  of the committed value (benchmarks with zero recorded events are
  skipped — nothing to compare).
* ``peak_rss_bytes`` may grow by at most ``--rss-tol`` (default 2.0x).

Two derived metrics are enforced when both sides carry them:

* ``speedup_vs_serial`` (the parallel-sweep benchmark) is hardware-
  aware.  When baseline *and* fresh runs had at least ``jobs`` CPUs,
  the fresh speedup may shrink to no less than ``1/tput-tol`` of the
  committed one.  When either side ran on fewer cores the harness
  degrades to serial execution, so the check only demands the fresh
  "speedup" stay above :data:`SPEEDUP_FLOOR` — a 1-core runner
  reporting ~0.35x means pool overhead is being paid for time-sliced
  arms, which is exactly the mis-fire this band catches.
* ``profiler_overhead_x`` (instrumented vs. uninstrumented wall time)
  and ``streaming_overhead_x`` (live-export vs. plain wall time) may
  each grow by at most ``--wall-tol``.
* ``scheduler_speedup_x`` (the engine-core benchmark's wheel-vs-heap
  ratio) may shrink to no less than ``1/tput-tol`` of the committed
  value — the calendar-queue scheduler must stay ahead of the heap
  reference it replaced as the default.
* ``fanout_speedup_x`` (the DAG fan-out benchmark's serial-vs-DAG
  simulated-makespan ratio) may shrink to no less than ``1/tput-tol``
  of the committed value, and must always stay at or above
  :data:`FANOUT_FLOOR` — the DAG-aware placement acceptance criterion
  (independent steps fan out >= 3x faster than the serial runner) is
  deterministic simulated time, so no noise band applies.

A baseline may also carry an absolute ``floor_events_per_second``: the
fresh ``sim_events_per_second`` must then stay at or above
``floor / tput-tol`` regardless of how the relative band moves.  The
fig3 baseline uses this to lock in the ISSUE-8 hot-path rework (>= 3x
the pre-rework 10807 events/sec) so the gain cannot quietly erode
across future baseline regenerations.

Likewise ``floor_lifecycles_per_round`` (the fleet-scale benchmark):
admitted lifecycles per Algorithm-1 scoring round is deterministic
simulated-time accounting, so the fresh ``lifecycles_per_round`` must
meet the floor exactly — no noise band.  If batched placement regresses
to one region-scoring pass per workload the ratio collapses to ~1 and
the gate fails regardless of how fast the runner is.

Benchmarks present on only one side are reported but never fail the
check (new benchmarks land without a committed counterpart first).
Tolerances can also be set via ``SPOTVERSE_BENCH_WALL_TOL``,
``SPOTVERSE_BENCH_TPUT_TOL`` and ``SPOTVERSE_BENCH_RSS_TOL``.

Usage::

    python benchmarks/check_regression.py --fresh bench-baselines
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

DEFAULT_WALL_TOL = 1.6
DEFAULT_TPUT_TOL = 1.6
DEFAULT_RSS_TOL = 2.0

#: Minimum ``speedup_vs_serial`` on hosts where the parallel harness
#: degrades to the serial path (fewer cores than requested workers):
#: near 1.0x with slack for timer noise, never pool-thrash territory.
SPEEDUP_FLOOR = 0.65

#: Absolute floor on ``fanout_speedup_x``: simulated makespans are
#: deterministic, so the DAG fan-out must beat the serial JobRunner by
#: at least the acceptance criterion on any hardware.
FANOUT_FLOOR = 3.0


@dataclass(frozen=True)
class Violation:
    """One tolerance-band breach for one benchmark."""

    benchmark: str
    metric: str
    baseline: float
    fresh: float
    limit: str

    def render(self) -> str:
        """Human-readable one-liner for the CI log."""
        return (
            f"{self.benchmark}: {self.metric} {self.baseline:g} -> "
            f"{self.fresh:g} (allowed {self.limit})"
        )


def compare_payloads(
    baseline: Dict,
    fresh: Dict,
    wall_tol: float = DEFAULT_WALL_TOL,
    tput_tol: float = DEFAULT_TPUT_TOL,
    rss_tol: float = DEFAULT_RSS_TOL,
) -> List[Violation]:
    """Return every tolerance breach between one baseline/fresh pair."""
    name = fresh.get("benchmark") or baseline.get("benchmark", "?")
    violations: List[Violation] = []

    base_wall = float(baseline.get("wall_seconds", 0.0))
    fresh_wall = float(fresh.get("wall_seconds", 0.0))
    if base_wall > 0 and fresh_wall > base_wall * wall_tol:
        violations.append(
            Violation(name, "wall_seconds", base_wall, fresh_wall, f"<= {wall_tol:g}x")
        )

    base_tput = float(baseline.get("sim_events_per_second", 0.0))
    fresh_tput = float(fresh.get("sim_events_per_second", 0.0))
    if base_tput > 0 and fresh_tput < base_tput / tput_tol:
        violations.append(
            Violation(
                name,
                "sim_events_per_second",
                base_tput,
                fresh_tput,
                f">= 1/{tput_tol:g}x",
            )
        )

    floor_tput = float(baseline.get("floor_events_per_second", 0.0))
    if floor_tput > 0 and fresh_tput < floor_tput / tput_tol:
        violations.append(
            Violation(
                name,
                "sim_events_per_second",
                floor_tput,
                fresh_tput,
                f">= floor/{tput_tol:g}x",
            )
        )

    floor_batch = float(baseline.get("floor_lifecycles_per_round", 0.0))
    fresh_batch = float(fresh.get("lifecycles_per_round", 0.0))
    if floor_batch > 0 and fresh_batch < floor_batch:
        violations.append(
            Violation(
                name,
                "lifecycles_per_round",
                floor_batch,
                fresh_batch,
                f">= {floor_batch:g} (absolute floor)",
            )
        )

    base_rss = float(baseline.get("peak_rss_bytes", 0.0))
    fresh_rss = float(fresh.get("peak_rss_bytes", 0.0))
    if base_rss > 0 and fresh_rss > base_rss * rss_tol:
        violations.append(
            Violation(name, "peak_rss_bytes", base_rss, fresh_rss, f"<= {rss_tol:g}x")
        )

    base_speedup = float(baseline.get("speedup_vs_serial", 0.0))
    fresh_speedup = float(fresh.get("speedup_vs_serial", 0.0))
    if base_speedup > 0 and fresh_speedup > 0:
        jobs = int(fresh.get("jobs", 0))
        base_parallel = jobs > 0 and int(baseline.get("cpu_count", 0)) >= jobs
        fresh_parallel = jobs > 0 and int(fresh.get("cpu_count", 0)) >= jobs
        if base_parallel and fresh_parallel:
            if fresh_speedup < base_speedup / tput_tol:
                violations.append(
                    Violation(
                        name,
                        "speedup_vs_serial",
                        base_speedup,
                        fresh_speedup,
                        f">= 1/{tput_tol:g}x",
                    )
                )
        elif fresh_speedup < SPEEDUP_FLOOR:
            violations.append(
                Violation(
                    name,
                    "speedup_vs_serial",
                    base_speedup,
                    fresh_speedup,
                    f">= {SPEEDUP_FLOOR:g} (serial fallback on low-core host)",
                )
            )

    base_sched = float(baseline.get("scheduler_speedup_x", 0.0))
    fresh_sched = float(fresh.get("scheduler_speedup_x", 0.0))
    if base_sched > 0 and fresh_sched > 0 and fresh_sched < base_sched / tput_tol:
        violations.append(
            Violation(
                name,
                "scheduler_speedup_x",
                base_sched,
                fresh_sched,
                f">= 1/{tput_tol:g}x",
            )
        )

    base_fanout = float(baseline.get("fanout_speedup_x", 0.0))
    fresh_fanout = float(fresh.get("fanout_speedup_x", 0.0))
    if base_fanout > 0 and fresh_fanout > 0:
        if fresh_fanout < base_fanout / tput_tol:
            violations.append(
                Violation(
                    name,
                    "fanout_speedup_x",
                    base_fanout,
                    fresh_fanout,
                    f">= 1/{tput_tol:g}x",
                )
            )
        if fresh_fanout < FANOUT_FLOOR:
            violations.append(
                Violation(
                    name,
                    "fanout_speedup_x",
                    base_fanout,
                    fresh_fanout,
                    f">= {FANOUT_FLOOR:g} (absolute floor)",
                )
            )

    for overhead_metric in ("profiler_overhead_x", "streaming_overhead_x"):
        base_overhead = float(baseline.get(overhead_metric, 0.0))
        fresh_overhead = float(fresh.get(overhead_metric, 0.0))
        if base_overhead > 0 and fresh_overhead > base_overhead * wall_tol:
            violations.append(
                Violation(
                    name,
                    overhead_metric,
                    base_overhead,
                    fresh_overhead,
                    f"<= {wall_tol:g}x",
                )
            )
    return violations


def _load_dir(directory: Path) -> Dict[str, Dict]:
    payloads: Dict[str, Dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        payloads[path.name] = json.loads(path.read_text())
    return payloads


def check_directories(
    baseline_dir: Path,
    fresh_dir: Path,
    wall_tol: float = DEFAULT_WALL_TOL,
    tput_tol: float = DEFAULT_TPUT_TOL,
    rss_tol: float = DEFAULT_RSS_TOL,
) -> List[Violation]:
    """Compare every baseline shared by the two directories."""
    baselines = _load_dir(baseline_dir)
    fresh = _load_dir(fresh_dir)
    shared = sorted(set(baselines) & set(fresh))
    for name in sorted(set(baselines) - set(fresh)):
        print(f"note: {name} has no fresh counterpart (benchmark not run)")
    for name in sorted(set(fresh) - set(baselines)):
        print(f"note: {name} has no committed baseline (new benchmark)")
    violations: List[Violation] = []
    for name in shared:
        violations.extend(
            compare_payloads(
                baselines[name],
                fresh[name],
                wall_tol=wall_tol,
                tput_tol=tput_tol,
                rss_tol=rss_tol,
            )
        )
    return violations


def _env_tol(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, type=Path,
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path(__file__).parent / "_baselines",
        help="directory of committed baselines (default: benchmarks/_baselines)",
    )
    parser.add_argument(
        "--wall-tol", type=float,
        default=_env_tol("SPOTVERSE_BENCH_WALL_TOL", DEFAULT_WALL_TOL),
    )
    parser.add_argument(
        "--tput-tol", type=float,
        default=_env_tol("SPOTVERSE_BENCH_TPUT_TOL", DEFAULT_TPUT_TOL),
    )
    parser.add_argument(
        "--rss-tol", type=float,
        default=_env_tol("SPOTVERSE_BENCH_RSS_TOL", DEFAULT_RSS_TOL),
    )
    args = parser.parse_args(argv)
    if not args.fresh.is_dir():
        print(f"error: fresh directory {args.fresh} does not exist")
        return 2
    if not args.baseline.is_dir():
        print(f"error: baseline directory {args.baseline} does not exist")
        return 2
    violations = check_directories(
        args.baseline, args.fresh,
        wall_tol=args.wall_tol, tput_tol=args.tput_tol, rss_tol=args.rss_tol,
    )
    if violations:
        print(f"{len(violations)} perf regression(s) beyond tolerance:")
        for violation in violations:
            print(f"  {violation.render()}")
        return 1
    print("benchmark baselines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
