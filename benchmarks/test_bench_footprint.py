"""Footprint-pressure bench: fleet size vs. a finite capacity pool.

Extension study on the capacity model: a fleet concentrated in one
60-slot pool degrades superlinearly as it grows (its own footprint
raises the reclaim hazard and exhausts fulfillment capacity), while
SpotVerse's multi-region spread stays flat — a mechanistic complement
to the paper's Figure 9.
"""

from conftest import run_once

from repro.experiments.footprint import POOL_CAPACITY, run_footprint_study


def test_footprint_study(benchmark):
    result = run_once(benchmark, run_footprint_study, fleet_sizes=(20, 50, 80), seed=7)
    print()
    print(result.render())

    concentrated = result.interruptions_per_workload(result.concentrated)
    # Pressure: the per-workload interruption rate grows with footprint.
    assert concentrated[80] > concentrated[20]

    # Oversubscription (80 > 60 slots) stretches the concentrated
    # fleet's completion well past the spread fleet's.
    conc_80 = result.concentrated[80].fleet
    spread_80 = result.distributed[80].fleet
    assert 80 > POOL_CAPACITY
    assert conc_80.makespan_hours > 1.3 * spread_80.makespan_hours

    # Everyone still completes (the sweep keeps retrying as slots free).
    for arm in list(result.concentrated.values()) + list(result.distributed.values()):
        assert arm.fleet.all_complete, arm.name
