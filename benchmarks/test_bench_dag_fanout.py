"""DAG fan-out bench: step-level placement vs. the serial JobRunner.

The same 10-step Galaxy workflow (prep -> 8 independent samples ->
merge) runs twice:

* **serial** — one :class:`~repro.galaxy.jobs.JobRunner` executes the
  invocation step by step on a single engine, the pre-DAG model of one
  workload on one instance;
* **DAG** — :func:`~repro.core.dag.compile_workflow` compiles it into
  stages and ``controller.run_dags`` fans the ready samples out across
  concurrent on-demand instances (deterministic: no interruptions, so
  the committed baseline replays exactly).

The ratio of simulated makespans is committed as ``fanout_speedup_x``
and guarded by ``check_regression.py`` with an absolute floor of
:data:`MIN_SPEEDUP_X` — the refactor's acceptance criterion (>= 3x)
can never quietly erode across baseline regenerations.
"""

from __future__ import annotations

from conftest import run_once

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.dag import compile_workflow
from repro.galaxy.history import History
from repro.galaxy.jobs import JobRunner
from repro.galaxy.tools import default_toolshed
from repro.galaxy.workflow import Invocation, StepInput, Workflow, WorkflowStep
from repro.sim.clock import HOUR
from repro.sim.engine import SimulationEngine
from repro.strategies import OnDemandPolicy

SEED = 11
WIDTH = 8
GiB = 1024**3

#: Acceptance floor: the 8-wide fan-out must cut makespan at least
#: this much vs. the serial runner (17 h of steps against ~3 h of
#: critical path plus boots leaves ample headroom).
MIN_SPEEDUP_X = 3.0


def sample_workflow() -> Workflow:
    """prep -> 8 parallel sample pipelines -> merge (EuPathGalaxy-style)."""
    steps = [WorkflowStep("prep", "cutadapt", duration=0.5 * HOUR)]
    steps += [
        WorkflowStep(
            f"sample{i}",
            "fastqc",
            inputs={"reads": StepInput("prep", "out")},
            duration=2.0 * HOUR,
        )
        for i in range(WIDTH)
    ]
    steps.append(
        WorkflowStep(
            "merge",
            "multiqc",
            inputs={
                f"report{i}": StepInput(f"sample{i}", "out") for i in range(WIDTH)
            },
            duration=0.5 * HOUR,
        )
    )
    return Workflow("fanout-bench", steps)


def run_serial(workflow: Workflow) -> float:
    """Serial JobRunner makespan, in hours."""
    engine = SimulationEngine(seed=SEED)
    finished_at = []
    runner = JobRunner(
        engine,
        default_toolshed(),
        History("fanout-bench"),
        execute_payloads=False,
        on_finished=lambda invocation: finished_at.append(engine.now),
    )
    invocation = Invocation(workflow, "serial")
    runner.start(invocation)
    engine.run_until(engine.now + 48 * HOUR)
    assert invocation.ok and finished_at
    return finished_at[0] / HOUR


def run_dag(workflow: Workflow) -> float:
    """DAG-scheduled makespan across concurrent instances, in hours."""
    config = SpotVerseConfig(instance_type="m5.xlarge")
    provider = CloudProvider(seed=SEED)
    provider.warmup_markets(24)
    controller = FleetController(
        provider, OnDemandPolicy(instance_type=config.instance_type), config
    )
    dag = compile_workflow(workflow, "bench", output_bytes=2 * GiB)
    result = controller.run_dags([dag], max_hours=48.0)
    provider.shutdown()
    assert len(result.records) == dag.n_stages
    assert all(record.completed_at is not None for record in result.records)
    return result.makespan_hours


def test_dag_fanout(benchmark):
    workflow = sample_workflow()
    extra = {}

    def both():
        serial_hours = run_serial(workflow)
        dag_hours = run_dag(workflow)
        extra["serial_makespan_hours"] = round(serial_hours, 4)
        extra["dag_makespan_hours"] = round(dag_hours, 4)
        extra["fanout_speedup_x"] = round(serial_hours / dag_hours, 2)
        return serial_hours, dag_hours

    serial_hours, dag_hours = run_once(benchmark, both, extra=extra)

    assert serial_hours >= workflow.total_duration() / HOUR  # 17 h of steps
    assert extra["fanout_speedup_x"] >= MIN_SPEEDUP_X, (
        f"8-wide fan-out only {extra['fanout_speedup_x']:.2f}x faster than "
        f"the serial runner (required {MIN_SPEEDUP_X:g}x)"
    )
