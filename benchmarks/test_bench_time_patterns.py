"""Section 7 time-pattern bench: interruptions cluster by hour.

The paper observes that interruption rates differ by day and time and
proposes studying them; our market model makes the pattern explicit —
reclaim bursts and the diurnal swing concentrate interruptions into a
minority of hours, which is the signal a predictive allocator exploits.
"""

from conftest import run_once

from repro.experiments.time_patterns import run_time_pattern_study


def test_time_pattern_study(benchmark):
    result = run_once(
        benchmark, run_time_pattern_study,
        n_workloads=30, region="ca-central-1", observation_hours=30.0, seed=7,
    )
    print()
    print(result.render())

    fleet = result.arm.fleet
    assert fleet.total_interruptions >= 20, "the probe fleet must observe enough events"

    # Clustered, not uniform: the busiest quarter of hours carries far
    # more than a quarter of the interruptions.
    assert result.concentration > 0.5

    # The busiest hours repeat with the market's burst period (~6 h):
    # consecutive busiest hours should not all be adjacent.
    busiest = sorted(result.busiest_hours(4))
    spans = [b - a for a, b in zip(busiest, busiest[1:])]
    assert max(spans) >= 4, f"bursts should recur hours apart, got hours {busiest}"
