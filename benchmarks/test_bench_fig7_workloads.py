"""Figure 7 bench: SpotVerse vs single-region vs on-demand.

Shape claims from Section 5.2.1:
* standard workload — SpotVerse cuts interruptions (paper -39 %),
  completion time (paper 33 h -> 14 h) and cost (paper $73.92 ->
  $41.46) versus single-region; on-demand is the most expensive but
  fastest; single-region spot stays under on-demand cost;
* checkpoint workload — SpotVerse cuts interruptions (~40 %) and does
  not materially regress cost; completion stays close;
* the interruption distribution (7c): single-region concentrates all
  interruptions in ca-central-1, SpotVerse spreads them over regions.
"""

from conftest import run_once

from repro.experiments.workload_comparison import run_workload_comparison


def test_fig7_workload_comparison(benchmark):
    result = run_once(benchmark, run_workload_comparison, n_workloads=40, seed=7)
    print()
    print(result.render())

    single = result.arms["standard-single"].fleet
    spotverse = result.arms["standard-spotverse"].fleet
    on_demand = result.arms["standard-on-demand"].fleet

    # Everyone finishes.
    for arm in result.arms.values():
        assert arm.fleet.all_complete, f"{arm.name} left workloads unfinished"

    # Interruptions: SV well below single-region; OD has none.
    assert spotverse.total_interruptions < 0.75 * single.total_interruptions
    assert on_demand.total_interruptions == 0

    # Completion time: OD fastest, SV beats single-region.
    assert on_demand.makespan_hours < spotverse.makespan_hours
    assert spotverse.makespan_hours < 0.8 * single.makespan_hours

    # Cost ordering: SV < single-region < on-demand.
    assert spotverse.total_cost < 0.9 * single.total_cost
    assert single.total_cost < on_demand.total_cost

    # 7c: the single-region arm concentrates interruptions in
    # ca-central-1; SpotVerse spreads attempts across regions.
    assert set(single.interruptions_by_region()) == {"ca-central-1"}
    assert len(spotverse.regions_used()) >= 3

    # Checkpoint workload: interruption reduction holds; cost is within
    # a modest band (the paper's own effect is ~11 %).
    ckpt_single = result.arms["checkpoint-single"].fleet
    ckpt_spotverse = result.arms["checkpoint-spotverse"].fleet
    assert ckpt_spotverse.total_interruptions < 0.9 * ckpt_single.total_interruptions
    assert ckpt_spotverse.total_cost < 1.15 * ckpt_single.total_cost
    assert ckpt_spotverse.makespan_hours < 1.1 * ckpt_single.makespan_hours

    # Checkpoint workloads resume rather than restart: they finish far
    # sooner than the standard ones under the same market.
    assert ckpt_single.makespan_hours < 0.5 * single.makespan_hours

    # Cumulative interruption series are monotone and end at the totals.
    series = result.cumulative_interruptions("standard-spotverse")
    assert series[-1][1] == spotverse.total_interruptions
    assert all(b[1] == a[1] + 1 for a, b in zip(series, series[1:]))
