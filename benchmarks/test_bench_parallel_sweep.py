"""Benchmark: serial vs process-pool execution of independent arms.

Runs the same four-arm sweep (four seeds of a small single-region
fleet) through ``run_arms`` serially and with ``jobs=4``, asserting the
pool returns fleet results **identical** to the serial path — arms are
share-nothing, so fan-out must not change a single number.

The speedup assertion is hardware-adaptive: machines with at least
four CPUs must deliver near-linear speedup, while low-core runners —
where ``run_arms_parallel`` caps pool workers at the core count and
degrades to serial execution — must come in close to 1.0x (paying
fork/pickle overhead to time-slice arms on one core used to measure
~0.35x "speedup" and mis-fire the guardrail).  Both classes verify
result equality and record wall times plus ``cpu_count`` in the
committed baseline so ``check_regression.py`` knows which band to
enforce.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
)
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload

ARMS = 4
JOBS = 4

#: Minimum parallel speedup demanded when the hardware can deliver it
#: (4 workers on >= 4 cores; "near-linear" with scheduling slack).
MIN_SPEEDUP = 2.0

#: Minimum "speedup" on hosts with fewer cores than JOBS, where the
#: harness degrades to the serial path: the second (serial) measurement
#: must land near 1.0x, with slack for timer noise on shared runners.
MIN_FALLBACK_SPEEDUP = 0.65


def _specs():
    config = SpotVerseConfig(instance_type="m5.xlarge")
    return [
        ArmSpec(
            name=f"seed-{seed}",
            policy_factory=policy_factory(SingleRegionPolicy, region="ca-central-1"),
            config=config,
            workload_factory=indexed_workload_factory(
                genome_reconstruction_workload, "w-{:02d}", duration_hours=6.0
            ),
            n_workloads=8,
            seed=seed,
            max_hours=40.0,
        )
        for seed in range(ARMS)
    ]


def test_parallel_arm_sweep(benchmark):
    extra = {"arms": ARMS, "jobs": JOBS, "cpu_count": os.cpu_count() or 1}
    runs = {}

    def sweep():
        # Both measurements live inside the benchmarked function so
        # they run under the same instrumentation regime (run_once
        # forces engine tracing); a serial leg timed outside would
        # skew the speedup ratio by exactly the tracing overhead.
        serial_start = time.perf_counter()
        runs["serial"] = run_arms(_specs(), jobs=1)
        serial_wall = time.perf_counter() - serial_start
        parallel_start = time.perf_counter()
        runs["parallel"] = run_arms(_specs(), jobs=JOBS)
        parallel_wall = time.perf_counter() - parallel_start
        # Filled mid-run so run_once picks these up for the baseline.
        extra["serial_wall_seconds"] = round(serial_wall, 4)
        extra["parallel_wall_seconds"] = round(parallel_wall, 4)
        extra["speedup_vs_serial"] = round(serial_wall / parallel_wall, 2)
        return runs["parallel"]

    run_once(benchmark, sweep, extra=extra)
    serial = runs["serial"]
    parallel = runs["parallel"]

    assert list(parallel) == list(serial)
    for name, serial_arm in serial.items():
        serial_fleet = serial_arm.fleet
        parallel_fleet = parallel[name].fleet
        assert parallel_fleet.total_cost == serial_fleet.total_cost, name
        assert parallel_fleet.total_interruptions == serial_fleet.total_interruptions, name
        assert parallel_fleet.makespan_hours == serial_fleet.makespan_hours, name

    if (os.cpu_count() or 1) >= JOBS:
        assert extra["speedup_vs_serial"] >= MIN_SPEEDUP, (
            f"4-arm sweep on {os.cpu_count()} CPUs only "
            f"{extra['speedup_vs_serial']:.2f}x faster with {JOBS} workers "
            f"(required {MIN_SPEEDUP:g}x)"
        )
    else:
        assert extra["speedup_vs_serial"] >= MIN_FALLBACK_SPEEDUP, (
            f"low-core serial fallback ran {extra['speedup_vs_serial']:.2f}x vs "
            f"serial on {os.cpu_count()} CPU(s) — the pool is being used where "
            f"it cannot pay off (required {MIN_FALLBACK_SPEEDUP:g}x)"
        )
