"""Benchmark: serial vs process-pool execution of independent arms.

Runs the same four-arm sweep (four seeds of a small single-region
fleet) through ``run_arms`` serially and with ``jobs=4``, asserting the
pool returns fleet results **identical** to the serial path — arms are
share-nothing, so fan-out must not change a single number.

The speedup assertion only fires on machines with at least four CPUs;
single-core CI runners still verify equality and record both wall
times in the committed baseline.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
)
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload

ARMS = 4
JOBS = 4

#: Minimum parallel speedup demanded when the hardware can deliver it
#: (4 workers on >= 4 cores; "near-linear" with scheduling slack).
MIN_SPEEDUP = 2.0


def _specs():
    config = SpotVerseConfig(instance_type="m5.xlarge")
    return [
        ArmSpec(
            name=f"seed-{seed}",
            policy_factory=policy_factory(SingleRegionPolicy, region="ca-central-1"),
            config=config,
            workload_factory=indexed_workload_factory(
                genome_reconstruction_workload, "w-{:02d}", duration_hours=6.0
            ),
            n_workloads=8,
            seed=seed,
            max_hours=40.0,
        )
        for seed in range(ARMS)
    ]


def test_parallel_arm_sweep(benchmark):
    serial_start = time.perf_counter()
    serial = run_arms(_specs(), jobs=1)
    serial_wall = time.perf_counter() - serial_start

    extra = {
        "arms": ARMS,
        "jobs": JOBS,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": round(serial_wall, 4),
    }

    def parallel_run():
        start = time.perf_counter()
        results = run_arms(_specs(), jobs=JOBS)
        wall = time.perf_counter() - start
        # Filled mid-run so run_once picks these up for the baseline.
        extra["parallel_wall_seconds"] = round(wall, 4)
        extra["speedup_vs_serial"] = round(serial_wall / wall, 2)
        return results

    parallel = run_once(benchmark, parallel_run, extra=extra)

    assert list(parallel) == list(serial)
    for name, serial_arm in serial.items():
        serial_fleet = serial_arm.fleet
        parallel_fleet = parallel[name].fleet
        assert parallel_fleet.total_cost == serial_fleet.total_cost, name
        assert parallel_fleet.total_interruptions == serial_fleet.total_interruptions, name
        assert parallel_fleet.makespan_hours == serial_fleet.makespan_hours, name

    if (os.cpu_count() or 1) >= JOBS:
        assert extra["speedup_vs_serial"] >= MIN_SPEEDUP, (
            f"4-arm sweep on {os.cpu_count()} CPUs only "
            f"{extra['speedup_vs_serial']:.2f}x faster with {JOBS} workers "
            f"(required {MIN_SPEEDUP:g}x)"
        )
