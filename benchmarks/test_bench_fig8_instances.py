"""Figure 8 + Table 1 bench: instance types, sizes, baseline regions.

Shape claims from Section 5.2.2:
* Table 1 — the cheapest spot region per type emerges from the price
  book exactly as the paper lists it;
* r5.2xlarge (baseline ca-central-1, the paper's worst case, stability
  1) shows the most dramatic interruption reduction under SpotVerse
  (paper: 215 -> 92) with far shorter completion;
* m5.large (baseline us-west-2, stability 1) shows a strong reduction
  too (paper: 137 -> 40);
* types whose cheapest region is already stable (m5.2xlarge in
  ap-northeast-3, c5.2xlarge in eu-north-1) see little change — and
  c5.2xlarge's savings come against on-demand (paper: 52 %).
"""

from conftest import run_once

from repro.experiments.instance_study import run_instance_study


def test_fig8_instance_study(benchmark):
    result = run_once(benchmark, run_instance_study, n_workloads=40, seed=7)
    print()
    print(result.render())

    assert result.table1_matches(), (
        f"computed baselines {result.computed_baselines} != paper Table 1"
    )

    def fleet(name):
        return result.arms[name].fleet

    # Flaky-baseline types: big interruption reductions.
    for itype in ("m5.large", "m5.xlarge", "r5.2xlarge"):
        single = fleet(f"{itype}-single")
        spotverse = fleet(f"{itype}-spotverse")
        assert spotverse.total_interruptions < 0.6 * single.total_interruptions, itype
        assert spotverse.makespan_hours < single.makespan_hours, itype

    # r5.2xlarge is the most dramatic case (paper Section 5.2.2).
    r5_single = fleet("r5.2xlarge-single")
    r5_spotverse = fleet("r5.2xlarge-spotverse")
    assert r5_spotverse.total_interruptions < 0.35 * r5_single.total_interruptions
    assert r5_spotverse.total_cost < 0.65 * r5_single.total_cost
    assert r5_spotverse.all_complete

    # Stable-baseline types change little: interruption counts stay low
    # for both strategies.
    for itype in ("m5.2xlarge", "c5.2xlarge"):
        assert fleet(f"{itype}-single").total_interruptions <= 15, itype
        assert fleet(f"{itype}-spotverse").total_interruptions <= 15, itype

    # c5.2xlarge: large savings against on-demand (paper: 52 %).
    c5 = fleet("c5.2xlarge-spotverse")
    od_price = result.arms["c5.2xlarge-spotverse"].provider.price_book.cheapest_od_region(
        "c5.2xlarge"
    )[1]
    od_cost = od_price * 10.5 * 40
    assert c5.total_cost < 0.6 * od_cost
