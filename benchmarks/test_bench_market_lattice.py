"""Benchmark: vectorized market lattice vs scalar market stepping.

Steps every calibrated market (the full 12-region x 4-type book) for a
few simulated weeks under both paths — ``vectorized_markets=False``
(one Python loop iteration, three scalar normal draws, and a tuple
append per market per hour) and the default
:class:`~repro.cloud.lattice.MarketLattice` fast path — and asserts:

* same-seed price traces are **bit-identical** between the paths, and
* the lattice is at least 3x faster at pure market stepping.

The committed ``BENCH_test_market_lattice_stepping.json`` carries the
measured speedup so CI history shows the fast path staying fast.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.cloud.provider import CloudProvider
from repro.sim.clock import HOUR

#: Simulated market-stepping horizon.  Long enough that stepping (not
#: provider construction) dominates the wall time on both paths.
HOURS = 24 * 21

#: Required advantage of the vectorized path (ISSUE acceptance bar).
MIN_SPEEDUP = 3.0


def _run_markets(vectorized: bool) -> CloudProvider:
    provider = CloudProvider(seed=11, vectorized_markets=vectorized)
    provider.engine.run_until(HOURS * HOUR)
    provider.shutdown()
    return provider


def test_market_lattice_stepping(benchmark):
    scalar_start = time.perf_counter()
    scalar_provider = _run_markets(vectorized=False)
    scalar_wall = time.perf_counter() - scalar_start

    extra = {"scalar_wall_seconds": round(scalar_wall, 4)}

    def vectorized_run():
        start = time.perf_counter()
        provider = _run_markets(vectorized=True)
        wall = time.perf_counter() - start
        # Filled mid-run so run_once picks these up for the baseline.
        extra["vectorized_wall_seconds"] = round(wall, 4)
        extra["speedup_vs_scalar"] = round(scalar_wall / wall, 2)
        return provider

    vector_provider = run_once(benchmark, vectorized_run, extra=extra)
    speedup = extra["speedup_vs_scalar"]

    # Bit-exact equivalence: every market's recorded price and metric
    # series must match the scalar reference sample for sample.
    for key, scalar_market in scalar_provider._markets.items():
        vector_market = vector_provider._markets[key]
        assert list(scalar_market.price_trace()) == list(vector_market.price_trace()), key
        assert list(scalar_market.metric_history) == list(vector_market.metric_history), key

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized market stepping only {speedup:.2f}x faster than scalar "
        f"(required {MIN_SPEEDUP:g}x): scalar {scalar_wall:.3f}s, "
        f"vectorized {extra['vectorized_wall_seconds']:.3f}s"
    )
