"""Tools and the ToolShed.

A :class:`Tool` wraps a Python callable ``runner(params) -> outputs``
with identity and versioning; the :class:`ToolShed` is the installable
registry (the paper installs tools through the Galaxy Admin feature).
:func:`default_toolshed` ships the bioinformatics tools the paper's
workloads need, each wrapping the real miniature implementation in
:mod:`repro.bio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

import numpy as np

from repro.bio import dada as dada_module
from repro.bio.consensus import reconstruct_genome
from repro.bio.demux import demultiplex
from repro.bio.diversity import shannon_index, simpson_index
from repro.bio.fasta import parse_fasta, write_fasta
from repro.bio.fastq import parse_fastq, write_fastq
from repro.bio.lineage import classify_batch, default_lineage_signatures
from repro.bio.phylo import kmer_distance_matrix, neighbor_joining
from repro.bio.qc import fastqc, multiqc
from repro.bio.trim import trim_adapters, trim_quality
from repro.bio.vcf import parse_vcf
from repro.errors import GalaxyError, ToolNotInstalledError

ToolRunner = Callable[[Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class Tool:
    """An installable Galaxy tool.

    Attributes:
        tool_id: Stable identifier, e.g. ``"fastqc"``.
        name: Display name.
        version: Semantic-ish version string.
        description: One-line purpose.
        runner: ``runner(params) -> outputs`` implementing the tool.
        requirements: Names of tool_ids this tool's outputs feed from
            conventionally (documentation only; the workflow DAG is the
            real dependency source).
    """

    tool_id: str
    name: str
    version: str
    description: str
    runner: ToolRunner
    requirements: tuple = ()

    def run(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Execute the tool, wrapping failures in :class:`GalaxyError`."""
        try:
            return self.runner(params)
        except GalaxyError:
            raise
        except Exception as exc:
            raise GalaxyError(
                f"tool {self.tool_id!r} failed: {exc.__class__.__name__}: {exc}"
            ) from exc


class ToolShed:
    """Registry of installable tools."""

    def __init__(self) -> None:
        self._tools: Dict[str, Tool] = {}

    def install(self, tool: Tool) -> None:
        """Install (or upgrade) a tool."""
        self._tools[tool.tool_id] = tool

    def get(self, tool_id: str) -> Tool:
        """Return an installed tool.

        Raises:
            ToolNotInstalledError: When the tool is missing.
        """
        tool = self._tools.get(tool_id)
        if tool is None:
            installed = ", ".join(sorted(self._tools)) or "<none>"
            raise ToolNotInstalledError(
                f"tool {tool_id!r} is not installed; installed tools: {installed}"
            )
        return tool

    def __contains__(self, tool_id: str) -> bool:
        return tool_id in self._tools

    def installed(self) -> List[str]:
        """Installed tool ids, sorted."""
        return sorted(self._tools)


# ---------------------------------------------------------------------------
# Built-in tool runners (thin wrappers over repro.bio)
# ---------------------------------------------------------------------------

def _run_fastqc(params: Dict[str, Any]) -> Dict[str, Any]:
    reads = parse_fastq(params["fastq"])
    report = fastqc(reads, name=params.get("name", "sample"))
    return {"report": report}


def _run_multiqc(params: Dict[str, Any]) -> Dict[str, Any]:
    reports = list(params.get("reports") or [])
    # Workflow wiring delivers reports as individual ``report_<i>``
    # params (Galaxy's collection inputs, flattened).
    reports.extend(
        value for key, value in sorted(params.items()) if key.startswith("report_")
    )
    return {"summary": multiqc(reports)}


def _run_cutadapt(params: Dict[str, Any]) -> Dict[str, Any]:
    reads = parse_fastq(params["fastq"])
    if params.get("adapter"):
        reads = trim_adapters(
            reads, params["adapter"], min_length=int(params.get("min_length", 20))
        )
    reads = trim_quality(
        reads,
        quality_cutoff=int(params.get("quality_cutoff", 20)),
        min_length=int(params.get("min_length", 20)),
    )
    return {"fastq": write_fastq(reads), "n_reads": len(reads)}


def _run_demux(params: Dict[str, Any]) -> Dict[str, Any]:
    reads = parse_fastq(params["fastq"])
    assigned, unassigned = demultiplex(reads, params["barcodes"])
    return {
        "samples": {sample: write_fastq(sample_reads) for sample, sample_reads in assigned.items()},
        "n_unassigned": len(unassigned),
    }


def _run_dada2(params: Dict[str, Any]) -> Dict[str, Any]:
    per_sample = {
        sample: dada_module.denoise(parse_fastq(fastq_text))
        for sample, fastq_text in params["samples"].items()
    }
    return {
        "feature_table": dada_module.feature_table(per_sample),
        "n_asvs": {sample: result.n_asvs for sample, result in per_sample.items()},
    }


def _run_phylogeny(params: Dict[str, Any]) -> Dict[str, Any]:
    table = params["feature_table"]
    sequences = {asv: asv for counts in table.values() for asv in counts}
    if len(sequences) < 2:
        return {"newick": ";", "n_taxa": len(sequences)}
    names, matrix = kmer_distance_matrix(sequences, k=int(params.get("k", 4)))
    tree = neighbor_joining(names, matrix)
    return {"newick": tree.to_newick(), "n_taxa": len(names)}


def _run_diversity(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bio.diversity import beta_diversity_matrix

    table = params["feature_table"]
    outputs: Dict[str, Any] = {
        "alpha": {
            sample: {
                "shannon": shannon_index(counts),
                "simpson": simpson_index(counts),
            }
            for sample, counts in table.items()
        }
    }
    non_empty = {
        sample: counts
        for sample, counts in table.items()
        if sum(counts.values()) > 0
    }
    if len(non_empty) >= 2:
        samples, matrix = beta_diversity_matrix(non_empty)
        outputs["beta"] = {
            "samples": samples,
            "bray_curtis": [[float(x) for x in row] for row in matrix],
        }
    return outputs


def _run_vcf_consensus(params: Dict[str, Any]) -> Dict[str, Any]:
    reference = parse_fasta(params["reference_fasta"])[0]
    variants = parse_vcf(params["vcf"])
    genome = reconstruct_genome(
        reference, variants, isolate_name=params.get("isolate", "isolate")
    )
    return {"fasta": write_fasta([genome]), "n_variants": len(variants)}


def _run_pangolin(params: Dict[str, Any]) -> Dict[str, Any]:
    genomes = parse_fasta(params["fasta"])
    signatures = params.get("signatures")
    if signatures is None:
        signatures = default_lineage_signatures(len(genomes[0].sequence))
    calls = classify_batch(genomes, signatures)
    return {"calls": calls, "lineages": [call.lineage for call in calls]}


def _run_variant_caller(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bio.variants import build_pileup, call_variants
    from repro.bio.vcf import write_vcf

    reference = parse_fasta(params["reference_fasta"])[0]
    reads = parse_fastq(params["fastq"])
    pileup = build_pileup(
        reference.sequence, reads, reference_name=reference.identifier
    )
    variants = call_variants(reference.sequence, pileup)
    return {
        "vcf": write_vcf(variants, reference_name=reference.identifier),
        "n_variants": len(variants),
        "n_reads_used": pileup.n_reads_used,
    }


def _run_sleep(params: Dict[str, Any]) -> Dict[str, Any]:
    # The paper pads workloads with sleep intervals for uniform
    # duration; in simulation the duration lives on the workflow step,
    # so the runner is a pass-through.
    return {"slept": params.get("seconds", 0)}


def default_toolshed() -> ToolShed:
    """Return a shed with the paper's tool suite installed."""
    shed = ToolShed()
    tools = [
        Tool("fastqc", "FastQC", "0.12.1", "Per-file read quality control", _run_fastqc),
        Tool("multiqc", "MultiQC", "1.14", "Aggregate QC reports", _run_multiqc, ("fastqc",)),
        Tool("cutadapt", "Cutadapt", "4.4", "Adapter and quality trimming", _run_cutadapt),
        Tool("demux", "Demultiplexer", "1.0", "Barcode demultiplexing", _run_demux),
        Tool("dada2", "DADA2 denoise", "1.26", "ASV inference", _run_dada2, ("demux",)),
        Tool(
            "phylogeny",
            "Phylogenetic tree",
            "1.0",
            "Neighbour-joining tree from ASVs",
            _run_phylogeny,
            ("dada2",),
        ),
        Tool(
            "diversity",
            "Diversity metrics",
            "1.0",
            "Alpha diversity per sample",
            _run_diversity,
            ("dada2",),
        ),
        Tool(
            "vcf_consensus",
            "VCF consensus builder",
            "1.0",
            "Apply VCF variants to a reference genome",
            _run_vcf_consensus,
        ),
        Tool(
            "pangolin",
            "Pangolin lineage caller",
            "4.3",
            "Signature-based lineage assignment",
            _run_pangolin,
            ("vcf_consensus",),
        ),
        Tool(
            "variant_caller",
            "Pileup variant caller",
            "1.0",
            "Align reads and call SNPs against a reference",
            _run_variant_caller,
        ),
        Tool("sleep", "Sleep interval", "1.0", "Duration padding step", _run_sleep),
    ]
    for tool in tools:
        shed.install(tool)
    return shed
