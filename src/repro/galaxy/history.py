"""Histories and datasets (Galaxy's provenance containers)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List

from repro.errors import GalaxyError


@dataclass(frozen=True)
class Dataset:
    """One dataset entry in a history.

    Attributes:
        dataset_id: Unique id within the Galaxy instance.
        name: Display name.
        content: Arbitrary payload (text, report objects, tables).
        created_at: Virtual timestamp of creation.
        step_label: The workflow step that produced it ("" for uploads).
        extension: Galaxy-style datatype hint ("fastq", "fasta", ...).
    """

    dataset_id: str
    name: str
    content: Any
    created_at: float = 0.0
    step_label: str = ""
    extension: str = "data"


class History:
    """An append-only list of datasets with name lookup."""

    _id_counter = itertools.count()

    def __init__(self, name: str) -> None:
        self.name = name
        self._datasets: List[Dataset] = []

    def __len__(self) -> int:
        return len(self._datasets)

    def add(
        self,
        name: str,
        content: Any,
        created_at: float = 0.0,
        step_label: str = "",
        extension: str = "data",
    ) -> Dataset:
        """Append a dataset and return it."""
        dataset = Dataset(
            dataset_id=f"dataset-{next(History._id_counter):06d}",
            name=name,
            content=content,
            created_at=created_at,
            step_label=step_label,
            extension=extension,
        )
        self._datasets.append(dataset)
        return dataset

    def datasets(self) -> List[Dataset]:
        """All datasets in creation order."""
        return list(self._datasets)

    def latest(self, name: str) -> Dataset:
        """The most recent dataset called *name*.

        Raises:
            GalaxyError: If no dataset has that name.
        """
        for dataset in reversed(self._datasets):
            if dataset.name == name:
                return dataset
        raise GalaxyError(f"history {self.name!r} has no dataset named {name!r}")

    def by_step(self, step_label: str) -> List[Dataset]:
        """Datasets produced by one workflow step."""
        return [dataset for dataset in self._datasets if dataset.step_label == step_label]

    def names(self) -> List[str]:
        """Dataset names in creation order (with duplicates)."""
        return [dataset.name for dataset in self._datasets]
