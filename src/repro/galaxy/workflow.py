"""Workflow DAGs and invocations.

A :class:`Workflow` is an ordered set of :class:`WorkflowStep` nodes
whose inputs may reference outputs of earlier steps.  Validation
rejects cycles, duplicate labels, and dangling references; execution
state lives in an :class:`Invocation` so one workflow definition can
run many times (the paper runs 40+ parallel invocations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import WorkflowValidationError


@dataclass(frozen=True)
class StepInput:
    """A reference from one step's parameter to another step's output."""

    source_step: str
    output_name: str


@dataclass(frozen=True)
class WorkflowStep:
    """One node of a workflow DAG.

    Attributes:
        label: Unique step label within the workflow.
        tool_id: Tool to run (must be installed when executed).
        params: Literal tool parameters.
        inputs: ``{param name: StepInput}`` wiring from earlier steps.
        duration: Simulated execution time in seconds.  The paper pads
            steps with sleep intervals for uniform total duration; here
            the padding is explicit per step.
    """

    label: str
    tool_id: str
    params: Mapping[str, Any] = field(default_factory=dict)
    inputs: Mapping[str, StepInput] = field(default_factory=dict)
    duration: float = 60.0


class StepState(enum.Enum):
    """Execution state of one step within an invocation."""

    NEW = "new"
    SCHEDULED = "scheduled"
    RUNNING = "running"
    OK = "ok"
    ERROR = "error"
    CANCELLED = "cancelled"


class Workflow:
    """A validated workflow DAG.

    Raises:
        WorkflowValidationError: On duplicate labels, references to
            unknown steps, forward/self references, or non-positive
            durations.
    """

    def __init__(self, name: str, steps: List[WorkflowStep]) -> None:
        if not steps:
            raise WorkflowValidationError(f"workflow {name!r} has no steps")
        self.name = name
        self.steps = list(steps)
        self._by_label: Dict[str, WorkflowStep] = {}
        seen_labels: List[str] = []
        for step in self.steps:
            if step.label in self._by_label:
                raise WorkflowValidationError(
                    f"workflow {name!r}: duplicate step label {step.label!r}"
                )
            if step.duration <= 0:
                raise WorkflowValidationError(
                    f"workflow {name!r}: step {step.label!r} duration must be positive"
                )
            for param, ref in step.inputs.items():
                if ref.source_step == step.label:
                    raise WorkflowValidationError(
                        f"workflow {name!r}: step {step.label!r} references itself"
                    )
                if ref.source_step not in seen_labels:
                    raise WorkflowValidationError(
                        f"workflow {name!r}: step {step.label!r} input {param!r} "
                        f"references {ref.source_step!r}, which is not an earlier step"
                    )
            seen_labels.append(step.label)
            self._by_label[step.label] = step

    def __len__(self) -> int:
        return len(self.steps)

    def step(self, label: str) -> WorkflowStep:
        """Return the step called *label*."""
        step = self._by_label.get(label)
        if step is None:
            raise WorkflowValidationError(
                f"workflow {self.name!r} has no step {label!r}"
            )
        return step

    def labels(self) -> List[str]:
        """Step labels in execution order."""
        return [step.label for step in self.steps]

    def total_duration(self) -> float:
        """Sum of step durations (serial execution time)."""
        return sum(step.duration for step in self.steps)

    def upstream_of(self, label: str) -> List[str]:
        """Labels whose outputs the given step consumes."""
        return sorted({ref.source_step for ref in self.step(label).inputs.values()})


@dataclass
class StepResult:
    """Execution record of one step within an invocation."""

    state: StepState = StepState.NEW
    outputs: Dict[str, Any] = field(default_factory=dict)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: str = ""


class Invocation:
    """Mutable execution state of one workflow run."""

    def __init__(self, workflow: Workflow, invocation_id: str) -> None:
        self.workflow = workflow
        self.invocation_id = invocation_id
        self.results: Dict[str, StepResult] = {
            step.label: StepResult() for step in workflow.steps
        }

    @property
    def finished(self) -> bool:
        """Whether every step reached a terminal state."""
        return all(
            result.state in (StepState.OK, StepState.ERROR, StepState.CANCELLED)
            for result in self.results.values()
        )

    @property
    def ok(self) -> bool:
        """Whether every step completed successfully."""
        return all(result.state is StepState.OK for result in self.results.values())

    def completed_steps(self) -> List[str]:
        """Labels of steps that finished OK, in workflow order."""
        return [
            label
            for label in self.workflow.labels()
            if self.results[label].state is StepState.OK
        ]

    def next_step(self) -> Optional[WorkflowStep]:
        """The first step not yet OK (serial execution order)."""
        for step in self.workflow.steps:
            if self.results[step.label].state is not StepState.OK:
                return step
        return None

    def resolve_params(self, step: WorkflowStep) -> Dict[str, Any]:
        """Literal params plus wired outputs of completed upstreams.

        Raises:
            WorkflowValidationError: If a referenced upstream has not
                completed or lacks the named output.
        """
        params: Dict[str, Any] = dict(step.params)
        for param, ref in step.inputs.items():
            upstream = self.results[ref.source_step]
            if upstream.state is not StepState.OK:
                raise WorkflowValidationError(
                    f"invocation {self.invocation_id!r}: step {step.label!r} needs "
                    f"{ref.source_step!r}, which is {upstream.state.value}"
                )
            if ref.output_name not in upstream.outputs:
                raise WorkflowValidationError(
                    f"invocation {self.invocation_id!r}: step {ref.source_step!r} "
                    f"produced no output {ref.output_name!r}"
                )
            params[param] = upstream.outputs[ref.output_name]
        return params

    def progress_fraction(self) -> float:
        """Completed duration over total duration."""
        total = self.workflow.total_duration()
        done = sum(
            self.workflow.step(label).duration for label in self.completed_steps()
        )
        return done / total if total else 1.0

    def reset(self) -> None:
        """Discard all progress (a standard workload's restart)."""
        for label in self.results:
            self.results[label] = StepResult()

    def reset_from(self, label: str) -> None:
        """Discard progress from *label* onward (checkpoint resume)."""
        dropping = False
        for step_label in self.workflow.labels():
            if step_label == label:
                dropping = True
            if dropping:
                self.results[step_label] = StepResult()
