"""Checkpoint stores: the DynamoDB bolt-on the paper adds to Galaxy.

Galaxy has no native checkpointing, so the paper tracks per-segment
progress in DynamoDB and uploads state during the two-minute
interruption notice.  :class:`DynamoCheckpointStore` reproduces that
against the simulated DynamoDB (with a conditional write so a stale,
about-to-die instance can never roll progress backwards);
:class:`InMemoryCheckpointStore` serves unit tests and standalone runs.

These stores track *progress* only.  The fleet control plane composes
them with artifact persistence (the checkpoint bytes themselves) behind
:class:`repro.core.fleet.checkpoint.CheckpointBackend`, which is what
executions talk to; the S3 and EFS artifact designs both keep their
progress in one of the stores below.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.cloud.services.dynamodb import DynamoDBService
from repro.errors import ConditionalCheckFailedError


class CheckpointStore(ABC):
    """Monotonic per-workload progress store."""

    @abstractmethod
    def save(self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None) -> bool:
        """Record that *workload_id* completed *completed_segments*.

        Returns:
            True when the write advanced progress; False when a newer
            checkpoint already existed (the write is discarded).
        """

    @abstractmethod
    def load(self, workload_id: str) -> int:
        """Return the completed-segment count (0 when never saved)."""

    @abstractmethod
    def detail(self, workload_id: str) -> Dict[str, Any]:
        """Return the detail payload of the latest checkpoint."""


class InMemoryCheckpointStore(CheckpointStore):
    """Dict-backed store for tests and engine-less runs."""

    def __init__(self) -> None:
        self._progress: Dict[str, int] = {}
        self._detail: Dict[str, Dict[str, Any]] = {}

    def save(self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None) -> bool:
        current = self._progress.get(workload_id, 0)
        if completed_segments <= current and workload_id in self._progress:
            return False
        self._progress[workload_id] = completed_segments
        self._detail[workload_id] = dict(detail or {})
        return True

    def load(self, workload_id: str) -> int:
        return self._progress.get(workload_id, 0)

    def detail(self, workload_id: str) -> Dict[str, Any]:
        return dict(self._detail.get(workload_id, {}))


class EFSCheckpointStore(CheckpointStore):
    """EFS-backed store: the paper's Section 7 storage alternative.

    Progress lives as files on a regional EFS file system with a
    cross-region replica, so a replacement instance in the replica
    region can read state without an S3 round trip.  Monotonicity is
    enforced in the store (EFS has no conditional writes).

    Args:
        efs: The simulated EFS service.
        region: Region of the source file system.
        replica_region: Optional replica region for cross-region reads.
    """

    def __init__(self, efs, region: str, replica_region: Optional[str] = None) -> None:
        self._efs = efs
        self._region = region
        self._fs = efs.create_file_system(region)
        if replica_region is not None:
            efs.create_replica(self._fs.fs_id, replica_region)
        self._progress: Dict[str, int] = {}
        self._detail: Dict[str, Dict[str, Any]] = {}

    @property
    def fs_id(self) -> str:
        """The backing file system's id."""
        return self._fs.fs_id

    def save(self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None) -> bool:
        current = self._progress.get(workload_id)
        if current is not None and completed_segments <= current:
            return False
        self._progress[workload_id] = completed_segments
        self._detail[workload_id] = dict(detail or {})
        self._efs.write_file(
            self._fs.fs_id,
            f"checkpoints/{workload_id}.state",
            body=repr({"segments": completed_segments, "detail": detail}).encode(),
            source_region=self._region,
            tag=workload_id,
        )
        return True

    def load(self, workload_id: str) -> int:
        return self._progress.get(workload_id, 0)

    def detail(self, workload_id: str) -> Dict[str, Any]:
        return dict(self._detail.get(workload_id, {}))


class DynamoCheckpointStore(CheckpointStore):
    """DynamoDB-backed store (the paper's implementation).

    Args:
        dynamodb: The simulated DynamoDB service.
        table_name: Table to use; created on first use with partition
            key ``workload_id``.
    """

    def __init__(self, dynamodb: DynamoDBService, table_name: str = "spotverse-checkpoints") -> None:
        self._dynamodb = dynamodb
        self._table = table_name
        dynamodb.create_table(table_name, partition_key="workload_id")

    def save(self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None) -> bool:
        item = {
            "workload_id": workload_id,
            "completed_segments": int(completed_segments),
            "detail": dict(detail or {}),
        }
        try:
            self._dynamodb.put_item(
                self._table,
                item,
                condition=lambda old: old is None
                or old["completed_segments"] < completed_segments,
            )
        except ConditionalCheckFailedError:
            return False
        return True

    def load(self, workload_id: str) -> int:
        item = self._dynamodb.get_item(self._table, workload_id)
        if item is None:
            return 0
        return int(item["completed_segments"])

    def detail(self, workload_id: str) -> Dict[str, Any]:
        item = self._dynamodb.get_item(self._table, workload_id)
        if item is None:
            return {}
        return dict(item.get("detail", {}))
