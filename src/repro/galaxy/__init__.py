"""Galaxy-style workflow management substrate.

A miniature of the Galaxy platform as the paper uses it: a toolshed of
installable tools (wrapping :mod:`repro.bio`), workflow DAGs with
invocations, histories holding datasets, a job runner that executes
steps in simulated time, a checkpoint store (the DynamoDB bolt-on the
paper adds, since Galaxy lacks checkpointing), a Planemo-style runner,
and an admin/API facade.
"""

from repro.galaxy.api import GalaxyInstance
from repro.galaxy.checkpoint import (
    CheckpointStore,
    DynamoCheckpointStore,
    EFSCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.galaxy.history import Dataset, History
from repro.galaxy.jobs import Job, JobRunner, JobState
from repro.galaxy.planemo import PlanemoRunner
from repro.galaxy.tools import Tool, ToolShed, default_toolshed
from repro.galaxy.workflow import Invocation, StepState, Workflow, WorkflowStep

__all__ = [
    "CheckpointStore",
    "Dataset",
    "DynamoCheckpointStore",
    "EFSCheckpointStore",
    "GalaxyInstance",
    "History",
    "InMemoryCheckpointStore",
    "Invocation",
    "Job",
    "JobRunner",
    "JobState",
    "PlanemoRunner",
    "StepState",
    "Tool",
    "ToolShed",
    "Workflow",
    "WorkflowStep",
    "default_toolshed",
]
