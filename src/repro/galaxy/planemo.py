"""Planemo-style workflow runner.

The paper launches Galaxy workloads at instance startup through
Planemo and the Galaxy API.  :class:`PlanemoRunner` gives the same
one-call experience: hand it a workflow and inputs, get a finished
invocation back — synchronously on a private engine, or scheduled onto
a shared one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import GalaxyError
from repro.galaxy.history import History
from repro.galaxy.jobs import JobRunner
from repro.galaxy.tools import ToolShed, default_toolshed
from repro.galaxy.workflow import Invocation, Workflow
from repro.sim.engine import SimulationEngine


class PlanemoRunner:
    """Convenience runner for one-shot workflow executions.

    Args:
        toolshed: Tools available to workflows (defaults to the full
            built-in shed).
        engine: Shared engine; when omitted each ``run`` call uses a
            private engine and executes to completion immediately.
    """

    def __init__(
        self,
        toolshed: Optional[ToolShed] = None,
        engine: Optional[SimulationEngine] = None,
    ) -> None:
        self._toolshed = toolshed or default_toolshed()
        self._engine = engine
        self._counter = 0

    @property
    def toolshed(self) -> ToolShed:
        """The shed workflows resolve tools from."""
        return self._toolshed

    def run(
        self,
        workflow: Workflow,
        history: Optional[History] = None,
        execute_payloads: bool = True,
        on_step_complete: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> Invocation:
        """Execute *workflow* to completion and return its invocation.

        With a private engine this blocks (in virtual time) until the
        workflow finishes.  With a shared engine the caller owns the
        clock, so this schedules the work and the caller must advance
        the engine; the returned invocation fills in as time passes.

        Raises:
            GalaxyError: If the workflow errored (private-engine mode).
        """
        self._counter += 1
        invocation = Invocation(workflow, invocation_id=f"planemo-{self._counter:05d}")
        history = history if history is not None else History(f"history-{workflow.name}")
        engine = self._engine or SimulationEngine()
        runner = JobRunner(
            engine=engine,
            toolshed=self._toolshed,
            history=history,
            execute_payloads=execute_payloads,
            on_step_complete=on_step_complete,
        )
        runner.start(invocation)
        if self._engine is None:
            engine.run_until_idle()
            if not invocation.ok:
                failed = [
                    label
                    for label, result in invocation.results.items()
                    if result.error
                ]
                errors = "; ".join(
                    f"{label}: {invocation.results[label].error}" for label in failed
                )
                raise GalaxyError(
                    f"workflow {workflow.name!r} failed at {failed!r}: {errors}"
                )
        return invocation
