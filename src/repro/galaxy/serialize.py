"""Workflow serialization in a Galaxy ``.ga``-flavoured JSON format.

Real Galaxy exports workflows as ``.ga`` JSON documents; this module
provides the equivalent for our engine so workflows can be stored,
shared, and re-imported.  Only JSON-representable step params survive a
round trip (which covers every built-in workload workflow — their
params are strings, numbers, and plain dicts).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import WorkflowValidationError
from repro.galaxy.workflow import StepInput, Workflow, WorkflowStep

#: Format tag written into every export.
FORMAT_VERSION = "spotverse-ga-0.1"


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Export *workflow* to a ``.ga``-style dict."""
    return {
        "a_galaxy_workflow": "true",
        "format-version": FORMAT_VERSION,
        "name": workflow.name,
        "steps": [
            {
                "label": step.label,
                "tool_id": step.tool_id,
                "params": dict(step.params),
                "inputs": {
                    param: {"source_step": ref.source_step, "output_name": ref.output_name}
                    for param, ref in step.inputs.items()
                },
                "duration": step.duration,
            }
            for step in workflow.steps
        ],
    }


def workflow_from_dict(document: Dict[str, Any]) -> Workflow:
    """Import a workflow from a ``.ga``-style dict.

    Raises:
        WorkflowValidationError: On a malformed document (and on any
            DAG violation, via :class:`Workflow` validation).
    """
    if document.get("a_galaxy_workflow") != "true":
        raise WorkflowValidationError("document is not a Galaxy workflow export")
    name = document.get("name")
    if not name:
        raise WorkflowValidationError("workflow export has no name")
    steps = []
    for index, raw in enumerate(document.get("steps", [])):
        try:
            steps.append(
                WorkflowStep(
                    label=raw["label"],
                    tool_id=raw["tool_id"],
                    params=dict(raw.get("params", {})),
                    inputs={
                        param: StepInput(ref["source_step"], ref["output_name"])
                        for param, ref in raw.get("inputs", {}).items()
                    },
                    duration=float(raw.get("duration", 60.0)),
                )
            )
        except KeyError as exc:
            raise WorkflowValidationError(
                f"workflow export step {index} is missing field {exc}"
            ) from None
    return Workflow(name=name, steps=steps)


def workflow_to_ga(workflow: Workflow) -> str:
    """Export *workflow* to ``.ga`` JSON text.

    Raises:
        WorkflowValidationError: If a step param is not JSON-representable.
    """
    document = workflow_to_dict(workflow)
    try:
        return json.dumps(document, indent=2, sort_keys=True)
    except TypeError as exc:
        raise WorkflowValidationError(
            f"workflow {workflow.name!r} has non-JSON step params: {exc}"
        ) from exc


def workflow_from_ga(text: str) -> Workflow:
    """Import a workflow from ``.ga`` JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkflowValidationError(f"invalid workflow JSON: {exc}") from exc
    return workflow_from_dict(document)
