"""The Galaxy instance facade (admin + API surface).

Mirrors the integration surface the paper uses: an instance is
configured with an ``admin_users`` list (Section 4's config-file
change), admins get an API key, tool installation requires admin
credentials, and workflows are invoked through the API with a key.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Optional

from repro.errors import GalaxyError
from repro.galaxy.history import History
from repro.galaxy.planemo import PlanemoRunner
from repro.galaxy.tools import Tool, ToolShed, default_toolshed
from repro.galaxy.workflow import Invocation, Workflow
from repro.sim.engine import SimulationEngine


class GalaxyInstance:
    """A configured Galaxy server.

    Args:
        admin_users: Admin email addresses (the ``admin_users`` config
            parameter the paper edits).
        engine: Optional shared simulation engine for invocations.
        preinstall_tools: Install the full built-in shed up front, as
            the paper's AMI preparation does.
    """

    def __init__(
        self,
        admin_users: List[str],
        engine: Optional[SimulationEngine] = None,
        preinstall_tools: bool = True,
    ) -> None:
        if not admin_users:
            raise GalaxyError("Galaxy needs at least one admin user configured")
        self._admins = set(admin_users)
        self._api_keys: Dict[str, str] = {
            email: self._make_key(email) for email in admin_users
        }
        self.toolshed: ToolShed = default_toolshed() if preinstall_tools else ToolShed()
        self._runner = PlanemoRunner(toolshed=self.toolshed, engine=engine)
        self._histories: Dict[str, History] = {}
        self._workflows: Dict[str, Workflow] = {}
        self._history_counter = itertools.count()

    @staticmethod
    def _make_key(email: str) -> str:
        return hashlib.sha256(f"galaxy-api:{email}".encode("utf-8")).hexdigest()[:32]

    # ------------------------------------------------------------------
    # Auth
    # ------------------------------------------------------------------
    def api_key_for(self, email: str) -> str:
        """Return the API key for an admin user.

        Raises:
            GalaxyError: If the user is not an admin.
        """
        if email not in self._admins:
            raise GalaxyError(f"user {email!r} is not in admin_users")
        return self._api_keys[email]

    def _check_key(self, api_key: str) -> None:
        if api_key not in self._api_keys.values():
            raise GalaxyError("invalid Galaxy API key")

    # ------------------------------------------------------------------
    # Admin operations
    # ------------------------------------------------------------------
    def install_tool(self, api_key: str, tool: Tool) -> None:
        """Install a tool (admin only)."""
        self._check_key(api_key)
        self.toolshed.install(tool)

    def register_workflow(self, api_key: str, workflow: Workflow) -> None:
        """Register a workflow definition under its name."""
        self._check_key(api_key)
        self._workflows[workflow.name] = workflow

    # ------------------------------------------------------------------
    # API operations
    # ------------------------------------------------------------------
    def create_history(self, api_key: str, name: str = "") -> History:
        """Create a named history."""
        self._check_key(api_key)
        history = History(name or f"history-{next(self._history_counter)}")
        self._histories[history.name] = history
        return history

    def history(self, name: str) -> History:
        """Return a history by name."""
        history = self._histories.get(name)
        if history is None:
            raise GalaxyError(f"no history named {name!r}")
        return history

    def invoke_workflow(
        self,
        api_key: str,
        workflow_name: str,
        history: Optional[History] = None,
        execute_payloads: bool = True,
    ) -> Invocation:
        """Invoke a registered workflow through the API."""
        self._check_key(api_key)
        workflow = self._workflows.get(workflow_name)
        if workflow is None:
            known = ", ".join(sorted(self._workflows)) or "<none>"
            raise GalaxyError(
                f"no workflow named {workflow_name!r}; registered: {known}"
            )
        return self._runner.run(
            workflow, history=history, execute_payloads=execute_payloads
        )

    def workflows(self) -> List[str]:
        """Registered workflow names, sorted."""
        return sorted(self._workflows)
