"""Job execution: running workflow steps in simulated time.

The :class:`JobRunner` drives an :class:`~repro.galaxy.workflow.Invocation`
serially: each step becomes a :class:`Job` that completes after the
step's configured duration, at which point the tool's real payload runs
and its outputs land in the invocation and the history.  The runner can
be paused (spot interruption) and resumed or reset, which is the
machinery the workload layer builds checkpoint semantics on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import JobError
from repro.galaxy.history import History
from repro.galaxy.tools import ToolShed
from repro.galaxy.workflow import Invocation, StepState, WorkflowStep
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event


class JobState(enum.Enum):
    """Lifecycle of one step-execution job."""

    QUEUED = "queued"
    RUNNING = "running"
    OK = "ok"
    ERROR = "error"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """One scheduled step execution.

    Attributes:
        job_id: Unique id.
        invocation_id: Owning invocation.
        step_label: The step being executed.
        state: Current job state.
        started_at: Virtual start time.
        finished_at: Virtual completion time, when terminal.
    """

    job_id: str
    invocation_id: str
    step_label: str
    state: JobState = JobState.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None


class JobRunner:
    """Serial executor of one invocation on a simulation engine.

    Args:
        engine: Clock/event source.
        toolshed: Where tools are resolved at execution time.
        history: Destination for step outputs.
        execute_payloads: When false, tools are resolved (so missing
            tools still fail fast) but their runners are skipped —
            experiments sweeping thousands of steps use this to stay
            fast while examples/tests run the real payloads.
        on_step_complete: Callback ``(step_label, outputs)`` after each
            successful step — the checkpoint hook.
        on_finished: Callback ``(invocation)`` when the last step ends.
    """

    _job_counter = itertools.count()

    def __init__(
        self,
        engine: SimulationEngine,
        toolshed: ToolShed,
        history: History,
        execute_payloads: bool = True,
        on_step_complete: Optional[Callable[[str, Dict[str, Any]], None]] = None,
        on_finished: Optional[Callable[[Invocation], None]] = None,
    ) -> None:
        self._engine = engine
        self._toolshed = toolshed
        self._history = history
        self._execute_payloads = execute_payloads
        self._on_step_complete = on_step_complete
        self._on_finished = on_finished
        self._invocation: Optional[Invocation] = None
        self._pending_event: Optional[Event] = None
        self._current_job: Optional[Job] = None
        self.jobs: List[Job] = []
        self._paused = False

    @property
    def invocation(self) -> Optional[Invocation]:
        """The invocation being executed, if any."""
        return self._invocation

    @property
    def running(self) -> bool:
        """Whether a step is currently in flight."""
        return self._pending_event is not None

    def start(self, invocation: Invocation) -> None:
        """Begin (or resume) executing *invocation* from its next step.

        Raises:
            JobError: If the runner is already executing something.
        """
        if self.running:
            raise JobError("runner is already executing an invocation")
        self._invocation = invocation
        self._paused = False
        self._schedule_next()

    def pause(self) -> None:
        """Stop after abandoning the in-flight step (spot interruption).

        The in-flight step's partial work is lost — its state returns
        to NEW — matching how an interrupted instance loses the step it
        was computing.  Completed steps keep their results.
        """
        self._paused = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._current_job is not None and self._current_job.state is JobState.RUNNING:
            self._current_job.state = JobState.CANCELLED
            self._current_job.finished_at = self._engine.now
            assert self._invocation is not None
            self._invocation.results[self._current_job.step_label].state = StepState.NEW
            self._current_job = None

    def resume(self) -> None:
        """Continue from the next incomplete step after a pause."""
        if self._invocation is None:
            raise JobError("nothing to resume; start an invocation first")
        if self.running:
            raise JobError("runner is already executing")
        self._paused = False
        self._schedule_next()

    def _schedule_next(self) -> None:
        assert self._invocation is not None
        invocation = self._invocation
        step = invocation.next_step()
        if step is None:
            if self._on_finished is not None:
                self._on_finished(invocation)
            return
        job = Job(
            job_id=f"job-{next(JobRunner._job_counter):07d}",
            invocation_id=invocation.invocation_id,
            step_label=step.label,
            state=JobState.RUNNING,
            started_at=self._engine.now,
        )
        self.jobs.append(job)
        self._current_job = job
        result = invocation.results[step.label]
        result.state = StepState.RUNNING
        result.started_at = self._engine.now
        self._pending_event = self._engine.call_in(
            step.duration,
            lambda: self._complete_step(step, job),
            label=f"galaxy:{invocation.invocation_id}:{step.label}",
        )

    def _complete_step(self, step: WorkflowStep, job: Job) -> None:
        assert self._invocation is not None
        invocation = self._invocation
        self._pending_event = None
        self._current_job = None
        result = invocation.results[step.label]
        tool = self._toolshed.get(step.tool_id)
        outputs: Dict[str, Any] = {}
        if self._execute_payloads:
            try:
                outputs = tool.run(invocation.resolve_params(step))
            except Exception as exc:
                result.state = StepState.ERROR
                result.error = str(exc)
                result.finished_at = self._engine.now
                job.state = JobState.ERROR
                job.finished_at = self._engine.now
                if self._on_finished is not None:
                    self._on_finished(invocation)
                return
        result.state = StepState.OK
        result.outputs = outputs
        result.finished_at = self._engine.now
        job.state = JobState.OK
        job.finished_at = self._engine.now
        for name, value in outputs.items():
            self._history.add(
                name=f"{step.label}/{name}",
                content=value,
                created_at=self._engine.now,
                step_label=step.label,
                extension=name if name in ("fastq", "fasta", "vcf") else "data",
            )
        if self._on_step_complete is not None:
            self._on_step_complete(step.label, outputs)
        if not self._paused:
            self._schedule_next()
