"""SpotVerse reproduction library.

A production-quality reimplementation of the MIDDLEWARE 2024 paper
*"SpotVerse: Optimizing Bioinformatics Workflows with Multi-Region Spot
Instances in Galaxy and Beyond"*, built on a fully simulated AWS
substrate so every experiment in the paper can be regenerated offline.

Quickstart::

    from repro import CloudProvider, SpotVerse, SpotVerseConfig
    from repro.workloads import standard_general_workload

    provider = CloudProvider(seed=42)
    spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
    result = spotverse.run([standard_general_workload(f"w{i}") for i in range(8)])
    print(result.summary())
"""

from repro.cloud.provider import CloudProvider
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["CloudProvider", "ReproError", "__version__"]

try:  # Core package may not exist yet during incremental builds.
    from repro.core.config import SpotVerseConfig  # noqa: F401
    from repro.core.spotverse import SpotVerse  # noqa: F401

    __all__ += ["SpotVerse", "SpotVerseConfig"]
except ImportError:  # pragma: no cover
    pass
