"""The ``spotverse`` command-line interface.

Subcommands::

    spotverse recommend   # where would SpotVerse place work right now?
    spotverse run         # run a workload fleet under a strategy
    spotverse obs         # run with telemetry: JSONL event stream + run report
    spotverse experiment  # regenerate one of the paper's tables/figures
    spotverse report      # regenerate every experiment
    spotverse datasets    # summarize the synthetic spot datasets
    spotverse chaos       # fault-injection campaigns + resilience scorecards
    spotverse tenants     # multi-tenant fleet: roster + per-tenant scorecard

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.chaos.runner import POLICY_NAMES as CHAOS_POLICY_NAMES
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.spotverse import SpotVerse
from repro.errors import ReproError
from repro.experiments.report_all import ALL_EXPERIMENTS, run_all
from repro.experiments.reporting import render_table
from repro.strategies import (
    NaiveMultiRegionPolicy,
    OnDemandPolicy,
    SingleRegionPolicy,
    SkyPilotPolicy,
)
from repro.workloads import (
    genome_reconstruction_workload,
    ngs_preprocessing_workload,
    standard_general_workload,
    synthetic_workload,
)

WORKLOAD_FACTORIES = {
    "qiime": standard_general_workload,
    "genome": genome_reconstruction_workload,
    "ngs": ngs_preprocessing_workload,
    "synthetic": synthetic_workload,
}

BASELINE_POLICIES = {
    "single-region": lambda args: SingleRegionPolicy(
        region=args.start_region, instance_type=args.instance_type
    ),
    "on-demand": lambda args: OnDemandPolicy(instance_type=args.instance_type),
    "skypilot": lambda args: SkyPilotPolicy(instance_type=args.instance_type),
    "naive-multi-region": lambda args: NaiveMultiRegionPolicy(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spotverse",
        description="SpotVerse reproduction: multi-region spot middleware on a simulated AWS.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    recommend = sub.add_parser("recommend", help="show SpotVerse's current region ranking")
    recommend.add_argument("--instance-type", default="m5.xlarge")
    recommend.add_argument("--threshold", type=float, default=6.0)
    recommend.add_argument("--max-regions", type=int, default=4)
    recommend.add_argument("--seed", type=int, default=42)
    recommend.add_argument(
        "--no-placement-score", action="store_true",
        help="score on stability only (providers without a placement score)",
    )
    recommend.add_argument(
        "--no-stability-score", action="store_true",
        help="score on placement only",
    )

    run = sub.add_parser("run", help="run a workload fleet under a strategy")
    run.add_argument("--strategy", default="spotverse",
                     choices=["spotverse"] + sorted(BASELINE_POLICIES))
    run.add_argument("--workload", default="genome", choices=sorted(WORKLOAD_FACTORIES))
    run.add_argument("--workloads", type=int, default=10, help="fleet size")
    run.add_argument("--duration-hours", type=float, default=10.5)
    run.add_argument("--instance-type", default="m5.xlarge")
    run.add_argument("--threshold", type=float, default=6.0)
    run.add_argument("--start-region", default=None)
    run.add_argument("--no-initial-distribution", action="store_true")
    run.add_argument("--max-hours", type=float, default=160.0)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--export-csv", default=None, metavar="PATH",
                     help="write the per-workload timeline as CSV")
    run.add_argument("--export-json", default=None, metavar="PATH",
                     help="write the timeline + aggregates as JSON")
    run.add_argument("--lifelines", action="store_true",
                     help="print per-workload ASCII lifelines after the summary")

    obs = sub.add_parser(
        "obs",
        help="run a fleet with telemetry on: JSONL event stream + per-run report",
    )
    obs.add_argument("--strategy", default="spotverse",
                     choices=["spotverse"] + sorted(BASELINE_POLICIES))
    obs.add_argument("--workload", default="genome", choices=sorted(WORKLOAD_FACTORIES))
    obs.add_argument("--workloads", type=int, default=12, help="fleet size")
    obs.add_argument("--duration-hours", type=float, default=10.5)
    obs.add_argument("--instance-type", default="m5.xlarge")
    obs.add_argument("--threshold", type=float, default=6.0)
    obs.add_argument("--start-region", default=None)
    obs.add_argument("--no-initial-distribution", action="store_true")
    obs.add_argument("--max-hours", type=float, default=160.0)
    obs.add_argument("--seed", type=int, default=42)
    obs.add_argument("--events", default=None, metavar="PATH",
                     help="write the JSONL event stream (events + metrics snapshot)")
    obs.add_argument("--from-events", default=None, metavar="PATH",
                     help="render a report from an existing JSONL stream; no fleet runs")
    obs.add_argument("--gantt-width", type=int, default=64,
                     help="character width of the span timeline")
    obs.add_argument("--profile", action="store_true",
                     help="also print the engine's wall-clock profile "
                          "(events/sec, hottest callback labels)")
    obs_sub = obs.add_subparsers(
        dest="obs_command", metavar="{explain,markets,profile,trace,slo,watch}"
    )
    explain = obs_sub.add_parser(
        "explain",
        help="render one workload's causal chain (decisions, interruptions, "
             "migrations) from a saved JSONL stream; a DAG id renders the "
             "per-step chain across every stage",
    )
    explain.add_argument("workload_id",
                         help="workload to explain, e.g. wl-003; a DAG id "
                              "(e.g. run1) matches all of its step stages")
    explain.add_argument("--from-events", required=True, metavar="PATH",
                         help="JSONL stream written by `spotverse obs --events PATH`")
    markets = obs_sub.add_parser(
        "markets",
        help="per-region market sparkline tables with anomaly annotations",
    )
    markets.add_argument("--from-events", default=None, metavar="PATH",
                         help="read market series from a saved JSONL stream "
                              "instead of simulating fresh markets")
    markets.add_argument("--days", type=float, default=3.0,
                         help="days of fresh market simulation (ignored with --from-events)")
    markets.add_argument("--instance-type", default="m5.xlarge",
                         help="restrict tables to one instance type ('' for all)")
    markets.add_argument("--seed", type=int, default=42)
    markets.add_argument("--width", type=int, default=32,
                         help="character width of the sparklines")
    profile = obs_sub.add_parser(
        "profile",
        help="attributed engine hot-path profile: wall time, event counts, and "
             "heap churn per label group and owning subsystem",
    )
    profile.add_argument("--top", type=int, default=5,
                         help="how many hot label groups to list")
    profile.add_argument("--from-profile", default=None, metavar="PATH",
                         help="render a committed PROFILE_<name>.json artifact; "
                              "no fleet runs")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="also write the profile artifact as JSON")
    trace = obs_sub.add_parser(
        "trace",
        help="render one workload's cross-service causal tree: "
             "submit -> placed -> (interrupt -> reacquire)* -> done, "
             "with per-hop sim-time latency and the critical path",
    )
    trace.add_argument("workload_id", help="workload to trace, e.g. wl-003")
    trace.add_argument("--chaos", action="store_true",
                       help="run under the default chaos campaign (controller kills "
                            "excluded) so retry and dead-letter hops appear")
    trace.add_argument("--json", default=None, metavar="PATH",
                       help="also write the workload's recorded hops as JSON")
    slo = obs_sub.add_parser(
        "slo",
        help="evaluate sim-time latency SLOs into a scorecard; exits 1 on breach",
    )
    slo.add_argument("--spec", default=None, metavar="PATH",
                     help="SLO spec JSON (default: the built-in fleet objectives)")
    slo.add_argument("--from-events", default=None, metavar="PATH",
                     help="score a saved JSONL stream instead of running a fleet")
    slo.add_argument("--export-metrics", default=None, metavar="PATH",
                     help="write the run's metrics in Prometheus text exposition "
                          "format (live runs only)")
    slo.add_argument("--json", default=None, metavar="PATH",
                     help="also write the scorecard as JSON")
    watch = obs_sub.add_parser(
        "watch",
        help="refreshing terminal dashboard over a live run or a growing "
             "segmented stream: fleet rollup, window rates, SLO status, "
             "anomaly/violation feed",
    )
    watch.add_argument("--from-events", default=None, metavar="PATH",
                       help="render a snapshot of a finished JSONL stream")
    watch.add_argument("--dir", default=None, metavar="DIR", dest="stream_dir",
                       help="tail a segmented stream directory "
                            "(written live by the observability plane)")
    watch.add_argument("--live", action="store_true",
                       help="run the fleet the parent obs flags describe and "
                            "refresh the dashboard as it executes")
    watch.add_argument("--once", action="store_true",
                       help="render a single snapshot and exit (CI mode)")
    watch.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                       help="wall-clock refresh interval when following a "
                            "growing stream")
    watch.add_argument("--refresh-hours", type=float, default=6.0,
                       help="sim-hours between dashboard refreshes with --live")
    watch.add_argument("--window-hours", type=float, default=1.0,
                       help="tumbling aggregation window width in sim-hours")
    watch.add_argument("--show-windows", type=int, default=6,
                       help="recent windows listed in the rate table")
    watch.add_argument("--show-feed", type=int, default=8,
                       help="feed entries listed")

    experiment = sub.add_parser("experiment", help="regenerate one paper experiment")
    experiment.add_argument(
        "experiment_id",
        choices=[experiment_id for experiment_id, _, _ in ALL_EXPERIMENTS],
    )
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent experiment arms out over N worker processes",
    )

    report = sub.add_parser("report", help="regenerate every paper experiment")
    report.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent experiment arms out over N worker processes",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection campaigns and verify resilience invariants",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="run one campaign against one policy; exits 1 on invariant violations",
    )
    chaos_run.add_argument(
        "--policy", default="spotverse",
        choices=sorted(CHAOS_POLICY_NAMES),
    )
    chaos_run.add_argument(
        "--campaign", default=None, metavar="PATH",
        help="campaign spec JSON (default: the built-in default campaign)",
    )
    chaos_run.add_argument(
        "--random", type=int, default=None, metavar="SEED",
        help="generate a randomised campaign from SEED instead of --campaign",
    )
    chaos_run.add_argument("--seed", type=int, default=11,
                           help="master engine seed (markets + chaos streams)")
    chaos_run.add_argument("--max-hours", type=float, default=72.0)
    chaos_run.add_argument(
        "--verify-resume", action="store_true",
        help="with controller-kill injections, also require bit-identical "
             "results versus an unkilled run of the same campaign",
    )
    chaos_run.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the scorecard JSON (replayable: same seed, same bytes)",
    )
    chaos_run.add_argument(
        "--export-stream", default=None, metavar="DIR",
        help="stream the run's telemetry into segmented JSONL under DIR "
             "while it executes (tail it with `spotverse obs watch --dir DIR`)",
    )
    chaos_run.add_argument(
        "--blackbox", default=None, metavar="DIR",
        help="arm a flight recorder writing BLACKBOX_*.json artifacts under "
             "DIR on invariant breach, dead-letter, or engine exception "
             "(plus a run-end snapshot)",
    )
    chaos_run.add_argument(
        "--tenants", type=int, default=None, metavar="N",
        help="run the campaign through the multi-tenant control plane with N "
             "tenants (fair-share admission; per-tenant quota/fairness "
             "invariants join the scorecard)",
    )
    chaos_report = chaos_sub.add_parser(
        "report",
        help="render a saved scorecard JSON written by `chaos run --export`",
    )
    chaos_report.add_argument("scorecard", metavar="PATH")
    chaos_report.add_argument(
        "--workload", default=None, metavar="ID",
        help="show one workload's chaos outcome instead of the full scorecard",
    )

    tenants = sub.add_parser(
        "tenants",
        help="run a multi-tenant fleet: tenant roster + per-tenant scorecard",
    )
    tenants.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="number of tenants (distinct fair-share weights, quota 2, "
             "two workloads each)",
    )
    tenants.add_argument(
        "--policy", default="spotverse", choices=sorted(CHAOS_POLICY_NAMES),
    )
    tenants.add_argument("--seed", type=int, default=11)
    tenants.add_argument("--max-hours", type=float, default=72.0)
    tenants.add_argument(
        "--n-shards", type=int, default=1,
        help="state-store shard count (scans and flushes stay O(shard))",
    )
    tenants.add_argument(
        "--storm", action="store_true",
        help="inject the tenant reclaim-storm campaign during the run",
    )
    tenants.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the per-tenant scorecard JSON",
    )

    datasets = sub.add_parser("datasets", help="summarize the synthetic spot datasets")
    datasets.add_argument("--days", type=int, default=30)
    datasets.add_argument("--instance-type", default="m5.2xlarge")
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument(
        "--save", default=None, metavar="DIR",
        help="also write advisor.jsonl and placement.jsonl archives to DIR",
    )

    return parser


def _cmd_recommend(args: argparse.Namespace) -> int:
    provider = CloudProvider(seed=args.seed)
    config = SpotVerseConfig(
        instance_type=args.instance_type,
        score_threshold=args.threshold,
        max_regions=args.max_regions,
        use_placement_score=not args.no_placement_score,
        use_stability_score=not args.no_stability_score,
    )
    spotverse = SpotVerse(provider, config)
    recommended = spotverse.recommended_regions()
    if not recommended:
        placement = spotverse.recommendation()
        print(
            f"No region meets threshold {args.threshold:g} for "
            f"{args.instance_type}; SpotVerse recommends ON-DEMAND in "
            f"{placement.region}."
        )
        return 0
    rows = [
        [
            m.region,
            f"{m.spot_price:.4f}",
            f"{m.od_price:.4f}",
            f"{m.placement_score:.1f}",
            m.stability_score,
            f"{m.combined_score:.1f}",
            f"{100 * m.savings_fraction:.0f}%",
        ]
        for m in recommended
    ]
    print(
        render_table(
            ["region", "spot $/h", "od $/h", "placement", "stability", "combined", "savings"],
            rows,
            title=f"SpotVerse top regions for {args.instance_type} "
            f"(threshold {args.threshold:g}, cheapest first)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    factory = WORKLOAD_FACTORIES[args.workload]
    fleet = [
        factory(f"wl-{i:03d}", duration_hours=args.duration_hours)
        for i in range(args.workloads)
    ]
    config = SpotVerseConfig(
        instance_type=args.instance_type,
        score_threshold=args.threshold,
        initial_distribution=not args.no_initial_distribution,
        start_region=args.start_region,
    )
    if args.strategy == "spotverse":
        provider = CloudProvider(seed=args.seed)
        result = SpotVerse(provider, config).run(fleet, max_hours=args.max_hours)
    else:
        provider = CloudProvider(seed=args.seed)
        provider.warmup_markets(48)
        policy = BASELINE_POLICIES[args.strategy](args)
        controller = FleetController(provider, policy, config)
        result = controller.run(fleet, max_hours=args.max_hours)
        controller.teardown()
    print(result.summary())
    if args.lifelines:
        from repro.experiments.gantt import render_lifelines

        print()
        print(render_lifelines(result))
    if args.export_csv or args.export_json:
        from repro.experiments import timeline

        if args.export_csv:
            with open(args.export_csv, "w") as handle:
                handle.write(timeline.to_csv(result))
            print(f"timeline CSV written to {args.export_csv}")
        if args.export_json:
            with open(args.export_json, "w") as handle:
                handle.write(timeline.to_json(result))
            print(f"timeline JSON written to {args.export_json}")
    return 0 if result.all_complete else 1


def _load_stream(path: str):
    """Load a JSONL telemetry stream, or print a clear error and return None.

    Empty and truncated/corrupt streams both fail here — the obs
    subcommands promise a message and a nonzero exit, never a traceback.
    """
    from repro.obs import TelemetryStream

    try:
        stream = TelemetryStream.load(path)
    except OSError as exc:
        print(f"error: cannot read event stream {path!r}: {exc}")
        return None
    except ReproError as exc:
        print(f"error: {exc}")
        return None
    if stream.empty:
        print(f"error: event stream {path!r} is empty (was the export interrupted?)")
        return None
    return stream


def _cmd_obs_explain(args: argparse.Namespace) -> int:
    from repro.obs import render_explanation

    stream = _load_stream(args.from_events)
    if stream is None:
        return 2
    try:
        print(render_explanation(stream.events, args.workload_id))
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    return 0


def _cmd_obs_markets(args: argparse.Namespace) -> int:
    from repro.obs.export import render_market_tables

    instance_type = args.instance_type or None
    if args.from_events:
        stream = _load_stream(args.from_events)
        if stream is None:
            return 2
        store = stream.timeseries()
        if not store.names():
            print(
                f"error: event stream {args.from_events!r} has no market series "
                "(export one with `spotverse obs --events PATH`)"
            )
            return 2
        print(
            render_market_tables(
                store,
                events=stream.events,
                width=args.width,
                instance_type=instance_type,
            )
        )
        return 0
    # No stream given: simulate fresh markets under the observatory —
    # no fleet, just prices/scores/hazard evolving and being sampled.
    provider = CloudProvider(seed=args.seed, observatory=True)
    provider.engine.run_until(args.days * 24 * 3600.0)
    print(
        f"{args.days:g} day(s) of simulated markets "
        f"(seed {args.seed}, anomalies {len(provider.observatory.anomalies)}):"
    )
    print(
        render_market_tables(
            provider.telemetry.timeseries,
            events=list(provider.telemetry.bus),
            width=args.width,
            instance_type=instance_type,
        )
    )
    provider.shutdown()
    return 0


def _run_obs_fleet(args: argparse.Namespace, provider: CloudProvider):
    """Run the fleet the parent ``obs`` flags describe on *provider*."""
    factory = WORKLOAD_FACTORIES[args.workload]
    fleet = [
        factory(f"wl-{i:03d}", duration_hours=args.duration_hours)
        for i in range(args.workloads)
    ]
    config = SpotVerseConfig(
        instance_type=args.instance_type,
        score_threshold=args.threshold,
        initial_distribution=not args.no_initial_distribution,
        start_region=args.start_region,
    )
    if args.strategy == "spotverse":
        return SpotVerse(provider, config).run(fleet, max_hours=args.max_hours)
    provider.warmup_markets(48)
    policy = BASELINE_POLICIES[args.strategy](args)
    controller = FleetController(provider, policy, config)
    result = controller.run(fleet, max_hours=args.max_hours)
    controller.teardown()
    return result


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs.profiler import HotPathProfile, attach_profiler

    if args.from_profile:
        try:
            with open(args.from_profile) as handle:
                payload = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read profile {args.from_profile!r}: {exc}")
            return 2
        except ValueError as exc:
            print(f"error: profile {args.from_profile!r} is not valid JSON: {exc}")
            return 2
        profile = HotPathProfile.from_payload(payload)
        if not profile.entries():
            print(f"error: profile {args.from_profile!r} has no entries")
            return 2
        print(profile.report(top=args.top))
        return 0

    provider = CloudProvider(seed=args.seed)
    profiler = attach_profiler(provider.engine)
    result = _run_obs_fleet(args, provider)
    profile = profiler.profile()
    print(result.summary())
    print()
    print(profile.report(top=args.top))
    if args.json:
        try:
            with open(args.json, "w") as handle:
                json.dump(profile.to_payload(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write profile {args.json!r}: {exc}")
            return 2
        print()
        print(f"profile artifact written to {args.json}")
    return 0 if result.all_complete else 1


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.tracing import render_trace

    provider = CloudProvider(seed=args.seed, tracing=True)
    if args.chaos:
        from repro.chaos import ChaosController, default_campaign

        # Controller kills are process-level faults the chaos runner
        # executes; a single in-process run traces everything else.
        ChaosController(provider, default_campaign().without_kills()).install()
    _run_obs_fleet(args, provider)
    tracer = provider.telemetry.tracer
    hops = tracer.hops_for(args.workload_id)
    if not hops:
        known = ", ".join(sorted(tracer.trace_ids())) or "none"
        print(
            f"error: no trace recorded for workload {args.workload_id!r} "
            f"(known traces: {known})"
        )
        return 2
    print(render_trace(hops, args.workload_id))
    if args.json:
        try:
            with open(args.json, "w") as handle:
                json.dump(
                    [hop.to_dict() for hop in hops], handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write hops {args.json!r}: {exc}")
            return 2
        print()
        print(f"hop records written to {args.json}")
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    import json

    from repro.obs.slo import SLOSpec, default_slo_spec, evaluate_slo_from_events

    spec = default_slo_spec()
    if args.spec:
        try:
            with open(args.spec) as handle:
                payload = json.load(handle)
            spec = SLOSpec.from_dict(payload)
        except OSError as exc:
            print(f"error: cannot read SLO spec {args.spec!r}: {exc}")
            return 2
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            print(f"error: SLO spec {args.spec!r} is not a valid spec: {exc}")
            return 2

    if args.from_events:
        if args.export_metrics:
            print("error: --export-metrics needs a live run (drop --from-events)")
            return 2
        stream = _load_stream(args.from_events)
        if stream is None:
            return 2
        scorecard = evaluate_slo_from_events(spec, stream.events)
        print(scorecard.render())
    else:
        provider = CloudProvider(seed=args.seed)
        result = _run_obs_fleet(args, provider)
        scorecard = evaluate_slo_from_events(spec, list(provider.telemetry.bus))
        print(result.summary())
        print()
        print(scorecard.render())
        if args.export_metrics:
            try:
                with open(args.export_metrics, "w") as handle:
                    handle.write(provider.telemetry.metrics.exposition())
            except OSError as exc:
                print(f"error: cannot write metrics {args.export_metrics!r}: {exc}")
                return 2
            print()
            print(f"metrics exposition written to {args.export_metrics}")
    if args.json:
        try:
            with open(args.json, "w") as handle:
                json.dump(scorecard.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write scorecard {args.json!r}: {exc}")
            return 2
        print()
        print(f"scorecard written to {args.json}")
    return 0 if scorecard.all_passed else 1


def _stream_complete(directory: str) -> bool:
    """Whether a segmented stream's manifest says the run ended."""
    import json
    import os

    try:
        with open(os.path.join(directory, "manifest.json")) as handle:
            return bool(json.load(handle).get("complete"))
    except (OSError, ValueError):
        return False


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.obs.watch import WatchState, render_dashboard
    from repro.sim.clock import HOUR

    sources = [bool(args.from_events), bool(args.stream_dir), args.live]
    if sum(sources) != 1:
        print("error: pick exactly one of --from-events, --dir, or --live")
        return 2
    window_seconds = args.window_hours * HOUR

    if args.live:
        provider = CloudProvider(seed=args.seed, observatory=True)
        state = WatchState(window_seconds=window_seconds)
        provider.telemetry.bus.subscribe(state.observe)

        def _refresh() -> None:
            print(render_dashboard(
                state,
                source=f"live run (seed {args.seed})",
                show_windows=args.show_windows,
                show_feed=args.show_feed,
            ))
            print()

        if not args.once:
            provider.engine.every(
                args.refresh_hours * HOUR, _refresh, label="obs-watch-refresh"
            )
        result = _run_obs_fleet(args, provider)
        state.complete = True
        print(render_dashboard(
            state,
            source=f"live run (seed {args.seed}, finished)",
            show_windows=args.show_windows,
            show_feed=args.show_feed,
        ))
        return 0 if result.all_complete else 1

    path = args.from_events or args.stream_dir
    if args.from_events or args.once:
        stream = _load_stream(path)
        if stream is None:
            return 2
        state = WatchState.from_stream(stream, window_seconds=window_seconds)
        state.complete = bool(args.from_events) or _stream_complete(path)
        print(render_dashboard(
            state,
            source=path,
            show_windows=args.show_windows,
            show_feed=args.show_feed,
        ))
        return 0

    # Follow mode over a growing segmented stream: re-fold and re-render
    # until the manifest reports completion.  Re-loading is O(stream) but
    # the segment caps keep streams small at interactive scales.
    if not os.path.exists(path):
        print(f"error: cannot read event stream {path!r}: no such directory")
        return 2
    while True:
        stream = _load_stream(path)
        complete = _stream_complete(path)
        if stream is not None:
            state = WatchState.from_stream(stream, window_seconds=window_seconds)
            state.complete = complete
            print(render_dashboard(
                state,
                source=path,
                show_windows=args.show_windows,
                show_feed=args.show_feed,
            ))
            print()
        if complete:
            return 0 if stream is not None else 2
        time.sleep(max(0.05, args.interval))


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import RunReport, Telemetry, write_jsonl

    obs_command = getattr(args, "obs_command", None)
    if obs_command == "explain":
        return _cmd_obs_explain(args)
    if obs_command == "markets":
        return _cmd_obs_markets(args)
    if obs_command == "profile":
        return _cmd_obs_profile(args)
    if obs_command == "trace":
        return _cmd_obs_trace(args)
    if obs_command == "slo":
        return _cmd_obs_slo(args)
    if obs_command == "watch":
        return _cmd_obs_watch(args)

    if args.from_events:
        stream = _load_stream(args.from_events)
        if stream is None:
            return 2
        report = RunReport(stream.events, stream.samples)
        print(report.render(gantt_width=args.gantt_width))
        return 0

    telemetry = Telemetry()
    provider = CloudProvider(seed=args.seed, telemetry=telemetry, observatory=True)
    if args.profile:
        provider.engine.trace = True
    result = _run_obs_fleet(args, provider)

    print(result.summary())
    print()
    print(RunReport.from_telemetry(telemetry).render(gantt_width=args.gantt_width))
    if args.events:
        try:
            lines = write_jsonl(args.events, telemetry)
        except OSError as exc:
            print(f"error: cannot write event stream {args.events!r}: {exc}")
            return 2
        print()
        print(f"event stream written to {args.events} ({lines} lines)")
    if args.profile and provider.engine.tracer is not None:
        print()
        print("engine wall-clock profile:")
        print(provider.engine.tracer.report())
    return 0 if result.all_complete else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import harness

    harness.set_default_jobs(args.jobs)
    for experiment_id, title, runner in ALL_EXPERIMENTS:
        if experiment_id == args.experiment_id:
            print(f"[{experiment_id}] {title}")
            print(runner().render())
            return 0
    return 2  # unreachable: argparse validates choices


def _load_campaign(args: argparse.Namespace):
    """Resolve the campaign for ``chaos run``, or None after an error."""
    import json

    from repro.chaos import CampaignSpec, default_campaign, random_campaign
    from repro.cloud.regions import default_region_catalog

    if args.random is not None and args.campaign is not None:
        print("error: --campaign and --random are mutually exclusive")
        return None
    if args.random is not None:
        regions = tuple(default_region_catalog().names())
        return random_campaign(args.random, regions)
    if args.campaign is None:
        return default_campaign()
    try:
        with open(args.campaign) as handle:
            payload = json.load(handle)
        return CampaignSpec.from_dict(payload)
    except OSError as exc:
        print(f"error: cannot read campaign {args.campaign!r}: {exc}")
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: campaign {args.campaign!r} is not a valid campaign spec: {exc}")
    return None


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import render_scorecard, run_campaign

    campaign = _load_campaign(args)
    if campaign is None:
        return 2
    outcome = run_campaign(
        policy=args.policy,
        campaign=campaign,
        seed=args.seed,
        max_hours=args.max_hours,
        verify_resume_equivalence=args.verify_resume,
        stream_dir=args.export_stream,
        blackbox_dir=args.blackbox,
        tenants=args.tenants,
    )
    print(render_scorecard(outcome.scorecard))
    if args.export_stream:
        print(f"segmented event stream written to {args.export_stream}")
    if args.blackbox:
        print(f"blackbox artifacts written to {args.blackbox}")
    if args.export:
        try:
            with open(args.export, "w") as handle:
                json.dump(outcome.scorecard, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write scorecard {args.export!r}: {exc}")
            return 2
        print(f"scorecard written to {args.export}")
    return 0 if outcome.all_passed else 1


def _cmd_chaos_report(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import render_scorecard

    try:
        with open(args.scorecard) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read scorecard {args.scorecard!r}: {exc}")
        return 2
    if not text.strip():
        print(f"error: scorecard {args.scorecard!r} is empty (was the export interrupted?)")
        return 2
    try:
        scorecard = json.loads(text)
    except ValueError as exc:
        print(f"error: scorecard {args.scorecard!r} is not valid JSON: {exc}")
        return 2
    if not isinstance(scorecard, dict) or "invariants" not in scorecard:
        print(f"error: {args.scorecard!r} is not a chaos scorecard (missing 'invariants')")
        return 2
    if args.workload is not None:
        workloads = scorecard.get("workloads", {})
        entry = workloads.get(args.workload)
        if entry is None:
            known = ", ".join(sorted(workloads)) or "none"
            print(
                f"error: workload {args.workload!r} not in this scorecard "
                f"(known workloads: {known})"
            )
            return 2
        print(f"{args.workload} under campaign {scorecard['campaign']['name']!r}:")
        for key, value in entry.items():
            print(f"  {key:<18s} {value}")
        return 0
    print(render_scorecard(scorecard))
    return 0 if scorecard.get("all_passed") else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "run":
        return _cmd_chaos_run(args)
    return _cmd_chaos_report(args)


def _cmd_tenants(args: argparse.Namespace) -> int:
    import json

    from repro.chaos.runner import (
        _MONITOR_POLICIES,
        DEFAULT_WARMUP_STEPS,
        _make_config,
        _make_policy,
        tenant_fleet,
    )
    from repro.core.monitor import Monitor
    from repro.core.tenancy import MultiTenantController

    config = _make_config(args.policy)
    provider = CloudProvider(seed=args.seed)
    provider.warmup_markets(DEFAULT_WARMUP_STEPS)
    monitor = (
        Monitor(provider, [config.instance_type], collect_interval=config.collect_interval)
        if args.policy in _MONITOR_POLICIES
        else None
    )
    policy = _make_policy(args.policy, config, monitor)
    controller = MultiTenantController(
        provider, policy, config, monitor=monitor, n_shards=args.n_shards
    )
    specs, submissions = tenant_fleet(args.tenants)
    for spec in specs:
        controller.register_tenant(spec)
    chaos = None
    if args.storm:
        from repro.chaos import ChaosController, tenant_storm_campaign

        chaos = ChaosController(provider, tenant_storm_campaign())
        chaos.install()
    for tenant_id, workload in submissions:
        controller.submit(tenant_id, workload)
    result = controller.wait(max_hours=args.max_hours)
    if chaos is not None:
        chaos.deactivate()
    usage = controller.usage()
    print(
        render_table(
            ["tenant", "weight", "quota", "policy"],
            [
                [spec.tenant_id, f"{spec.weight:g}",
                 str(spec.max_in_flight) if spec.max_in_flight else "unlimited",
                 spec.policy or "-"]
                for spec in controller.registry.tenants()
            ],
            title=f"tenant roster ({args.policy}, seed {args.seed}"
            + (", storm" if args.storm else "")
            + f", {args.n_shards} shard{'s' if args.n_shards != 1 else ''})",
        )
    )
    print()
    print(
        render_table(
            ["tenant", "admitted", "done", "in flight", "queued", "throttled"],
            [
                [tenant_id, str(row["admitted"]), str(row["done"]),
                 str(row["in_flight"]), str(row["queued"]), str(row["throttled"])]
                for tenant_id, row in usage.items()
            ],
            title="per-tenant scorecard",
        )
    )
    print(
        f"totals: ${result.total_cost:.2f} "
        f"({len(result.records)} workloads, ended t={result.ended_at:.0f}s)"
    )
    if args.export:
        payload = {
            "policy": args.policy,
            "seed": args.seed,
            "n_shards": args.n_shards,
            "storm": bool(args.storm),
            "tenants": usage,
            "totals": {
                "total_cost": result.total_cost,
                "ended_at": result.ended_at,
                "workloads": len(result.records),
            },
        }
        try:
            with open(args.export, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write scorecard {args.export!r}: {exc}")
            return 2
        print(f"tenant scorecard written to {args.export}")
    provider.shutdown()
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import generate_advisor_dataset, generate_placement_dataset

    advisor = generate_advisor_dataset(
        days=args.days, instance_types=[args.instance_type], seed=args.seed
    )
    placement = generate_placement_dataset(
        days=args.days, instance_types=[args.instance_type], seed=args.seed
    )
    rows = []
    for region in advisor.regions():
        advisor_series = advisor.series(region, args.instance_type)
        placement_series = placement.series(region, args.instance_type)
        mean_freq = sum(r.interruption_freq_pct for r in advisor_series) / len(advisor_series)
        mean_score = sum(r.score for r in placement_series) / len(placement_series)
        rows.append(
            [
                region,
                f"{mean_freq:.1f}%",
                advisor_series[-1].stability_score,
                f"{mean_score:.2f}",
                f"{advisor_series[-1].savings_pct:.0f}%",
            ]
        )
    print(
        render_table(
            ["region", "mean freq", "stability", "mean placement", "savings (latest)"],
            rows,
            title=f"{args.instance_type} over {args.days} days (synthetic advisor + placement)",
        )
    )
    if args.save:
        import pathlib

        from repro.data.persist import save_advisor_dataset, save_placement_dataset

        directory = pathlib.Path(args.save)
        directory.mkdir(parents=True, exist_ok=True)
        advisor_rows = save_advisor_dataset(advisor, directory / "advisor.jsonl")
        placement_rows = save_placement_dataset(
            placement, directory / "placement.jsonl"
        )
        print(
            f"archives written to {directory} "
            f"({advisor_rows} advisor rows, {placement_rows} placement rows)"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "recommend":
            return _cmd_recommend(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "report":
            from repro.experiments import harness

            harness.set_default_jobs(args.jobs)
            run_all()
            return 0
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "tenants":
            return _cmd_tenants(args)
        if args.command == "datasets":
            return _cmd_datasets(args)
    except BrokenPipeError:
        # Output was piped into something that closed early (e.g.
        # ``spotverse report | head``); that is not our error.
        return 0
    return 2  # unreachable: argparse requires a subcommand


if __name__ == "__main__":
    sys.exit(main())
