"""Figure 4: Interruption Frequency and Spot Placement Score analysis.

Reproduces the three panels over a six-month synthetic collection:

* **4a** — per-region Interruption Frequency heatmap for m5.2xlarge
  (daily samples, bucketed like the paper's colour bands);
* **4b** — cross-region average Stability Score trajectories for
  c5/m5/p3 .2xlarge;
* **4c** — cross-region average Spot Placement Score trajectories,
  showing c5/m5 fluctuating regionally while p3 stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.placement import PlacementScoreDataset, generate_placement_dataset
from repro.data.spot_advisor import SpotAdvisorDataset, generate_advisor_dataset
from repro.experiments.reporting import render_table

#: The paper's Figure 4b/4c instance types.
FIGURE4_TYPES = ("c5.2xlarge", "m5.2xlarge", "p3.2xlarge")
HEATMAP_TYPE = "m5.2xlarge"


@dataclass
class MetricsAnalysisResult:
    """Figure 4 reproduction output.

    Attributes:
        advisor: The six-month advisor dataset.
        placement: The six-month placement dataset.
        heatmap: Per-region daily frequency series for m5.2xlarge.
        stability_series: Per-type daily mean Stability Score series.
        placement_series: Per-type daily mean placement series.
        placement_spread: Per-type cross-region spread of mean scores.
    """

    advisor: SpotAdvisorDataset
    placement: PlacementScoreDataset
    heatmap: Dict[str, List[float]]
    stability_series: Dict[str, List[float]]
    placement_series: Dict[str, List[float]]
    placement_spread: Dict[str, float]

    def heatmap_band_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-region day counts in the paper's three colour bands."""
        bands: Dict[str, Dict[str, int]] = {}
        for region, series in self.heatmap.items():
            bands[region] = {
                "<5%": sum(1 for value in series if value < 5),
                "5-20%": sum(1 for value in series if 5 <= value <= 20),
                ">20%": sum(1 for value in series if value > 20),
            }
        return bands

    def render(self) -> str:
        """Text report for all three panels."""
        band_rows = [
            [region, counts["<5%"], counts["5-20%"], counts[">20%"]]
            for region, counts in sorted(self.heatmap_band_counts().items())
        ]
        parts = [
            render_table(
                ["region", "days <5%", "days 5-20%", "days >20%"],
                band_rows,
                title=f"Figure 4a — Interruption Frequency bands ({HEATMAP_TYPE}, "
                f"{self.advisor.days} days)",
            )
        ]
        score_rows = []
        for itype in FIGURE4_TYPES:
            stability = self.stability_series[itype]
            placement = self.placement_series[itype]
            score_rows.append(
                [
                    itype,
                    f"{np.mean(stability):.2f}",
                    f"{np.std(stability):.3f}",
                    f"{np.mean(placement):.2f}",
                    f"{self.placement_spread[itype]:.2f}",
                ]
            )
        parts.append(
            render_table(
                [
                    "type",
                    "mean stability",
                    "stability std",
                    "mean placement",
                    "placement regional spread",
                ],
                score_rows,
                title="Figure 4b/4c — six-month score trajectories",
            )
        )
        return "\n\n".join(parts)


def run_metrics_analysis(days: int = 180, seed: int = 0) -> MetricsAnalysisResult:
    """Generate the datasets and the three panels' series."""
    types = sorted(set(FIGURE4_TYPES) | {HEATMAP_TYPE})
    advisor = generate_advisor_dataset(days=days, instance_types=types, seed=seed)
    placement = generate_placement_dataset(days=days, instance_types=types, seed=seed)
    return MetricsAnalysisResult(
        advisor=advisor,
        placement=placement,
        heatmap=advisor.frequency_heatmap(HEATMAP_TYPE),
        stability_series={
            itype: advisor.average_stability_series(itype) for itype in FIGURE4_TYPES
        },
        placement_series={
            itype: placement.average_score_series(itype) for itype in FIGURE4_TYPES
        },
        placement_spread={
            itype: placement.regional_spread(itype) for itype in FIGURE4_TYPES
        },
    )
