"""Figure 2: spot price diversity across instance types and regions.

Generates 30-day hourly AZ-level price traces for the paper's four
representative types (c5/m5/r5/p3 .2xlarge) and summarises the
diversity the figure visualises: cross-market spread and within-market
fluctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.data.traces import PriceTrace, generate_price_traces, trace_statistics
from repro.experiments.reporting import render_table

#: The paper's Figure 2 instance types.
FIGURE2_TYPES = ("c5.2xlarge", "m5.2xlarge", "r5.2xlarge", "p3.2xlarge")


@dataclass
class PriceDiversityResult:
    """Figure 2 reproduction output.

    Attributes:
        traces: All generated AZ-level traces.
        stats: Per-type summary from :func:`trace_statistics`.
        days: Trace length in days.
    """

    traces: List[PriceTrace]
    stats: Dict[str, Dict[str, float]]
    days: int

    def traces_for(self, instance_type: str) -> List[PriceTrace]:
        """All traces of one type."""
        return [trace for trace in self.traces if trace.instance_type == instance_type]

    def render(self) -> str:
        """Text report mirroring the figure's takeaway."""
        rows = []
        for itype in FIGURE2_TYPES:
            stat = self.stats[itype]
            rows.append(
                [
                    itype,
                    int(stat["markets"]),
                    f"{stat['min_mean_price']:.4f}",
                    f"{stat['max_mean_price']:.4f}",
                    f"{stat['spread_ratio']:.2f}x",
                    f"{100 * stat['mean_cv']:.1f}%",
                ]
            )
        return render_table(
            ["type", "markets", "min mean $/h", "max mean $/h", "spread", "mean CV"],
            rows,
            title=f"Figure 2 — spot price diversity over {self.days} days (region x AZ)",
        )


def run_price_diversity(
    days: int = 30,
    instance_types: Sequence[str] = FIGURE2_TYPES,
    seed: int = 0,
) -> PriceDiversityResult:
    """Generate the Figure 2 traces and their diversity statistics."""
    traces = generate_price_traces(instance_types, days=days, seed=seed)
    return PriceDiversityResult(
        traces=traces, stats=trace_statistics(traces), days=days
    )
