"""Figure 9: impact of the initial workload distribution strategy.

Compares SpotVerse *without* its initial round-robin spread (the
Section 5.2.1 configuration: everything starts in one region and only
migrates on interruption) against the full Algorithm 1 (spread over
the top-R regions from the start), for both workload kinds.

The paper reports, for the standard workload, interruptions dropping
~32 % (69 -> 42) with up to 12 % shorter completion and 11 % lower
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmResult,
    ArmSpec,
    indexed_workload_factory,
    run_arms,
    spotverse_policy,
)
from repro.experiments.reporting import fmt_hours, fmt_money, fmt_pct, pct_change, render_table
from repro.workloads.genome_reconstruction import genome_reconstruction_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload

PAPER_REFERENCE = {
    "standard": {"int_delta_pct": -32.0, "time_delta_pct": -12.0, "cost_delta_pct": -11.0},
    "checkpoint": {"int_delta_pct": -20.0, "time_delta_pct": -12.0, "cost_delta_pct": -11.0},
}

START_REGION = "ca-central-1"


@dataclass
class InitialDistributionResult:
    """Figure 9 reproduction output."""

    arms: Dict[str, ArmResult]
    deltas: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """Text report: concentrated-start vs distributed-start."""
        rows = []
        for kind in ("standard", "checkpoint"):
            concentrated = self.arms[f"{kind}-concentrated"].fleet
            distributed = self.arms[f"{kind}-distributed"].fleet
            measured = self.deltas[kind]
            paper = PAPER_REFERENCE[kind]
            rows.append(
                [
                    kind,
                    f"{concentrated.total_interruptions}->{distributed.total_interruptions}",
                    fmt_pct(measured["int_delta_pct"]),
                    fmt_pct(paper["int_delta_pct"]),
                    f"{fmt_hours(concentrated.makespan_hours)}->"
                    f"{fmt_hours(distributed.makespan_hours)}",
                    fmt_pct(measured["time_delta_pct"]),
                    f"{fmt_money(concentrated.total_cost)}->"
                    f"{fmt_money(distributed.total_cost)}",
                    fmt_pct(measured["cost_delta_pct"]),
                ]
            )
        return render_table(
            [
                "workload",
                "interruptions",
                "d ints",
                "paper",
                "completion",
                "d time",
                "cost",
                "d cost",
            ],
            rows,
            title="Figure 9 — initial distribution strategy "
            "(concentrated start vs Algorithm 1 round-robin spread)",
        )


def run_initial_distribution_experiment(
    n_workloads: int = 40,
    seed: int = 7,
    duration_hours: float = 10.5,
    jobs: Optional[int] = None,
) -> InitialDistributionResult:
    """Run the four Figure 9 arms."""
    concentrated_config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region=START_REGION,
    )
    distributed_config = SpotVerseConfig(instance_type="m5.xlarge")
    factories = {
        "standard": indexed_workload_factory(
            genome_reconstruction_workload, "std-{:02d}", duration_hours=duration_hours
        ),
        "checkpoint": indexed_workload_factory(
            ngs_preprocessing_workload, "ckp-{:02d}", duration_hours=duration_hours
        ),
    }
    specs = []
    for kind, factory in factories.items():
        specs.append(
            ArmSpec(
                name=f"{kind}-concentrated",
                policy_factory=spotverse_policy,
                config=concentrated_config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
        specs.append(
            ArmSpec(
                name=f"{kind}-distributed",
                policy_factory=spotverse_policy,
                config=distributed_config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    arms = run_arms(specs, jobs=jobs)
    deltas: Dict[str, Dict[str, float]] = {}
    for kind in factories:
        concentrated = arms[f"{kind}-concentrated"].fleet
        distributed = arms[f"{kind}-distributed"].fleet
        deltas[kind] = {
            "int_delta_pct": pct_change(
                concentrated.total_interruptions, distributed.total_interruptions
            ),
            "time_delta_pct": pct_change(
                concentrated.makespan_hours, distributed.makespan_hours
            ),
            "cost_delta_pct": pct_change(concentrated.total_cost, distributed.total_cost),
        }
    return InitialDistributionResult(arms=arms, deltas=deltas)
