"""Run every experiment and emit the full reproduction report.

This is the one-command regeneration path for EXPERIMENTS.md::

    python -m repro.experiments.report_all > report.txt

Each section prints the experiment's rendered table (measured next to
the paper's numbers where the driver carries them).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Tuple

from repro.experiments.ablations import (
    run_checkpoint_backend_ablation,
    run_checkpoint_granularity,
    run_deadline_policy_ablation,
    run_fallback_ablation,
    run_migration_ablation,
    run_predictive_policy_ablation,
)
from repro.experiments.initial_distribution import run_initial_distribution_experiment
from repro.experiments.instance_study import run_instance_study
from repro.experiments.metrics_analysis import run_metrics_analysis
from repro.experiments.motivation import run_motivation_experiment
from repro.experiments.price_diversity import run_price_diversity
from repro.experiments.skypilot_comparison import run_skypilot_comparison
from repro.experiments.footprint import run_footprint_study
from repro.experiments.thresholds import run_threshold_study
from repro.experiments.time_patterns import run_time_pattern_study
from repro.experiments.workload_comparison import run_workload_comparison

#: Every experiment in paper order: (id, title, runner).
ALL_EXPERIMENTS: List[Tuple[str, str, Callable[[], object]]] = [
    ("fig2", "Spot price diversity", lambda: run_price_diversity()),
    ("fig3", "Motivational single vs multi-region", lambda: run_motivation_experiment()),
    ("fig4", "Interruption Frequency / Placement Score", lambda: run_metrics_analysis()),
    ("fig7", "SpotVerse vs single-region vs on-demand", lambda: run_workload_comparison()),
    ("fig8+table1", "Instance types, sizes, baseline regions", lambda: run_instance_study()),
    ("fig9", "Initial distribution strategy", lambda: run_initial_distribution_experiment()),
    ("fig10+tables2-3", "Threshold-based allocation", lambda: run_threshold_study()),
    ("table4", "SpotVerse vs SkyPilot", lambda: run_skypilot_comparison()),
    ("ablation-migration", "Random vs cheapest migration", lambda: run_migration_ablation()),
    ("ablation-fallback", "On-demand fallback", lambda: run_fallback_ablation()),
    (
        "ablation-checkpoint",
        "Checkpoint granularity",
        lambda: run_checkpoint_granularity(),
    ),
    (
        "ablation-backend",
        "Checkpoint backend (S3 vs EFS)",
        lambda: run_checkpoint_backend_ablation(),
    ),
    (
        "ablation-predictive",
        "Predictive optimizer",
        lambda: run_predictive_policy_ablation(),
    ),
    (
        "ablation-deadline",
        "Deadline-aware escalation",
        lambda: run_deadline_policy_ablation(),
    ),
    (
        "study-time-patterns",
        "Interruption time patterns (Section 7)",
        lambda: run_time_pattern_study(),
    ),
    (
        "study-footprint",
        "Footprint pressure vs finite capacity pools",
        lambda: run_footprint_study(),
    ),
]


def run_all(stream=None) -> None:
    """Run every experiment, printing each rendered report to *stream*."""
    stream = stream or sys.stdout
    for experiment_id, title, runner in ALL_EXPERIMENTS:
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        print(f"{'=' * 72}", file=stream)
        print(f"[{experiment_id}] {title}  (ran in {elapsed:.1f}s)", file=stream)
        print(f"{'=' * 72}", file=stream)
        print(result.render(), file=stream)
        print(file=stream)


def main() -> int:
    """Console entry point."""
    run_all()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
