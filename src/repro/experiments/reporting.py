"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table.

    Numeric cells are right-aligned; everything is stringified with
    ``str``.  Column widths fit the widest cell.

    >>> print(render_table(["a", "b"], [[1, "x"]], title="T"))
    T
    a | b
    --+--
    1 | x
    """
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace("$", "").replace("%", "").replace("x", "").strip()
        try:
            float(stripped)
        except ValueError:
            return False
        return True

    def format_row(cells: Sequence[str]) -> str:
        formatted = []
        for index, cell in enumerate(cells):
            if is_numeric(cell):
                formatted.append(cell.rjust(widths[index]))
            else:
                formatted.append(cell.ljust(widths[index]))
        return " | ".join(formatted).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in text_rows)
    return "\n".join(lines)


def pct_change(baseline: float, value: float) -> float:
    """Percent change from *baseline* to *value* (negative = reduction)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


def fmt_money(value: float) -> str:
    """Format a dollar amount for tables."""
    return f"${value:.2f}"


def fmt_hours(value: float) -> str:
    """Format an hour count for tables."""
    return f"{value:.1f}h"


def fmt_pct(value: float) -> str:
    """Format a percentage (signed) for tables."""
    return f"{value:+.1f}%"
