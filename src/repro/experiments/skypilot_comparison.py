"""Table 4: SpotVerse vs SkyPilot.

Section 5.2.5's comparison: 40 standard general workloads of 10-11
hours, both frameworks configured to relaunch automatically on
interruption.  SkyPilot chases catalog prices; SpotVerse runs full
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmResult,
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
    spotverse_policy,
)
from repro.experiments.reporting import fmt_hours, fmt_money, render_table
from repro.strategies.skypilot import SkyPilotPolicy
from repro.workloads.qiime import standard_general_workload

#: Table 4 of the paper.
PAPER_REFERENCE = {
    "spotverse": {"interruptions": 42, "cost": 36.73, "hours": 12.3},
    "skypilot": {"interruptions": 129, "cost": 74.76, "hours": 30.9},
}


@dataclass
class SkyPilotComparisonResult:
    """Table 4 reproduction output."""

    arms: Dict[str, ArmResult]

    @property
    def spotverse(self):
        """SpotVerse's fleet result."""
        return self.arms["spotverse"].fleet

    @property
    def skypilot(self):
        """SkyPilot's fleet result."""
        return self.arms["skypilot"].fleet

    def cost_reduction_pct(self) -> float:
        """SpotVerse's cost reduction vs SkyPilot (paper: 51 %)."""
        return 100.0 * (1.0 - self.spotverse.total_cost / self.skypilot.total_cost)

    def time_reduction_pct(self) -> float:
        """SpotVerse's completion-time reduction vs SkyPilot (paper: 60 %)."""
        return 100.0 * (1.0 - self.spotverse.makespan_hours / self.skypilot.makespan_hours)

    def render(self) -> str:
        """Text report mirroring Table 4."""
        rows = []
        for name in ("spotverse", "skypilot"):
            fleet = self.arms[name].fleet
            paper = PAPER_REFERENCE[name]
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    paper["interruptions"],
                    fmt_money(fleet.total_cost),
                    fmt_money(paper["cost"]),
                    fmt_hours(fleet.makespan_hours),
                    fmt_hours(paper["hours"]),
                ]
            )
        table = render_table(
            ["framework", "ints", "paper", "cost", "paper", "time", "paper"],
            rows,
            title="Table 4 — SpotVerse vs SkyPilot (40 x standard general workload)",
        )
        return (
            f"{table}\n\ncost reduction: {self.cost_reduction_pct():.0f}% "
            f"(paper 51%), time reduction: {self.time_reduction_pct():.0f}% (paper 60%)"
        )


def run_skypilot_comparison(
    n_workloads: int = 40,
    seed: int = 7,
    duration_hours: float = 10.5,
    jobs: Optional[int] = None,
) -> SkyPilotComparisonResult:
    """Run both Table 4 arms."""
    factory = indexed_workload_factory(
        standard_general_workload, "w-{:02d}", duration_hours=duration_hours
    )
    specs = [
        ArmSpec(
            name="spotverse",
            policy_factory=spotverse_policy,
            config=SpotVerseConfig(instance_type="m5.xlarge"),
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="skypilot",
            policy_factory=policy_factory(SkyPilotPolicy, instance_type="m5.xlarge"),
            config=SpotVerseConfig(instance_type="m5.xlarge"),
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
        ),
    ]
    return SkyPilotComparisonResult(arms=run_arms(specs, jobs=jobs))
