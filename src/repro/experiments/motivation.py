"""Figure 3: the motivational single- vs multi-region experiment.

Section 2.2's setup: 42 m5.xlarge workloads, baseline pinned to
ca-central-1 (cheapest for the type), naive multi-region spreading
round-robin over {ap-northeast-3, ca-central-1, eu-north-1} with
random failover among them.  Run for both workload categories
(standard Genome Reconstruction, checkpoint NGS preprocessing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmResult,
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
)
from repro.experiments.reporting import fmt_hours, fmt_money, fmt_pct, pct_change, render_table
from repro.strategies.naive_multi_region import MOTIVATION_REGIONS, NaiveMultiRegionPolicy
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload

#: Paper reference numbers (Section 2.2).
PAPER_REFERENCE = {
    "standard": {"cost_delta_pct": -5.67, "time_delta_pct": -30.49, "int_delta_pct": -13.2},
    "checkpoint": {"cost_delta_pct": -9.43, "time_delta_pct": -6.63, "int_delta_pct": -41.6},
}


@dataclass
class MotivationResult:
    """Figure 3 reproduction output.

    Attributes:
        arms: Raw arm results keyed ``{kind}-{strategy}``.
        deltas: Measured multi-vs-single percentage deltas per kind.
    """

    arms: Dict[str, ArmResult]
    deltas: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """Text report with measured vs paper deltas."""
        rows = []
        for kind in ("standard", "checkpoint"):
            single = self.arms[f"{kind}-single"].fleet
            multi = self.arms[f"{kind}-multi"].fleet
            measured = self.deltas[kind]
            paper = PAPER_REFERENCE[kind]
            rows.append(
                [
                    kind,
                    f"{single.total_interruptions}->{multi.total_interruptions}",
                    fmt_pct(measured["int_delta_pct"]),
                    fmt_pct(paper["int_delta_pct"]),
                    f"{fmt_hours(single.makespan_hours)}->{fmt_hours(multi.makespan_hours)}",
                    fmt_pct(measured["time_delta_pct"]),
                    fmt_pct(paper["time_delta_pct"]),
                    f"{fmt_money(single.total_cost)}->{fmt_money(multi.total_cost)}",
                    fmt_pct(measured["cost_delta_pct"]),
                    fmt_pct(paper["cost_delta_pct"]),
                ]
            )
        return render_table(
            [
                "workload",
                "interruptions",
                "d ints",
                "paper",
                "completion",
                "d time",
                "paper",
                "cost",
                "d cost",
                "paper",
            ],
            rows,
            title="Figure 3 — single vs naive multi-region (42 workloads, m5.xlarge)",
        )


def run_motivation_experiment(
    n_workloads: int = 42,
    seed: int = 7,
    duration_hours: float = 10.5,
    jobs: Optional[int] = None,
    live_dir: Optional[str] = None,
    flight_dir: Optional[str] = None,
    trim_bus: bool = False,
) -> MotivationResult:
    """Run the four arms of the motivational experiment.

    ``live_dir`` / ``flight_dir`` / ``trim_bus`` thread straight onto
    each :class:`ArmSpec` — the streaming-overhead benchmark uses them
    to run fig3 with the live observability plane on.
    """
    config = SpotVerseConfig(instance_type="m5.xlarge")
    factories = {
        "standard": indexed_workload_factory(
            genome_reconstruction_workload, "std-{:02d}", duration_hours=duration_hours
        ),
        "checkpoint": indexed_workload_factory(
            ngs_preprocessing_workload, "ckp-{:02d}", duration_hours=duration_hours
        ),
    }
    specs = []
    for kind, factory in factories.items():
        specs.append(
            ArmSpec(
                name=f"{kind}-single",
                policy_factory=policy_factory(SingleRegionPolicy, region="ca-central-1"),
                config=config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
                live_dir=live_dir,
                flight_dir=flight_dir,
                trim_bus=trim_bus,
            )
        )
        specs.append(
            ArmSpec(
                name=f"{kind}-multi",
                policy_factory=policy_factory(
                    NaiveMultiRegionPolicy, regions=MOTIVATION_REGIONS
                ),
                config=config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
                live_dir=live_dir,
                flight_dir=flight_dir,
                trim_bus=trim_bus,
            )
        )
    arms = run_arms(specs, jobs=jobs)
    deltas: Dict[str, Dict[str, float]] = {}
    for kind in factories:
        single = arms[f"{kind}-single"].fleet
        multi = arms[f"{kind}-multi"].fleet
        deltas[kind] = {
            "cost_delta_pct": pct_change(single.total_cost, multi.total_cost),
            "time_delta_pct": pct_change(single.makespan_hours, multi.makespan_hours),
            "int_delta_pct": pct_change(
                single.total_interruptions, multi.total_interruptions
            ),
        }
    return MotivationResult(arms=arms, deltas=deltas)
