"""Figure 8 and Table 1: instance types, sizes, and baseline regions.

For each of the five instance specifications in Table 1, the baseline
region is *computed* from the price book (cheapest mean spot price for
the type — the paper's "chosen for their cost-effectiveness on the
experiment date"), then single-region-in-baseline is compared against
SpotVerse starting from that same region, on the standard general
workload with 40 instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmResult,
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
    spotverse_policy,
)
from repro.experiments.reporting import fmt_hours, fmt_money, render_table
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.qiime import standard_general_workload

#: Table 1 of the paper: instance type -> cheapest (baseline) region.
TABLE1_BASELINES: Dict[str, str] = {
    "m5.large": "us-west-2",
    "m5.xlarge": "ca-central-1",
    "m5.2xlarge": "ap-northeast-3",
    "r5.2xlarge": "ca-central-1",
    "c5.2xlarge": "eu-north-1",
}

#: Paper highlights (Section 5.2.2): interruption counts per arm.
PAPER_REFERENCE = {
    "r5.2xlarge": {"single_ints": 215, "spotverse_ints": 92},
    "m5.large": {"single_ints": 137, "spotverse_ints": 40},
}


@dataclass
class InstanceStudyResult:
    """Figure 8 + Table 1 reproduction output.

    Attributes:
        computed_baselines: Cheapest mean-spot region per type, from
            the price book (should equal Table 1).
        arms: Results keyed ``{type}-{strategy}``.
    """

    computed_baselines: Dict[str, str]
    arms: Dict[str, ArmResult]

    def table1_matches(self) -> bool:
        """Whether every computed baseline equals the paper's Table 1."""
        return self.computed_baselines == TABLE1_BASELINES

    def render(self) -> str:
        """Text report: Table 1 plus the per-type comparison."""
        table1_rows = [
            [itype, self.computed_baselines[itype], TABLE1_BASELINES[itype]]
            for itype in TABLE1_BASELINES
        ]
        parts = [
            render_table(
                ["instance type", "computed baseline", "paper Table 1"],
                table1_rows,
                title="Table 1 — baseline (cheapest spot) regions",
            )
        ]
        rows = []
        for itype in TABLE1_BASELINES:
            single = self.arms[f"{itype}-single"].fleet
            spotverse = self.arms[f"{itype}-spotverse"].fleet
            rows.append(
                [
                    itype,
                    single.total_interruptions,
                    spotverse.total_interruptions,
                    fmt_hours(single.makespan_hours),
                    fmt_hours(spotverse.makespan_hours),
                    fmt_money(single.total_cost),
                    fmt_money(spotverse.total_cost),
                ]
            )
        parts.append(
            render_table(
                [
                    "type",
                    "single ints",
                    "SV ints",
                    "single time",
                    "SV time",
                    "single cost",
                    "SV cost",
                ],
                rows,
                title="Figure 8 — instance types and sizes (40 x standard general workload)",
            )
        )
        return "\n\n".join(parts)


def compute_baselines(seed: int = 7) -> Dict[str, str]:
    """Compute the cheapest mean-spot region per Table 1 type."""
    provider = CloudProvider(seed=seed)
    return {
        itype: provider.cheapest_mean_spot_region(itype)[0] for itype in TABLE1_BASELINES
    }


def run_instance_study(
    n_workloads: int = 40,
    seed: int = 7,
    duration_hours: float = 10.5,
    jobs: Optional[int] = None,
) -> InstanceStudyResult:
    """Run single-region vs SpotVerse for every Table 1 specification."""
    computed = compute_baselines(seed=seed)
    specs: List[ArmSpec] = []
    for itype, baseline_region in computed.items():
        factory = indexed_workload_factory(
            standard_general_workload,
            itype + "-{:02d}",
            duration_hours=duration_hours,
        )
        specs.append(
            ArmSpec(
                name=f"{itype}-single",
                policy_factory=policy_factory(SingleRegionPolicy, region=baseline_region),
                config=SpotVerseConfig(instance_type=itype),
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
        specs.append(
            ArmSpec(
                name=f"{itype}-spotverse",
                policy_factory=spotverse_policy,
                config=SpotVerseConfig(
                    instance_type=itype,
                    initial_distribution=False,
                    start_region=baseline_region,
                ),
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    return InstanceStudyResult(computed_baselines=computed, arms=run_arms(specs, jobs=jobs))
