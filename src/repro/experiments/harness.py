"""The arm harness: one strategy x one fleet on a fresh provider.

Every experiment arm gets its own :class:`~repro.cloud.provider.CloudProvider`
(so cost ledgers, markets, and event streams never leak between
strategies), a Monitor (SpotVerse's data plane runs regardless of the
policy, as it would in the paper's shared-account setup), and the
shared :class:`~repro.core.controller.FleetController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.profiles import default_market_profiles
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import PlacementPolicy
from repro.core.result import FleetResult
from repro.obs import Telemetry
from repro.workloads.base import Workload

#: Builds the policy for an arm.  Receives the provider, the arm's
#: config, and a live Monitor.
PolicyFactory = Callable[[CloudProvider, SpotVerseConfig, Monitor], PlacementPolicy]

#: Builds workload *i* of the fleet.
WorkloadFactory = Callable[[int], Workload]


def spotverse_policy(
    provider: CloudProvider, config: SpotVerseConfig, monitor: Monitor
) -> PlacementPolicy:
    """The default SpotVerse policy factory (Algorithm 1)."""
    return SpotVerseOptimizer(monitor, config)


@dataclass
class ArmSpec:
    """One experiment arm.

    Attributes:
        name: Arm label used in reports.
        policy_factory: Builds the arm's placement policy.
        config: Control-plane configuration for the arm.
        workload_factory: Builds workload *i*.
        n_workloads: Fleet size (the paper uses 40, or 42 in Fig. 3).
        seed: Provider master seed (same seed across arms = same market
            randomness, the paper's paired-comparison setup).
        max_hours: Simulation deadline.
        profile_overrides: Optional market-regime overrides (e.g. the
            threshold study's collection date).
        warmup_steps: Market pre-roll before the run.
        telemetry: Observability hook: a bundle the arm's provider
            emits into (e.g. one wired to a JSONL subscriber, or a
            shared registry when a driver wants cross-arm aggregation).
            Each arm gets a fresh bundle when omitted.
        observatory: When true, the arm's provider attaches a market
            observatory (per-market time series + anomaly events).
            Off by default — sweeps don't pay the sampling cost unless
            a driver wants the market view.
    """

    name: str
    policy_factory: PolicyFactory
    config: SpotVerseConfig
    workload_factory: WorkloadFactory
    n_workloads: int = 40
    seed: int = 7
    max_hours: float = 160.0
    profile_overrides: Optional[Mapping[Tuple[str, str], Mapping[str, float]]] = None
    warmup_steps: int = 48
    telemetry: Optional[Telemetry] = None
    observatory: bool = False


@dataclass
class ArmResult:
    """An arm's outcome plus the provider it ran on (for deep dives)."""

    spec: ArmSpec
    fleet: FleetResult
    provider: CloudProvider

    @property
    def name(self) -> str:
        """The arm's label."""
        return self.spec.name

    @property
    def telemetry(self) -> Telemetry:
        """The arm's observability bundle (event bus + metrics)."""
        return self.provider.telemetry


def run_arm(spec: ArmSpec) -> ArmResult:
    """Execute one arm and return its result."""
    profiles = default_market_profiles()
    if spec.profile_overrides is not None:
        profiles = profiles.with_overrides(spec.profile_overrides)
    provider = CloudProvider(
        seed=spec.seed,
        profiles=profiles,
        telemetry=spec.telemetry,
        observatory=spec.observatory,
    )
    if spec.warmup_steps:
        provider.warmup_markets(spec.warmup_steps)
    monitor = Monitor(
        provider,
        instance_types=[spec.config.instance_type],
        collect_interval=spec.config.collect_interval,
    )
    policy = spec.policy_factory(provider, spec.config, monitor)
    controller = FleetController(provider, policy, spec.config, monitor=monitor)
    workloads = [spec.workload_factory(index) for index in range(spec.n_workloads)]
    fleet = controller.run(workloads, max_hours=spec.max_hours)
    provider.shutdown()
    return ArmResult(spec=spec, fleet=fleet, provider=provider)


def run_arms(specs: Sequence[ArmSpec]) -> Dict[str, ArmResult]:
    """Run several arms and key the results by arm name."""
    results: Dict[str, ArmResult] = {}
    for spec in specs:
        if spec.name in results:
            raise ValueError(f"duplicate arm name {spec.name!r}")
        results[spec.name] = run_arm(spec)
    return results


def mean_over_seeds(
    spec: ArmSpec, seeds: Sequence[int]
) -> Tuple[float, float, float]:
    """Run an arm at several seeds; return mean (interruptions, hours, cost).

    The paper repeats each experiment three times to absorb market
    variation; this is the equivalent averaging helper.
    """
    interruptions: List[float] = []
    hours: List[float] = []
    costs: List[float] = []
    for seed in seeds:
        result = run_arm(
            ArmSpec(
                name=f"{spec.name}@{seed}",
                policy_factory=spec.policy_factory,
                config=spec.config,
                workload_factory=spec.workload_factory,
                n_workloads=spec.n_workloads,
                seed=seed,
                max_hours=spec.max_hours,
                profile_overrides=spec.profile_overrides,
                warmup_steps=spec.warmup_steps,
            )
        )
        interruptions.append(result.fleet.total_interruptions)
        hours.append(result.fleet.makespan_hours)
        costs.append(result.fleet.total_cost)
    n = len(seeds)
    return (sum(interruptions) / n, sum(hours) / n, sum(costs) / n)
