"""The arm harness: one strategy x one fleet on a fresh provider.

Every experiment arm gets its own :class:`~repro.cloud.provider.CloudProvider`
(so cost ledgers, markets, and event streams never leak between
strategies), a Monitor (SpotVerse's data plane runs regardless of the
policy, as it would in the paper's shared-account setup), and the
shared :class:`~repro.core.controller.FleetController`.

Arms are share-nothing by construction, which makes sweeps
embarrassingly parallel: :func:`run_arms` (and :func:`mean_over_seeds`)
accept a ``jobs`` knob that fans independent arms out over a process
pool.  Specs must be picklable to cross the process boundary — build
them from module-level factories or the :func:`policy_factory` /
:func:`indexed_workload_factory` helpers below.  Specs that cannot
travel (non-picklable closures, or a live ``telemetry`` bundle whose
subscribers must observe the run in *this* process) gracefully fall
back to serial execution; results are keyed and ordered identically
either way.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.cloud.profiles import default_market_profiles
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import PlacementPolicy
from repro.core.result import FleetResult
from repro.obs import Telemetry
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.campaign import CampaignSpec
    from repro.core.dag import DagWorkload

#: Builds the policy for an arm.  Receives the provider, the arm's
#: config, and a live Monitor.
PolicyFactory = Callable[[CloudProvider, SpotVerseConfig, Monitor], PlacementPolicy]

#: Builds workload *i* of the fleet.
WorkloadFactory = Callable[[int], Workload]

#: Builds an arm's compiled DAGs (DAG-aware placement arms).
DagFactory = Callable[[], Sequence["DagWorkload"]]

#: Fallback worker count when ``jobs`` is not given anywhere.
_default_jobs = 1


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default for ``jobs=None`` calls.

    The CLI's ``--jobs`` knob lands here so every experiment driver in
    the invocation fans out without each one re-plumbing the argument.
    """
    global _default_jobs
    _default_jobs = max(1, int(jobs))


def default_jobs() -> int:
    """The process-wide default worker count."""
    return _default_jobs


def spotverse_policy(
    provider: CloudProvider, config: SpotVerseConfig, monitor: Monitor
) -> PlacementPolicy:
    """The default SpotVerse policy factory (Algorithm 1)."""
    return SpotVerseOptimizer(monitor, config)


def _build_policy(provider, config, monitor, *, policy_cls, **kwargs):
    return policy_cls(**kwargs)


def policy_factory(policy_cls, **kwargs) -> PolicyFactory:
    """A picklable policy factory: ``policy_cls(**kwargs)`` per arm.

    Replaces ``lambda p, c, m: SomePolicy(...)`` closures, which cannot
    cross the process-pool boundary.
    """
    return partial(_build_policy, policy_cls=policy_cls, **kwargs)


def _build_indexed_workload(index, *, builder, id_format, **kwargs):
    return builder(id_format.format(index), **kwargs)


def indexed_workload_factory(builder, id_format, **kwargs) -> WorkloadFactory:
    """A picklable workload factory: ``builder(id_format.format(i))``.

    Args:
        builder: Module-level workload constructor (e.g.
            ``genome_reconstruction_workload``).
        id_format: ``str.format`` pattern for the workload id, applied
            to the fleet index (e.g. ``"std-{:02d}"``).
        **kwargs: Extra keyword arguments for *builder* (e.g.
            ``duration_hours``).
    """
    return partial(_build_indexed_workload, builder=builder, id_format=id_format, **kwargs)


@dataclass
class ArmSpec:
    """One experiment arm.

    Attributes:
        name: Arm label used in reports.
        policy_factory: Builds the arm's placement policy.
        config: Control-plane configuration for the arm.
        workload_factory: Builds workload *i*.
        n_workloads: Fleet size (the paper uses 40, or 42 in Fig. 3).
        seed: Provider master seed (same seed across arms = same market
            randomness, the paper's paired-comparison setup).
        max_hours: Simulation deadline.
        profile_overrides: Optional market-regime overrides (e.g. the
            threshold study's collection date).
        warmup_steps: Market pre-roll before the run.
        telemetry: Observability hook: a bundle the arm's provider
            emits into (e.g. one wired to a JSONL subscriber, or a
            shared registry when a driver wants cross-arm aggregation).
            Each arm gets a fresh bundle when omitted.  A shared bundle
            pins the arm to serial execution — its subscribers live in
            this process.
        observatory: When true, the arm's provider attaches a market
            observatory (per-market time series + anomaly events).
            Off by default — sweeps don't pay the sampling cost unless
            a driver wants the market view.
        campaign: Optional chaos campaign installed on the arm's
            provider after warmup (``controller-kill`` injections are
            runner-level faults and are ignored here).  ``None`` — the
            default — means a fault-free arm, bit-identical to
            pre-chaos builds.
        live_dir: When set, the arm attaches a
            :class:`~repro.obs.live.LivePlane` streaming its telemetry
            into segmented JSONL under ``<live_dir>/<arm name>``.
            Plain strings pickle, so live export works in pool workers
            too (each worker writes its own arm's directory).
        flight_dir: When set, the arm arms a
            :class:`~repro.obs.flight.FlightRecorder` writing
            ``BLACKBOX_*.json`` under ``<flight_dir>/<arm name>``.
        trim_bus: With a live plane attached, clear the event bus after
            each export flush so telemetry memory stays bounded by the
            segment/window caps instead of the run length.  Off by
            default — post-run consumers (reports, ``write_jsonl``)
            need the full stream.
        dag_factory: When set, the arm schedules *DAGs* instead of a
            flat fleet: the factory's compiled
            :class:`~repro.core.dag.DagWorkload` list runs through
            ``controller.run_dags`` (steps released topologically,
            fanned out across instances) and ``workload_factory`` /
            ``n_workloads`` are ignored.  Use a module-level factory to
            stay picklable for pool execution.
    """

    name: str
    policy_factory: PolicyFactory
    config: SpotVerseConfig
    workload_factory: WorkloadFactory
    n_workloads: int = 40
    seed: int = 7
    max_hours: float = 160.0
    profile_overrides: Optional[Mapping[Tuple[str, str], Mapping[str, float]]] = None
    warmup_steps: int = 48
    telemetry: Optional[Telemetry] = None
    observatory: bool = False
    campaign: Optional["CampaignSpec"] = None
    live_dir: Optional[str] = None
    flight_dir: Optional[str] = None
    trim_bus: bool = False
    dag_factory: Optional[DagFactory] = None


@dataclass
class ArmResult:
    """An arm's outcome plus the provider it ran on (for deep dives).

    ``provider`` is ``None`` when the arm executed in a pool worker:
    live providers (engine heaps, service substrates, open callbacks)
    do not cross process boundaries — only the measured
    :class:`~repro.core.result.FleetResult` comes back.
    """

    spec: ArmSpec
    fleet: FleetResult
    provider: Optional[CloudProvider]
    #: The arm's live observability plane, when ``spec.live_dir`` asked
    #: for one and the arm ran in-process (``None`` for pool-run arms —
    #: the plane's exported segments are still on disk either way).
    live_plane: Optional[object] = None

    @property
    def name(self) -> str:
        """The arm's label."""
        return self.spec.name

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The arm's observability bundle (``None`` for pool-run arms)."""
        if self.provider is None:
            return self.spec.telemetry
        return self.provider.telemetry


def run_arm(spec: ArmSpec) -> ArmResult:
    """Execute one arm and return its result."""
    profiles = default_market_profiles()
    if spec.profile_overrides is not None:
        profiles = profiles.with_overrides(spec.profile_overrides)
    provider = CloudProvider(
        seed=spec.seed,
        profiles=profiles,
        telemetry=spec.telemetry,
        observatory=spec.observatory,
    )
    if spec.warmup_steps:
        provider.warmup_markets(spec.warmup_steps)
    recorder = None
    if spec.flight_dir is not None:
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(
            provider.telemetry, directory=os.path.join(spec.flight_dir, spec.name)
        )
        recorder.watch_dead_letters()
        recorder.guard_engine(provider.engine)
    plane = None
    if spec.live_dir is not None:
        from repro.obs.live import LivePlane

        plane = LivePlane(
            provider.telemetry,
            directory=os.path.join(spec.live_dir, spec.name),
            trim_bus=spec.trim_bus,
            recorder=recorder,
        )
    monitor = Monitor(
        provider,
        instance_types=[spec.config.instance_type],
        collect_interval=spec.config.collect_interval,
    )
    policy = spec.policy_factory(provider, spec.config, monitor)
    controller = FleetController(provider, policy, spec.config, monitor=monitor)
    if spec.campaign is not None:
        from repro.chaos.faults import ChaosController

        ChaosController(provider, spec.campaign.without_kills()).install()
    if spec.dag_factory is not None:
        fleet = controller.run_dags(spec.dag_factory(), max_hours=spec.max_hours)
    else:
        workloads = [spec.workload_factory(index) for index in range(spec.n_workloads)]
        fleet = controller.run(workloads, max_hours=spec.max_hours)
    # Unbind the control plane before shutdown: a late engine callback
    # (sweep tick, straggler fulfillment) must hit the router's inert
    # path, not a half-dismantled service.
    controller.teardown()
    if plane is not None:
        plane.close()
    if recorder is not None:
        recorder.snapshot_final()
        recorder.close()
    provider.shutdown()
    return ArmResult(spec=spec, fleet=fleet, provider=provider, live_plane=plane)


def _run_arm_fleet(spec: ArmSpec) -> FleetResult:
    """Pool worker: run one arm, ship only the picklable fleet result."""
    return run_arm(spec).fleet


def _parallel_safe(spec: ArmSpec) -> bool:
    """Whether *spec* can run in a pool worker.

    A live telemetry bundle means the caller wants its subscribers fed
    from the run — that only works in-process.  Everything else just
    needs to survive pickling.
    """
    if spec.telemetry is not None:
        return False
    try:
        pickle.dumps(spec)
    except Exception:
        return False
    return True


def _check_unique_names(specs: Sequence[ArmSpec]) -> None:
    seen = set()
    for spec in specs:
        if spec.name in seen:
            raise ValueError(f"duplicate arm name {spec.name!r}")
        seen.add(spec.name)


def run_arms(
    specs: Sequence[ArmSpec], jobs: Optional[int] = None
) -> Dict[str, ArmResult]:
    """Run several arms and key the results by arm name.

    Args:
        specs: The arms, in result order.
        jobs: Pool worker count; ``None`` uses :func:`default_jobs`
            (1 unless the CLI's ``--jobs`` raised it), ``1`` forces the
            serial path.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    _check_unique_names(specs)
    if jobs > 1 and len(specs) > 1:
        return run_arms_parallel(specs, jobs=jobs)
    results: Dict[str, ArmResult] = {}
    for spec in specs:
        results[spec.name] = run_arm(spec)
    return results


def run_arms_parallel(
    specs: Sequence[ArmSpec], jobs: Optional[int] = None
) -> Dict[str, ArmResult]:
    """Fan independent arms out over a process pool.

    Parallel-safe specs run in workers; the rest (non-picklable
    factories, live telemetry hooks) run serially in this process after
    the pool drains.  The result dict is keyed and ordered by the input
    spec order regardless of completion order, and same-seed arms
    produce results identical to :func:`run_arms` serial execution —
    every arm owns its provider, engine, and RNG streams.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    _check_unique_names(specs)
    pooled = [spec for spec in specs if _parallel_safe(spec)]
    fleets: Dict[str, FleetResult] = {}
    # Worker-process fork/pickle overhead only pays off with real
    # parallel hardware: on a host with fewer cores than requested
    # workers the pool *time-slices* the arms (a 4-job sweep on 1 core
    # measures ~0.35x serial), so cap workers at the core count and
    # fall through to the serial path when that leaves no parallelism.
    workers = min(jobs, len(pooled), os.cpu_count() or 1)
    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(spec, pool.submit(_run_arm_fleet, spec)) for spec in pooled]
                for spec, future in futures:
                    fleets[spec.name] = future.result()
        except (OSError, PermissionError, ImportError):
            # No usable multiprocessing primitives (sandboxes, missing
            # /dev/shm, restricted platforms): degrade to serial.
            fleets.clear()
    results: Dict[str, ArmResult] = {}
    for spec in specs:
        if spec.name in fleets:
            results[spec.name] = ArmResult(spec=spec, fleet=fleets[spec.name], provider=None)
        else:
            results[spec.name] = run_arm(spec)
    return results


def mean_over_seeds(
    spec: ArmSpec, seeds: Sequence[int], jobs: Optional[int] = None
) -> Tuple[float, float, float]:
    """Run an arm at several seeds; return mean (interruptions, hours, cost).

    The paper repeats each experiment three times to absorb market
    variation; this is the equivalent averaging helper.  Each seed's
    clone carries *every* field of the spec — including the
    ``telemetry`` and ``observatory`` hooks — so observability is
    consistent between single-arm runs and seed sweeps.  With
    ``jobs > 1`` the seeds fan out over the process pool.
    """
    clones = [
        replace(spec, name=f"{spec.name}@{seed}", seed=seed) for seed in seeds
    ]
    results = run_arms(clones, jobs=jobs)
    fleets = [results[clone.name].fleet for clone in clones]
    n = len(seeds)
    return (
        sum(fleet.total_interruptions for fleet in fleets) / n,
        sum(fleet.makespan_hours for fleet in fleets) / n,
        sum(fleet.total_cost for fleet in fleets) / n,
    )
