"""Figure 10 and Tables 2-3: threshold-based allocation.

Section 5.2.4's sweep: thresholds {4, 5, 6} x durations {5, 10, 20}
hours, m5.xlarge, standard general workload, with costs normalized to
the cheapest on-demand deployment of the same duration.  Markets use
the threshold-experiment collection date
(:data:`~repro.cloud.profiles.THRESHOLD_EPOCH_OVERRIDES`), on which
the cheap tier undercuts everyone — reproducing Table 3's region sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cloud.profiles import THRESHOLD_EPOCH_OVERRIDES, default_market_profiles
from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import PolicyContext
from repro.experiments.harness import ArmResult, ArmSpec, run_arm, spotverse_policy
from repro.experiments.reporting import render_table
from repro.strategies.on_demand import OnDemandPolicy
from repro.workloads.qiime import standard_general_workload

#: Table 2 of the paper.
THRESHOLDS = (4, 5, 6)
DURATIONS_HOURS = (5, 10, 20)

#: Table 3 of the paper: threshold -> selected regions.
TABLE3_REGIONS: Dict[int, Tuple[str, ...]] = {
    6: ("us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1"),
    5: ("ap-southeast-1", "eu-west-3", "ca-central-1", "eu-west-2"),
    4: ("us-east-1", "us-east-2", "ap-southeast-2", "us-west-2"),
}


@dataclass
class ThresholdStudyResult:
    """Figure 10 + Tables 2-3 reproduction output.

    Attributes:
        selected_regions: Regions Algorithm 1 selects per threshold on
            the experiment date (compare with Table 3).
        normalized_cost: ``(threshold, duration)`` -> spot cost divided
            by the same-duration cheapest on-demand cost (< 1 = saving).
        arms: Raw arm results keyed ``t{threshold}-d{duration}``.
        od_cost: Duration -> on-demand normalization denominator.
    """

    selected_regions: Dict[int, Tuple[str, ...]]
    normalized_cost: Dict[Tuple[int, int], float]
    arms: Dict[str, ArmResult]
    od_cost: Dict[int, float]

    def table3_matches(self) -> bool:
        """Whether each threshold's selected set equals Table 3."""
        return all(
            set(self.selected_regions[threshold]) == set(TABLE3_REGIONS[threshold])
            for threshold in THRESHOLDS
        )

    def render(self) -> str:
        """Text report: Table 3 check plus the Figure 10 grid."""
        region_rows = [
            [
                threshold,
                ", ".join(sorted(self.selected_regions[threshold])),
                ", ".join(sorted(TABLE3_REGIONS[threshold])),
            ]
            for threshold in THRESHOLDS
        ]
        parts = [
            render_table(
                ["threshold", "selected (measured)", "paper Table 3"],
                region_rows,
                title="Table 3 — regions selected per threshold",
            )
        ]
        grid_rows = []
        for threshold in THRESHOLDS:
            row: List[object] = [threshold]
            for duration in DURATIONS_HOURS:
                row.append(f"{self.normalized_cost[(threshold, duration)]:.2f}")
            grid_rows.append(row)
        parts.append(
            render_table(
                ["threshold \\ duration"] + [f"{d}h" for d in DURATIONS_HOURS],
                grid_rows,
                title="Figure 10 — cost normalized to cheapest on-demand "
                "(<1 saves, >1 costs more)",
            )
        )
        return "\n\n".join(parts)


def selected_regions_for_threshold(threshold: float, seed: int = 3) -> Tuple[str, ...]:
    """Compute Algorithm 1's top-R region set on the experiment date."""
    profiles = default_market_profiles().with_overrides(THRESHOLD_EPOCH_OVERRIDES)
    provider = CloudProvider(seed=seed, profiles=profiles)
    provider.warmup_markets(48)
    config = SpotVerseConfig(instance_type="m5.xlarge", score_threshold=threshold)
    monitor = Monitor(provider, ["m5.xlarge"], deploy=False)
    monitor.collect()
    optimizer = SpotVerseOptimizer(monitor, config)
    ctx = PolicyContext(
        provider=provider, monitor=monitor, rng=provider.engine.streams.get("study")
    )
    return tuple(metric.region for metric in optimizer.top_regions(ctx))


def run_threshold_study(
    n_workloads: int = 40, seed: int = 3, max_hours: float = 400.0
) -> ThresholdStudyResult:
    """Run the full threshold x duration sweep plus OD normalizers."""
    arms: Dict[str, ArmResult] = {}
    od_cost: Dict[int, float] = {}
    normalized: Dict[Tuple[int, int], float] = {}

    for duration in DURATIONS_HOURS:
        def factory(i: int, duration=duration):
            return standard_general_workload(f"w-{i:02d}", duration_hours=duration)

        od_arm = run_arm(
            ArmSpec(
                name=f"od-d{duration}",
                policy_factory=lambda p, c, m: OnDemandPolicy(instance_type="m5.xlarge"),
                config=SpotVerseConfig(instance_type="m5.xlarge"),
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
                profile_overrides=THRESHOLD_EPOCH_OVERRIDES,
            )
        )
        arms[od_arm.name] = od_arm
        od_cost[duration] = od_arm.fleet.total_cost

        for threshold in THRESHOLDS:
            arm = run_arm(
                ArmSpec(
                    name=f"t{threshold}-d{duration}",
                    policy_factory=spotverse_policy,
                    config=SpotVerseConfig(
                        instance_type="m5.xlarge", score_threshold=float(threshold)
                    ),
                    workload_factory=factory,
                    n_workloads=n_workloads,
                    seed=seed,
                    max_hours=max_hours,
                    profile_overrides=THRESHOLD_EPOCH_OVERRIDES,
                )
            )
            arms[arm.name] = arm
            normalized[(threshold, duration)] = arm.fleet.total_cost / od_cost[duration]

    selected = {
        threshold: selected_regions_for_threshold(threshold, seed=seed)
        for threshold in THRESHOLDS
    }
    return ThresholdStudyResult(
        selected_regions=selected,
        normalized_cost=normalized,
        arms=arms,
        od_cost=od_cost,
    )
