"""Experiment drivers: one per table and figure of the paper.

Each driver builds fresh providers per strategy arm (so ledgers stay
per-strategy), runs the fleet through the shared controller, and
returns a structured result object with a ``render()`` text report and
the paper's reference numbers alongside the measured ones.  The
benchmark suite under ``benchmarks/`` calls these drivers.
"""

from repro.experiments.ablations import (
    run_checkpoint_backend_ablation,
    run_checkpoint_granularity,
    run_fallback_ablation,
    run_migration_ablation,
    run_predictive_policy_ablation,
)
from repro.experiments.footprint import FootprintStudyResult, run_footprint_study
from repro.experiments.gantt import render_lifelines
from repro.experiments.harness import ArmResult, ArmSpec, run_arm, run_arms
from repro.experiments.initial_distribution import (
    InitialDistributionResult,
    run_initial_distribution_experiment,
)
from repro.experiments.instance_study import InstanceStudyResult, run_instance_study
from repro.experiments.metrics_analysis import MetricsAnalysisResult, run_metrics_analysis
from repro.experiments.motivation import MotivationResult, run_motivation_experiment
from repro.experiments.price_diversity import PriceDiversityResult, run_price_diversity
from repro.experiments.skypilot_comparison import (
    SkyPilotComparisonResult,
    run_skypilot_comparison,
)
from repro.experiments.thresholds import ThresholdStudyResult, run_threshold_study
from repro.experiments.time_patterns import TimePatternResult, run_time_pattern_study
from repro.experiments.workload_comparison import (
    WorkloadComparisonResult,
    run_workload_comparison,
)

__all__ = [
    "ArmResult",
    "ArmSpec",
    "FootprintStudyResult",
    "TimePatternResult",
    "run_checkpoint_backend_ablation",
    "run_checkpoint_granularity",
    "run_fallback_ablation",
    "run_footprint_study",
    "run_migration_ablation",
    "run_predictive_policy_ablation",
    "run_time_pattern_study",
    "render_lifelines",
    "InitialDistributionResult",
    "InstanceStudyResult",
    "MetricsAnalysisResult",
    "MotivationResult",
    "PriceDiversityResult",
    "SkyPilotComparisonResult",
    "ThresholdStudyResult",
    "WorkloadComparisonResult",
    "run_arm",
    "run_arms",
    "run_initial_distribution_experiment",
    "run_instance_study",
    "run_metrics_analysis",
    "run_motivation_experiment",
    "run_price_diversity",
    "run_skypilot_comparison",
    "run_threshold_study",
    "run_workload_comparison",
]
