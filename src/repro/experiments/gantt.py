"""ASCII fleet lifelines: what each workload was doing when.

Renders a per-workload timeline from :class:`WorkloadRecord` data:
one row per workload, one character per time bin, the letter of the
region whose instance was running in that bin, ``.`` for gaps (waiting
for capacity), and ``*`` at the completion bin.  Makes interruption
bursts, migrations, and stragglers visible at a glance in terminal
output — the quick-look view the paper's S3 activity logs would feed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.result import FleetResult, WorkloadRecord
from repro.sim.clock import HOUR


def _region_letters(result: FleetResult) -> Dict[str, str]:
    """Assign a unique letter per region seen, in sorted order."""
    regions = sorted(
        {region for record in result.records for region in record.regions}
    )
    letters: Dict[str, str] = {}
    for index, region in enumerate(regions):
        letters[region] = chr(ord("a") + index) if index < 26 else "?"
    return letters


def _attempt_spans(record: WorkloadRecord, end_time: float) -> List[Tuple[float, float, str]]:
    """``(start, end, region)`` per attempt.

    An attempt ends at the next interruption whose timestamp follows
    its start, at the workload's completion, or at *end_time*.
    """
    spans: List[Tuple[float, float, str]] = []
    interruption_times = [time for time, _ in record.interruptions]
    for index, (start, region) in enumerate(
        zip(record.attempt_starts, record.regions)
    ):
        candidates = [t for t in interruption_times if t >= start]
        next_start = (
            record.attempt_starts[index + 1]
            if index + 1 < len(record.attempt_starts)
            else None
        )
        end = end_time
        if candidates and (next_start is None or candidates[0] <= next_start):
            end = candidates[0]
        elif next_start is not None:
            end = next_start
        if record.completed_at is not None:
            end = min(end, record.completed_at)
        spans.append((start, max(start, end), region))
    return spans


def render_lifelines(
    result: FleetResult,
    bin_hours: float = 0.5,
    max_workloads: Optional[int] = 40,
    width_limit: int = 120,
) -> str:
    """Render the fleet's lifelines as multi-line text.

    Args:
        result: The fleet to render.
        bin_hours: Hours per character column.
        max_workloads: Truncate very large fleets (None = all).
        width_limit: Maximum columns; bins widen if exceeded.
    """
    if not result.records:
        return "(empty fleet)"
    end_time = result.ended_at
    bins = int(end_time / (bin_hours * HOUR)) + 1
    if bins > width_limit:
        bin_hours = end_time / (width_limit * HOUR)
        bins = width_limit + 1
    letters = _region_letters(result)

    lines: List[str] = []
    records = result.records[:max_workloads] if max_workloads else result.records
    label_width = max(len(record.workload_id) for record in records)
    for record in records:
        row = ["."] * bins
        for start, end, region in _attempt_spans(record, end_time):
            first = int(start / (bin_hours * HOUR))
            last = int(end / (bin_hours * HOUR))
            for column in range(first, min(last + 1, bins)):
                row[column] = letters.get(region, "?")
        if record.completed_at is not None:
            column = min(int(record.completed_at / (bin_hours * HOUR)), bins - 1)
            row[column] = "*"
        lines.append(f"{record.workload_id.ljust(label_width)} |{''.join(row)}")
    if max_workloads and len(result.records) > max_workloads:
        lines.append(f"... ({len(result.records) - max_workloads} more workloads)")

    legend = ", ".join(f"{letter}={region}" for region, letter in sorted(letters.items()))
    header = (
        f"fleet lifelines ({bin_hours:.2f} h/column, '.'=waiting, '*'=done)\n"
        f"regions: {legend}"
    )
    return header + "\n" + "\n".join(lines)
