"""Ablations of SpotVerse's design choices (DESIGN.md checklist).

* **Migration randomness** — Algorithm 1 migrates to a *random* region
  among the top R; the ablation always picks the cheapest, herding all
  migrants into one market.
* **On-demand fallback** — with an unsatisfiable threshold, Algorithm 1
  falls back to on-demand; the ablation disables the fallback and must
  fail.
* **Checkpoint granularity** — how segment count trades rework against
  checkpoint overhead under an interruption-heavy single region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import ArmResult, ArmSpec, run_arm, run_arms, spotverse_policy
from repro.experiments.reporting import fmt_hours, fmt_money, render_table
from repro.strategies.single_region import SingleRegionPolicy
from repro.strategies.variants import CheapestMigrationPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload


@dataclass
class MigrationAblationResult:
    """Random vs cheapest migration under the Figure 7 configuration."""

    arms: Dict[str, ArmResult]

    def render(self) -> str:
        """Text report comparing the two migration rules."""
        rows = []
        for name in ("random-migration", "cheapest-migration"):
            fleet = self.arms[name].fleet
            regions = fleet.regions_used()
            spread = len([r for r, n in regions.items() if n > 0])
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    fmt_hours(fleet.makespan_hours),
                    fmt_money(fleet.total_cost),
                    spread,
                ]
            )
        return render_table(
            ["policy", "ints", "time", "cost", "regions used"],
            rows,
            title="Ablation — random vs always-cheapest migration target",
        )


def run_migration_ablation(n_workloads: int = 40, seed: int = 7) -> MigrationAblationResult:
    """Run the migration-randomness ablation."""
    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",
    )

    def factory(i: int):
        return genome_reconstruction_workload(f"w-{i:02d}")

    specs = [
        ArmSpec(
            name="random-migration",
            policy_factory=spotverse_policy,
            config=config,
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="cheapest-migration",
            policy_factory=lambda p, c, m: CheapestMigrationPolicy(m, c),
            config=config,
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
        ),
    ]
    return MigrationAblationResult(arms=run_arms(specs))


@dataclass
class FallbackAblationResult:
    """On-demand fallback under an unsatisfiable threshold."""

    with_fallback: ArmResult

    def render(self) -> str:
        """Text report of the forced-fallback fleet."""
        fleet = self.with_fallback.fleet
        return render_table(
            ["metric", "value"],
            [
                ["on-demand share", f"{100 * fleet.on_demand_share():.0f}%"],
                ["interruptions", fleet.total_interruptions],
                ["completion", fmt_hours(fleet.makespan_hours)],
                ["cost", fmt_money(fleet.total_cost)],
            ],
            title="Ablation — threshold 9 forces the on-demand fallback",
        )


def run_fallback_ablation(n_workloads: int = 10, seed: int = 7) -> FallbackAblationResult:
    """Run SpotVerse with a threshold no region can meet."""
    config = SpotVerseConfig(instance_type="m5.xlarge", score_threshold=9.0)

    def factory(i: int):
        return genome_reconstruction_workload(f"w-{i:02d}")

    arm = run_arm(
        ArmSpec(
            name="fallback",
            policy_factory=spotverse_policy,
            config=config,
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
        )
    )
    return FallbackAblationResult(with_fallback=arm)



@dataclass
class CheckpointBackendResult:
    """S3 vs EFS checkpoint artifacts (Section 7 future work)."""

    arms: Dict[str, ArmResult]

    def render(self) -> str:
        """Text report comparing the two artifact backends."""
        rows = []
        for name in ("s3", "efs"):
            fleet = self.arms[name].fleet
            provider = self.arms[name].provider
            breakdown = provider.ledger.by_category()
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    fmt_hours(fleet.makespan_hours),
                    fmt_money(fleet.total_cost),
                    f"${breakdown.get('s3-storage', 0.0):.4f}",
                    f"${breakdown.get('s3-transfer', 0.0):.4f}",
                ]
            )
        return render_table(
            ["backend", "ints", "time", "cost", "storage", "transfer/replication"],
            rows,
            title="Ablation — checkpoint artifact backend (S3 upload vs regional EFS)",
        )


def run_checkpoint_backend_ablation(
    n_workloads: int = 20, seed: int = 7
) -> CheckpointBackendResult:
    """Run the checkpoint fleet under both artifact backends."""
    def factory(i: int):
        return ngs_preprocessing_workload(f"w-{i:02d}")

    arms: Dict[str, ArmResult] = {}
    for backend in ("s3", "efs"):
        arms[backend] = run_arm(
            ArmSpec(
                name=backend,
                policy_factory=lambda p, c, m: SingleRegionPolicy(region="ca-central-1"),
                config=SpotVerseConfig(
                    instance_type="m5.xlarge", checkpoint_backend=backend
                ),
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    return CheckpointBackendResult(arms=arms)


@dataclass
class PredictivePolicyResult:
    """Standard Algorithm 1 vs the predictive (Section 7) variant."""

    arms: Dict[str, ArmResult]

    def render(self) -> str:
        """Text report comparing standard and predictive ranking."""
        rows = []
        for name in ("spotverse", "spotverse-predictive"):
            fleet = self.arms[name].fleet
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    fmt_hours(fleet.makespan_hours),
                    fmt_money(fleet.total_cost),
                ]
            )
        return render_table(
            ["policy", "ints", "time", "cost"],
            rows,
            title="Ablation — Algorithm 1 vs predicted-effective-cost ranking",
        )


def run_predictive_policy_ablation(
    n_workloads: int = 40, seed: int = 7
) -> PredictivePolicyResult:
    """Compare standard and predictive optimizers on the Fig. 7 setup."""
    from repro.core.prediction import PredictiveOptimizer

    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",
    )

    def factory(i: int):
        return genome_reconstruction_workload(f"w-{i:02d}")

    arms: Dict[str, ArmResult] = {}
    for name, policy_factory in [
        ("spotverse", spotverse_policy),
        ("spotverse-predictive", lambda p, c, m: PredictiveOptimizer(m, c)),
    ]:
        arms[name] = run_arm(
            ArmSpec(
                name=name,
                policy_factory=policy_factory,
                config=config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    return PredictivePolicyResult(arms=arms)


@dataclass
class DeadlinePolicyResult:
    """Algorithm 1 vs deadline-aware escalation (the "optimal mix")."""

    arms: Dict[str, ArmResult]
    deadline_hours: float

    def tail_violations(self, name: str) -> int:
        """Workloads finishing past the deadline under one arm."""
        fleet = self.arms[name].fleet
        return sum(
            1
            for record in fleet.records
            if record.elapsed is not None
            and record.elapsed > self.deadline_hours * 3600.0
        )

    def render(self) -> str:
        """Text report comparing deadline compliance and cost."""
        rows = []
        for name in ("spotverse", "spotverse-deadline"):
            fleet = self.arms[name].fleet
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    fmt_hours(fleet.makespan_hours),
                    fmt_money(fleet.total_cost),
                    self.tail_violations(name),
                    f"{100 * fleet.on_demand_share():.0f}%",
                ]
            )
        return render_table(
            ["policy", "ints", "time", "cost", "deadline misses", "OD share"],
            rows,
            title=f"Ablation — deadline-aware escalation "
            f"(deadline {self.deadline_hours:g} h per workload)",
        )


def run_deadline_policy_ablation(
    n_workloads: int = 40,
    seed: int = 7,
    duration_hours: float = 10.5,
    deadline_factor: float = 1.6,
) -> DeadlinePolicyResult:
    """Compare plain Algorithm 1 with deadline escalation (Fig. 7 setup)."""
    from repro.strategies.deadline import DeadlineAwarePolicy

    config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region="ca-central-1",
    )

    def factory(i: int):
        return genome_reconstruction_workload(
            f"w-{i:02d}", duration_hours=duration_hours
        )

    arms: Dict[str, ArmResult] = {}
    for name, policy_factory in [
        ("spotverse", spotverse_policy),
        (
            "spotverse-deadline",
            lambda p, c, m: DeadlineAwarePolicy(m, c, deadline_factor=deadline_factor),
        ),
    ]:
        arms[name] = run_arm(
            ArmSpec(
                name=name,
                policy_factory=policy_factory,
                config=config,
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    return DeadlinePolicyResult(
        arms=arms, deadline_hours=deadline_factor * duration_hours
    )


@dataclass
class CheckpointGranularityResult:
    """Cost/time vs segment count for the checkpoint workload."""

    arms: Dict[int, ArmResult]

    def render(self) -> str:
        """Text report of the granularity sweep."""
        rows = []
        for segments in sorted(self.arms):
            fleet = self.arms[segments].fleet
            rows.append(
                [
                    segments,
                    fleet.total_interruptions,
                    fmt_hours(fleet.makespan_hours),
                    fmt_money(fleet.total_cost),
                ]
            )
        return render_table(
            ["segments", "ints", "time", "cost"],
            rows,
            title="Ablation — checkpoint granularity under single-region ca-central-1",
        )


def run_checkpoint_granularity(
    segment_counts: List[int] = (1, 5, 20, 80),
    n_workloads: int = 20,
    seed: int = 7,
) -> CheckpointGranularityResult:
    """Sweep checkpoint granularity under a flaky single region."""
    arms: Dict[int, ArmResult] = {}
    for segments in segment_counts:
        def factory(i: int, segments=segments):
            return ngs_preprocessing_workload(
                f"w-{i:02d}", n_segments=segments
            )

        arms[segments] = run_arm(
            ArmSpec(
                name=f"segments-{segments}",
                policy_factory=lambda p, c, m: SingleRegionPolicy(region="ca-central-1"),
                config=SpotVerseConfig(instance_type="m5.xlarge"),
                workload_factory=factory,
                n_workloads=n_workloads,
                seed=seed,
            )
        )
    return CheckpointGranularityResult(arms=arms)
