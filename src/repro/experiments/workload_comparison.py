"""Figure 7: SpotVerse vs single-region for standard and checkpoint workloads.

Section 5.2.1's setup: 40 parallel Galaxy workloads on m5.xlarge, all
starting in ca-central-1 (SpotVerse's initial-distribution step is
disabled for a fair comparison; it is evaluated separately in Fig. 9).
Three strategies for the standard workload — single-region, SpotVerse,
on-demand — and two for the checkpoint workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import (
    ArmResult,
    ArmSpec,
    indexed_workload_factory,
    policy_factory,
    run_arms,
    spotverse_policy,
)
from repro.experiments.reporting import fmt_hours, fmt_money, render_table
from repro.strategies.on_demand import OnDemandPolicy
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.genome_reconstruction import genome_reconstruction_workload
from repro.workloads.ngs_preprocessing import ngs_preprocessing_workload

#: Paper reference numbers (Figures 7a-7d and surrounding text).
PAPER_REFERENCE = {
    "standard-single": {"interruptions": 114, "hours": 33.0, "cost": 73.92},
    "standard-spotverse": {"interruptions": 69, "hours": 14.0, "cost": 41.46},
    "standard-on-demand": {"interruptions": 0, "hours": 10.5, "cost": 77.81},
    "checkpoint-single": {"interruptions": 136, "hours": 15.46, "cost": 29.64},
    "checkpoint-spotverse": {"interruptions": 81, "hours": 11.75, "cost": 26.26},
}

START_REGION = "ca-central-1"


@dataclass
class WorkloadComparisonResult:
    """Figure 7 reproduction output."""

    arms: Dict[str, ArmResult]

    def cumulative_interruptions(self, arm: str) -> List[Tuple[float, int]]:
        """Figure 7a/7d series for one arm."""
        return self.arms[arm].fleet.cumulative_interruptions()

    def completion_curve(self, arm: str) -> List[Tuple[float, int]]:
        """Figure 7b series for one arm."""
        return self.arms[arm].fleet.completion_curve()

    def interruption_distribution(self, arm: str) -> Dict[str, int]:
        """Figure 7c series for one arm."""
        return self.arms[arm].fleet.interruptions_by_region()

    def render(self) -> str:
        """Text report: measured vs paper for every arm."""
        rows = []
        for name in sorted(self.arms):
            fleet = self.arms[name].fleet
            paper = PAPER_REFERENCE[name]
            rows.append(
                [
                    name,
                    fleet.total_interruptions,
                    paper["interruptions"],
                    fmt_hours(fleet.makespan_hours),
                    fmt_hours(paper["hours"]),
                    fmt_money(fleet.total_cost),
                    fmt_money(paper["cost"]),
                    f"{fleet.n_complete}/{len(fleet.records)}",
                ]
            )
        table = render_table(
            [
                "arm",
                "ints",
                "paper",
                "time",
                "paper",
                "cost",
                "paper",
                "complete",
            ],
            rows,
            title="Figure 7 — SpotVerse vs single-region vs on-demand "
            "(40 workloads, m5.xlarge, start ca-central-1)",
        )
        dist = self.interruption_distribution("standard-spotverse")
        dist_text = ", ".join(f"{region}={count}" for region, count in sorted(dist.items()))
        return f"{table}\n\nFig 7c (spotverse interruption regions): {dist_text}"


def run_workload_comparison(
    n_workloads: int = 40,
    seed: int = 7,
    duration_hours: float = 10.5,
    jobs: Optional[int] = None,
) -> WorkloadComparisonResult:
    """Run all five Figure 7 arms."""
    spotverse_config = SpotVerseConfig(
        instance_type="m5.xlarge",
        initial_distribution=False,
        start_region=START_REGION,
    )
    baseline_config = SpotVerseConfig(instance_type="m5.xlarge")
    standard = indexed_workload_factory(
        genome_reconstruction_workload, "std-{:02d}", duration_hours=duration_hours
    )
    checkpoint = indexed_workload_factory(
        ngs_preprocessing_workload, "ckp-{:02d}", duration_hours=duration_hours
    )

    specs = [
        ArmSpec(
            name="standard-single",
            policy_factory=policy_factory(SingleRegionPolicy, region=START_REGION),
            config=baseline_config,
            workload_factory=standard,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="standard-spotverse",
            policy_factory=spotverse_policy,
            config=spotverse_config,
            workload_factory=standard,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="standard-on-demand",
            policy_factory=policy_factory(OnDemandPolicy, instance_type="m5.xlarge"),
            config=baseline_config,
            workload_factory=standard,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="checkpoint-single",
            policy_factory=policy_factory(SingleRegionPolicy, region=START_REGION),
            config=baseline_config,
            workload_factory=checkpoint,
            n_workloads=n_workloads,
            seed=seed,
        ),
        ArmSpec(
            name="checkpoint-spotverse",
            policy_factory=spotverse_policy,
            config=spotverse_config,
            workload_factory=checkpoint,
            n_workloads=n_workloads,
            seed=seed,
        ),
    ]
    return WorkloadComparisonResult(arms=run_arms(specs, jobs=jobs))
