"""Interruption time-pattern study (the paper's Section 7 plan).

"We plan to investigate how resource usage impacts spot instance
interruptions depending on the day or time ... as we have observed
differences in these patterns during our experiments."  This driver
runs a long observation fleet in one region and quantifies the
pattern: interruptions cluster in specific hours (reclaim bursts and
the diurnal demand swing) rather than arriving uniformly — exactly the
structure the predictive optimizer can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import ArmResult, ArmSpec, run_arm
from repro.experiments.reporting import render_table
from repro.experiments.timeline import interruption_concentration, interruptions_by_hour
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.base import WorkloadKind, synthetic_workload


@dataclass
class TimePatternResult:
    """Time-pattern study output.

    Attributes:
        arm: The observation fleet's raw result.
        by_hour: Interruption counts per simulation hour.
        concentration: Fraction of interruptions in the busiest 25 %
            of hours (1.0 = fully clustered, ~0.25 = uniform).
    """

    arm: ArmResult
    by_hour: Dict[int, int]
    concentration: float

    def busiest_hours(self, n: int = 5) -> List[int]:
        """The *n* hours with the most interruptions."""
        ranked = sorted(self.by_hour.items(), key=lambda kv: (-kv[1], kv[0]))
        return [hour for hour, _ in ranked[:n]]

    def render(self) -> str:
        """Text report: the hourly histogram plus summary lines."""
        rows = [
            [hour, count, "#" * min(count, 40)]
            for hour, count in sorted(self.by_hour.items())
            if count > 0
        ]
        table = render_table(
            ["hour", "interruptions", ""],
            rows,
            title="Section 7 study — interruptions by hour (single region observation fleet)",
        )
        return (
            f"{table}\n\n"
            f"total interruptions : {self.arm.fleet.total_interruptions}\n"
            f"concentration       : {self.concentration:.2f} "
            f"(busiest 25% of hours; uniform would be ~0.25)\n"
            f"busiest hours       : {self.busiest_hours()}"
        )


def run_time_pattern_study(
    n_workloads: int = 30,
    region: str = "ca-central-1",
    observation_hours: float = 30.0,
    seed: int = 7,
) -> TimePatternResult:
    """Observe interruption timing with a checkpointing probe fleet.

    Checkpoint workloads keep instances continuously exposed in the
    target region for the whole window (standard ones would migrate
    their exposure around through restarts), giving a clean sample of
    the market's reclaim timing.
    """
    def factory(i: int):
        return synthetic_workload(
            f"probe-{i:02d}",
            duration_hours=observation_hours * 0.9,
            n_segments=40,
            kind=WorkloadKind.CHECKPOINT,
        )

    arm = run_arm(
        ArmSpec(
            name="observation",
            policy_factory=lambda p, c, m: SingleRegionPolicy(region=region),
            config=SpotVerseConfig(instance_type="m5.xlarge"),
            workload_factory=factory,
            n_workloads=n_workloads,
            seed=seed,
            max_hours=observation_hours * 3,
        )
    )
    return TimePatternResult(
        arm=arm,
        by_hour=interruptions_by_hour(arm.fleet),
        concentration=interruption_concentration(arm.fleet),
    )
