"""Fleet timeline export and post-hoc analysis.

The paper computes workload durations and costs from the activity logs
SpotVerse stores in S3.  This module provides the equivalent analysis
surface over a :class:`~repro.core.result.FleetResult`: per-workload
timeline rows, CSV/JSON export, interruption clustering by hour (the
day/time patterns Section 7 wants to study), and cost breakdowns.
"""

from __future__ import annotations

import csv
import io
import json
from collections import Counter
from typing import Dict, List

from repro.core.result import FleetResult
from repro.sim.clock import HOUR


def timeline_rows(result: FleetResult) -> List[Dict[str, object]]:
    """One analysis row per workload."""
    rows: List[Dict[str, object]] = []
    for record in result.records:
        rows.append(
            {
                "workload_id": record.workload_id,
                "kind": record.kind.value,
                "submitted_at_h": record.submitted_at / HOUR,
                "completed_at_h": (
                    record.completed_at / HOUR if record.completed_at is not None else None
                ),
                "elapsed_h": (
                    record.elapsed / HOUR if record.elapsed is not None else None
                ),
                "attempts": record.attempts,
                "on_demand_attempts": record.on_demand_attempts,
                "interruptions": record.n_interruptions,
                "regions": "|".join(record.regions),
                "cost_usd": round(record.cost, 6),
            }
        )
    return rows


def to_csv(result: FleetResult) -> str:
    """Export the timeline as CSV text."""
    rows = timeline_rows(result)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(result: FleetResult) -> str:
    """Export the timeline plus fleet aggregates as JSON text."""
    return json.dumps(
        {
            "strategy": result.strategy,
            "total_cost_usd": result.total_cost,
            "instance_cost_usd": result.instance_cost,
            "overhead_cost_usd": result.overhead_cost,
            "makespan_h": result.makespan_hours,
            "total_interruptions": result.total_interruptions,
            "workloads": timeline_rows(result),
        },
        indent=2,
    )


def interruptions_by_hour(result: FleetResult) -> Dict[int, int]:
    """Interruption counts bucketed by hour-of-simulation.

    The view Section 7's day/time study needs: with our diurnal + burst
    hazards, interruptions cluster in specific hours rather than
    arriving uniformly.
    """
    counter: Counter = Counter()
    for record in result.records:
        for time, _ in record.interruptions:
            counter[int(time // HOUR)] += 1
    return dict(sorted(counter.items()))


def interruption_concentration(result: FleetResult) -> float:
    """Fraction of interruptions in the busiest 25 % of hours.

    1.0 means perfectly clustered; near 0.25 means uniform.  Returns
    0.0 for fleets with no interruptions.
    """
    by_hour = interruptions_by_hour(result)
    if not by_hour:
        return 0.0
    total = sum(by_hour.values())
    span = max(by_hour) + 1
    busiest = sorted(by_hour.values(), reverse=True)
    top_quarter = max(1, span // 4)
    return sum(busiest[:top_quarter]) / total


def attempt_statistics(result: FleetResult) -> Dict[str, float]:
    """Mean/max attempts and rework ratio across the fleet."""
    attempts = [record.attempts for record in result.records if record.attempts]
    if not attempts:
        return {"mean_attempts": 0.0, "max_attempts": 0.0, "restart_fraction": 0.0}
    restarts = sum(a - 1 for a in attempts)
    return {
        "mean_attempts": sum(attempts) / len(attempts),
        "max_attempts": float(max(attempts)),
        "restart_fraction": restarts / sum(attempts),
    }
