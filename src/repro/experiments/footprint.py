"""Footprint-pressure study: fleet size vs. a finite capacity pool.

An extension experiment the capacity model enables: concentrate
growing fleets into one market whose spare capacity is finite.  As the
fleet's share of the pool grows, (a) its own reclaim hazard rises
(you become the reclaim target) and (b) spot requests stop fulfilling
— which is exactly the failure mode multi-region distribution buys out
of, and a mechanistic reading of why the paper's Figure 9 spread
helps beyond simple diversification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.config import SpotVerseConfig
from repro.experiments.harness import ArmResult, ArmSpec, run_arm, spotverse_policy
from repro.experiments.reporting import fmt_hours, render_table
from repro.strategies.single_region import SingleRegionPolicy
from repro.workloads.base import synthetic_workload

#: The region whose pool is metered in this study.
STUDY_REGION = "eu-west-1"
#: Spare capacity of the metered pool (instances).
POOL_CAPACITY = 60

#: Profile overrides giving the study region a finite, bursty pool.
FOOTPRINT_OVERRIDES = {
    (STUDY_REGION, "m5.xlarge"): {"capacity": POOL_CAPACITY},
}


@dataclass
class FootprintStudyResult:
    """Footprint study output.

    Attributes:
        concentrated: Fleet-size -> result with everything in the
            metered pool.
        distributed: Fleet-size -> result under SpotVerse's spread.
    """

    concentrated: Dict[int, ArmResult]
    distributed: Dict[int, ArmResult]

    def interruptions_per_workload(self, arm: Dict[int, ArmResult]) -> Dict[int, float]:
        """Normalized interruption rate per fleet size."""
        return {
            size: result.fleet.total_interruptions / size
            for size, result in arm.items()
        }

    def render(self) -> str:
        """Text report of the footprint scaling grid."""
        rows = []
        for size in sorted(self.concentrated):
            single = self.concentrated[size].fleet
            spread = self.distributed[size].fleet
            rows.append(
                [
                    size,
                    f"{single.total_interruptions / size:.2f}",
                    fmt_hours(single.makespan_hours),
                    f"{single.n_complete}/{size}",
                    f"{spread.total_interruptions / size:.2f}",
                    fmt_hours(spread.makespan_hours),
                    f"{spread.n_complete}/{size}",
                ]
            )
        return render_table(
            [
                "fleet size",
                "conc. ints/wl",
                "conc. time",
                "conc. done",
                "spread ints/wl",
                "spread time",
                "spread done",
            ],
            rows,
            title=f"Footprint study — one {POOL_CAPACITY}-slot pool "
            f"({STUDY_REGION}) vs SpotVerse's spread",
        )


def run_footprint_study(
    fleet_sizes: Sequence[int] = (20, 50, 80),
    duration_hours: float = 6.0,
    seed: int = 7,
) -> FootprintStudyResult:
    """Run concentrated-vs-spread arms across fleet sizes."""
    concentrated: Dict[int, ArmResult] = {}
    distributed: Dict[int, ArmResult] = {}
    for size in fleet_sizes:
        def factory(i: int):
            return synthetic_workload(f"w-{i:03d}", duration_hours=duration_hours)

        concentrated[size] = run_arm(
            ArmSpec(
                name=f"concentrated-{size}",
                policy_factory=lambda p, c, m: SingleRegionPolicy(region=STUDY_REGION),
                config=SpotVerseConfig(instance_type="m5.xlarge"),
                workload_factory=factory,
                n_workloads=size,
                seed=seed,
                max_hours=96,
                profile_overrides=FOOTPRINT_OVERRIDES,
            )
        )
        distributed[size] = run_arm(
            ArmSpec(
                name=f"distributed-{size}",
                policy_factory=spotverse_policy,
                config=SpotVerseConfig(instance_type="m5.xlarge"),
                workload_factory=factory,
                n_workloads=size,
                seed=seed,
                max_hours=96,
                profile_overrides=FOOTPRINT_OVERRIDES,
            )
        )
    return FootprintStudyResult(concentrated=concentrated, distributed=distributed)
