"""Deadline-aware spot/on-demand escalation.

The paper's introduction frames the goal as an "optimal mix" of spot
and on-demand, and its related work cites *Can't Be Late* (Wu et al.,
NSDI'24), which switches jobs to on-demand when finishing on spot in
time becomes unlikely.  :class:`DeadlineAwarePolicy` brings that idea
into the SpotVerse framework: run Algorithm 1 as usual, but when an
interrupted workload's remaining slack falls below what another spot
attempt plausibly needs, escalate that workload to the cheapest
on-demand instance instead of gambling on another spot round.
"""

from __future__ import annotations


from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import Placement, PolicyContext, PurchasingOption
from repro.workloads.base import Workload


class DeadlineAwarePolicy(SpotVerseOptimizer):
    """Algorithm 1 plus per-workload on-demand escalation.

    Args:
        monitor: Metric source (as for the base optimizer).
        config: SpotVerse configuration.
        deadline_factor: Each workload's deadline is
            ``deadline_factor x its total duration`` after submission.
        safety_margin: Escalate when remaining slack is below
            ``safety_margin x the workload's remaining duration`` —
            i.e. when one more interruption would likely blow the
            deadline.
    """

    name = "spotverse-deadline"

    def __init__(
        self,
        monitor: Monitor,
        config: SpotVerseConfig,
        deadline_factor: float = 1.6,
        safety_margin: float = 0.25,
    ) -> None:
        super().__init__(monitor, config)
        self._deadline_factor = deadline_factor
        self._safety_margin = safety_margin

    def deadline_for(self, workload: Workload) -> float:
        """Seconds after submission by which the workload should finish."""
        return self._deadline_factor * workload.total_duration

    def should_escalate(self, workload: Workload, ctx: PolicyContext) -> bool:
        """Whether the workload can no longer afford another spot gamble.

        A standard workload restarting now needs its full duration; the
        escalation rule requires the remaining slack to cover that plus
        the safety margin.  Without a record (policy used standalone)
        the answer is no.
        """
        record = ctx.records.get(workload.workload_id)
        if record is None:
            return False
        now = ctx.provider.engine.now
        elapsed = now - record.submitted_at
        slack = self.deadline_for(workload) - elapsed
        # Remaining compute for one more attempt: a standard workload
        # starts over; a checkpoint workload resumes (estimated at half
        # its total, since the policy cannot see segment state).
        needed = workload.total_duration
        if workload.checkpointable:
            needed = 0.5 * workload.total_duration
        return slack < (1.0 + self._safety_margin) * needed

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        """Escalate to on-demand when the deadline is at risk."""
        if self.should_escalate(workload, ctx):
            region, _ = ctx.provider.price_book.cheapest_od_region(
                self._config.instance_type
            )
            return Placement(region=region, option=PurchasingOption.ON_DEMAND)
        return super().migration_placement(workload, interrupted_region, ctx)
