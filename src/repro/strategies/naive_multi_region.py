"""The motivational experiment's naive multi-region strategy.

Section 2.2 spreads workloads round-robin over three *fixed* regions
(ap-northeast-3, ca-central-1, eu-north-1) and, on interruption,
relaunches in one of the other fixed regions — no metrics, no scoring.
It beats single-region (diversification) but can still steer into
flaky regions, which is the gap SpotVerse closes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.errors import StrategyError
from repro.workloads.base import Workload

#: The three regions of the paper's motivational experiment.
MOTIVATION_REGIONS = ("ap-northeast-3", "ca-central-1", "eu-north-1")


class NaiveMultiRegionPolicy(PlacementPolicy):
    """Round-robin over a fixed region list, random failover within it.

    Args:
        regions: The fixed region set (defaults to the paper's three).
    """

    name = "naive-multi-region"

    def __init__(self, regions: Sequence[str] = MOTIVATION_REGIONS) -> None:
        if len(regions) < 2:
            raise StrategyError(
                f"naive multi-region needs at least two regions, got {list(regions)!r}"
            )
        self._regions = list(regions)

    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        return [
            Placement(
                region=self._regions[index % len(self._regions)],
                option=PurchasingOption.SPOT,
            )
            for index in range(len(workloads))
        ]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        candidates = [region for region in self._regions if region != interrupted_region]
        if not candidates:
            candidates = self._regions
        choice = candidates[int(ctx.rng.integers(len(candidates)))]
        return Placement(region=choice, option=PurchasingOption.SPOT)
