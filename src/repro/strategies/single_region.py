"""Traditional single-region spot deployment.

The paper's baseline (Section 5.2.1): every workload launches as a
spot instance in one fixed region — typically the cheapest region for
the instance type — and every interruption relaunches *in the same
region*.  No metrics, no migration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.workloads.base import Workload


class SingleRegionPolicy(PlacementPolicy):
    """Spot-only placement pinned to one region.

    Args:
        region: The region to pin to; when omitted, the cheapest
            mean-spot region for *instance_type* is chosen at first
            use (how the paper picks its baselines, Table 1).
        instance_type: Needed for the cheapest-region lookup.
    """

    name = "single-region"

    def __init__(self, region: Optional[str] = None, instance_type: str = "m5.xlarge") -> None:
        self._region = region
        self._instance_type = instance_type

    def _resolve_region(self, ctx: PolicyContext) -> str:
        if self._region is None:
            self._region, _ = ctx.provider.cheapest_mean_spot_region(self._instance_type)
        return self._region

    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        region = self._resolve_region(ctx)
        return [Placement(region=region, option=PurchasingOption.SPOT) for _ in workloads]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        # Single-region deployments have nowhere else to go.
        return Placement(region=self._resolve_region(ctx), option=PurchasingOption.SPOT)
