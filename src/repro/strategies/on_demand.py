"""On-demand baseline: guaranteed capacity at list price."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.workloads.base import Workload


class OnDemandPolicy(PlacementPolicy):
    """Cheapest-region on-demand placement.

    On-demand instances are never preempted in the model, so the
    migration path exists only for interface completeness (it relaunches
    in place if ever invoked).

    Args:
        region: Pin to a region; when omitted, the cheapest on-demand
            region for *instance_type* is used (the paper normalises
            against "the cheapest region for on-demand instances").
        instance_type: Needed for the cheapest-region lookup.
    """

    name = "on-demand"

    def __init__(self, region: Optional[str] = None, instance_type: str = "m5.xlarge") -> None:
        self._region = region
        self._instance_type = instance_type

    def _resolve_region(self, ctx: PolicyContext) -> str:
        if self._region is None:
            self._region, _ = ctx.provider.price_book.cheapest_od_region(self._instance_type)
        return self._region

    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        region = self._resolve_region(ctx)
        return [
            Placement(region=region, option=PurchasingOption.ON_DEMAND) for _ in workloads
        ]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        return Placement(
            region=self._resolve_region(ctx), option=PurchasingOption.ON_DEMAND
        )
