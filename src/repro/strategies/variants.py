"""SpotVerse policy variants used for ablations.

DESIGN.md calls out the design choices worth ablating; this module
provides the variant policies the ablation benchmarks run:

* :class:`CheapestMigrationPolicy` — identical to Algorithm 1 except
  migration always picks the *cheapest* qualifying region instead of a
  random one among the top R.  Random selection spreads migrating
  workloads; always-cheapest herds them into one market.
"""

from __future__ import annotations


from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import Placement, PolicyContext, PurchasingOption
from repro.workloads.base import Workload


class CheapestMigrationPolicy(SpotVerseOptimizer):
    """Algorithm 1 with deterministic cheapest-region migration."""

    name = "spotverse-cheapest-migration"

    def __init__(self, monitor: Monitor, config: SpotVerseConfig) -> None:
        super().__init__(monitor, config)

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        top = self.top_regions(ctx, exclude_region=interrupted_region)
        if not top:
            return super().migration_placement(workload, interrupted_region, ctx)
        # top_regions is already cheapest-first.
        return Placement(region=top[0].region, option=PurchasingOption.SPOT)
