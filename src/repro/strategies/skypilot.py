"""A SkyPilot-style cost-first multi-region broker.

SkyPilot (Yang et al., NSDI'23) automates "the search for the least
expensive resources" across regions and relaunches interrupted jobs.
Its placement signal is *price*: it does not weigh interruption
frequency or placement scores — the contrast the paper's Table 4
comparison is built on.  This policy models that behaviour faithfully:

* initial placement: the cheapest spot region by *catalog* price
  (SkyPilot's optimizer consults a price catalog refreshed out-of-band,
  not live ticks);
* on interruption: re-run the same cheapest-price search, with no
  reliability signal and no exclusion of the lost region — so the
  broker typically relaunches right back into the market that just
  reclaimed it.

Because the cheapest markets are the crowded, high-interruption ones,
the broker keeps steering into preemption — which is how the paper
explains SkyPilot's interruption counts and costs landing close to the
plain single-region baseline (Table 4 vs Figure 7).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.errors import NoFeasibleRegionError
from repro.workloads.base import Workload


class SkyPilotPolicy(PlacementPolicy):
    """Cheapest-current-spot placement, price-only.

    Args:
        instance_type: Instance type being brokered.
    """

    name = "skypilot"

    def __init__(self, instance_type: str = "m5.xlarge") -> None:
        self._instance_type = instance_type

    def _cheapest_region(self, ctx: PolicyContext) -> str:
        markets = ctx.provider.markets_for_type(self._instance_type)
        if not markets:
            raise NoFeasibleRegionError(
                f"no spot market offers {self._instance_type!r}"
            )
        # Catalog (long-run) price, as SkyPilot's optimizer sees it.
        best = min(
            markets, key=lambda market: (market.price_process.mean, market.region)
        )
        return best.region

    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        region = self._cheapest_region(ctx)
        return [Placement(region=region, option=PurchasingOption.SPOT) for _ in workloads]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        # Price-only reasoning: the lost region is usually still the
        # cheapest, so the job relaunches right where it was reclaimed.
        return Placement(region=self._cheapest_region(ctx), option=PurchasingOption.SPOT)
