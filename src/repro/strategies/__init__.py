"""Baseline placement strategies the paper compares against.

Each baseline implements :class:`~repro.core.policy.PlacementPolicy`
and runs through the same :class:`~repro.core.controller.FleetController`
as SpotVerse, so differences in outcome come purely from placement
decisions:

* :class:`SingleRegionPolicy` — traditional single-region spot
  deployment (relaunch in place).
* :class:`OnDemandPolicy` — cheapest-region on-demand instances.
* :class:`SkyPilotPolicy` — a SkyPilot-style broker: always chase the
  cheapest current spot price, ignoring reliability metrics.
* :class:`NaiveMultiRegionPolicy` — the motivational experiment's
  fixed-region round-robin (Section 2.2).
* :class:`CheapestMigrationPolicy` — SpotVerse's scoring but
  always-cheapest (non-random) migration; the migration ablation.
* :class:`DeadlineAwarePolicy` — Algorithm 1 plus per-workload
  on-demand escalation when a deadline is at risk (the "optimal mix"
  extension, after the paper's cited Can't-Be-Late).
"""

from repro.strategies.deadline import DeadlineAwarePolicy
from repro.strategies.naive_multi_region import NaiveMultiRegionPolicy
from repro.strategies.on_demand import OnDemandPolicy
from repro.strategies.single_region import SingleRegionPolicy
from repro.strategies.skypilot import SkyPilotPolicy
from repro.strategies.variants import CheapestMigrationPolicy

__all__ = [
    "CheapestMigrationPolicy",
    "DeadlineAwarePolicy",
    "NaiveMultiRegionPolicy",
    "OnDemandPolicy",
    "SingleRegionPolicy",
    "SkyPilotPolicy",
]
