"""The Monitor component (Section 3.2 / Section 4).

A CloudWatch-scheduled Lambda collects, per (region, instance type):
spot price, on-demand price, Spot Placement Score, and Interruption
Frequency, writing snapshots to DynamoDB — exactly the paper's data
path (metrics-collector Lambda -> DynamoDB).  The Optimizer reads the
latest snapshot through :meth:`Monitor.snapshot`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence

from repro.cloud.retry import RetryPolicy, call_with_retries, note_dead_letter, note_retry
from repro.core.scoring import RegionMetrics
from repro.errors import CloudError, LambdaError, ThrottlingError
from repro.obs.tracing import traced_hop
from repro.sim.clock import MINUTE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider

#: In-event retry budget for the collector's DynamoDB traffic.  A
#: snapshot row that still throttles after this is dropped (the next
#: cycle rewrites it); a snapshot *read* that exhausts retries raises.
MONITOR_RETRY_POLICY = RetryPolicy(max_attempts=5, interval=0.0, backoff_rate=1.0)

METRICS_TABLE = "spotverse-metrics"
NAMESPACE = "SpotVerse"
#: Bucket where the collector code and the SpotInfo executable are
#: staged for Lambda use (Section 4).
TOOLS_BUCKET = "spotverse-tools"
TOOLS_REGION = "us-east-1"


class Monitor:
    """Periodic metric collection into DynamoDB.

    Args:
        provider: The simulated cloud.
        instance_types: Types to collect for.
        collect_interval: Seconds between collections.
        deploy: When true (default), register the collector Lambda and
            its CloudWatch schedule; when false the caller drives
            :meth:`collect` manually (unit tests).
    """

    def __init__(
        self,
        provider: "CloudProvider",
        instance_types: Sequence[str],
        collect_interval: float = 5 * MINUTE,
        deploy: bool = True,
    ) -> None:
        if not instance_types:
            raise CloudError("Monitor needs at least one instance type to watch")
        self._provider = provider
        self._instance_types = list(instance_types)
        self._table = provider.dynamodb.create_table(
            METRICS_TABLE, partition_key="region", sort_key="instance_type"
        )
        # Reusable dimension dicts per (instance type, region): the
        # collect loop publishes the same label sets every cycle.
        self._dims_cache: Dict[Any, Dict[str, str]] = {}
        self.collections = 0
        if deploy:
            # Section 4: the Python collector code and the SpotInfo
            # executable (placement-score retrieval) are staged in S3
            # so the Lambda functions can use them.
            provider.s3.create_bucket(TOOLS_BUCKET, TOOLS_REGION)
            provider.s3.put_object(
                TOOLS_BUCKET,
                "spotinfo",
                body=b"\x7fELF spotinfo-stub",
                metadata={"purpose": "Spot Placement Score retrieval"},
            )
            provider.s3.put_object(
                TOOLS_BUCKET,
                "collector.py",
                body=b"# metrics collector source staged for Lambda\n",
            )
            provider.lambda_.create_function(
                "spotverse-metrics-collector",
                handler=lambda event, context: self.collect(),
                memory_mb=128,
                simulated_duration=2.0,
            )
            provider.cloudwatch.schedule_rule(
                "spotverse-collect-metrics",
                interval=collect_interval,
                target=self._invoke_collector,
            )
            # Prime the table so the Optimizer has data at t=0.
            self.collect()

    def _invoke_collector(self) -> None:
        """Scheduled collector invocation; a crashed cycle is skipped.

        A real CloudWatch-scheduled Lambda that errors logs a failed
        invocation and the schedule simply fires again next interval —
        the Optimizer reads one-cycle-staler data, nothing crashes.
        """
        try:
            self._provider.lambda_.invoke("spotverse-metrics-collector")
        except LambdaError as exc:
            note_dead_letter(self._provider.telemetry, "monitor:collector", str(exc))

    def _put_snapshot_row(self, item: Dict[str, Any]) -> None:
        """Write one snapshot row, riding out DynamoDB throttling."""
        self._put_snapshot_rows([item])

    def _put_snapshot_rows(self, rows: List[Dict[str, Any]]) -> None:
        """Write one cycle's snapshot rows as a single batched request.

        The whole batch rides out DynamoDB throttling together; a batch
        that still throttles after the retry budget is dropped wholesale
        (the next cycle rewrites every row), which mirrors the old
        per-row drop semantics at batch granularity.
        """
        telemetry = self._provider.telemetry
        call_with_retries(
            lambda: self._provider.dynamodb.batch_write_item(METRICS_TABLE, puts=rows),
            MONITOR_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(
                telemetry, "monitor:put-metrics", attempt, exc
            ),
            on_exhausted=lambda exc: note_dead_letter(
                telemetry, "monitor:put-metrics", str(exc)
            ),
        )

    def collect(self) -> int:
        """Collect one snapshot for every watched market; returns rows written."""
        with traced_hop(
            self._provider.telemetry.tracer, "monitor:collect", "monitor", trace_id="monitor"
        ):
            return self._collect_once()

    def _collect_once(self) -> int:
        # One batched DynamoDB write and one batched CloudWatch put per
        # instance type per cycle, instead of one service call per
        # market.  Charge order is unchanged from the per-market loop:
        # DynamoDB row charges land in market order, CloudWatch datum
        # charges land in market order followed by the regions_collected
        # roll-up, so ledger totals stay bit-identical.
        now = self._provider.engine.now
        od_price = self._provider.price_book.od_price
        dims_cache = self._dims_cache
        written = 0
        for instance_type in self._instance_types:
            rows: List[Dict[str, Any]] = []
            metric_data: List[Any] = []
            for market in self._provider.markets_for_type(instance_type):
                region = market.region
                frequency = market.interruption_frequency
                rows.append(
                    {
                        "region": region,
                        "instance_type": instance_type,
                        "spot_price": market.spot_price,
                        "od_price": od_price(region, instance_type),
                        "placement_score": market.placement_score,
                        "interruption_frequency": frequency,
                        "collected_at": now,
                    }
                )
                dims_key = (instance_type, region)
                dims = dims_cache.get(dims_key)
                if dims is None:
                    dims = dims_cache[dims_key] = {
                        "region": region,
                        "instance_type": instance_type,
                    }
                metric_data.append(("interruption_frequency", frequency, dims))
            written += len(rows)
            self._put_snapshot_rows(rows)
            dims = dims_cache.get(instance_type)
            if dims is None:
                dims = dims_cache[instance_type] = {"instance_type": instance_type}
            metric_data.append(("regions_collected", float(written), dims))
            self._provider.cloudwatch.put_metric_data_batch(NAMESPACE, metric_data)
        self.collections += 1
        return written

    def snapshot(self, instance_type: str) -> List[RegionMetrics]:
        """Latest per-region metrics for *instance_type* from DynamoDB.

        Raises:
            CloudError: If the type has never been collected.
        """
        telemetry = self._provider.telemetry
        rows = call_with_retries(
            lambda: self._provider.dynamodb.scan(
                METRICS_TABLE,
                predicate=lambda item: item["instance_type"] == instance_type,
            ),
            MONITOR_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(
                telemetry, "monitor:snapshot", attempt, exc
            ),
        )
        if not rows:
            raise CloudError(
                f"Monitor has no metrics for {instance_type!r}; "
                "was it included in instance_types?"
            )
        return [
            RegionMetrics(
                region=row["region"],
                instance_type=row["instance_type"],
                spot_price=row["spot_price"],
                od_price=row["od_price"],
                placement_score=row["placement_score"],
                interruption_frequency=row["interruption_frequency"],
                collected_at=row["collected_at"],
            )
            for row in sorted(rows, key=lambda item: item["region"])
        ]

    def staleness(self, instance_type: str) -> float:
        """Seconds since the *oldest* row in the latest snapshot was collected.

        The Optimizer acts on the last written snapshot, not the live
        markets; this is the worst-case age of the data behind its next
        decision (0 right after a collect cycle, growing until the next
        one).
        """
        now = self._provider.engine.now
        return max(metrics.age(now) for metrics in self.snapshot(instance_type))

    def watch_frequency(
        self,
        instance_type: str,
        region: str,
        callback,
        threshold_pct: float = 20.0,
    ):
        """Alarm when a region's Interruption Frequency crosses a level.

        The paper's "custom rules tailored for automated spot instance
        management": *callback(value)* fires on each OK -> ALARM
        transition of the frequency metric the collector publishes.
        Returns the alarm handle.
        """
        return self._provider.cloudwatch.put_alarm(
            name=f"spotverse-freq-{region}-{instance_type}",
            namespace=NAMESPACE,
            metric="interruption_frequency",
            threshold=threshold_pct,
            comparison=">",
            target=callback,
            dimensions={"region": region, "instance_type": instance_type},
        )

    def region_metrics(self, instance_type: str, region: str) -> RegionMetrics:
        """Latest metrics for one (region, type) pair."""
        for metrics in self.snapshot(instance_type):
            if metrics.region == region:
                return metrics
        raise CloudError(f"no metrics for {instance_type!r} in region {region!r}")
