"""SpotVerse core: the paper's primary contribution.

The three components of Section 3.2 — :class:`~repro.core.monitor.Monitor`,
the Optimizer (:class:`~repro.core.optimizer.SpotVerseOptimizer`,
implementing Algorithm 1), and the
:class:`~repro.core.controller.FleetController` — plus the
:class:`~repro.core.spotverse.SpotVerse` facade that wires them over a
:class:`~repro.cloud.provider.CloudProvider`.
"""

from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.dag import (
    DagWorkload,
    Stage,
    StageWorkload,
    StepGraph,
    StepPlanner,
    StepTask,
    compile_graph,
    compile_workflow,
    compile_workload,
)
from repro.core.fleet import (
    CapacityService,
    CheckpointBackend,
    DynamoCheckpointBackend,
    EFSCheckpointBackend,
    FleetStateStore,
    InterruptionService,
    LifecycleService,
)
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.core.result import FleetResult, WorkloadRecord
from repro.core.scoring import RegionMetrics, combined_score
from repro.core.spotverse import SpotVerse

__all__ = [
    "CapacityService",
    "CheckpointBackend",
    "DagWorkload",
    "DynamoCheckpointBackend",
    "EFSCheckpointBackend",
    "FleetController",
    "FleetResult",
    "FleetStateStore",
    "InterruptionService",
    "LifecycleService",
    "Monitor",
    "Placement",
    "PlacementPolicy",
    "PolicyContext",
    "PurchasingOption",
    "RegionMetrics",
    "SpotVerse",
    "SpotVerseConfig",
    "SpotVerseOptimizer",
    "Stage",
    "StageWorkload",
    "StepGraph",
    "StepPlanner",
    "StepTask",
    "WorkloadRecord",
    "combined_score",
    "compile_graph",
    "compile_workflow",
    "compile_workload",
]
