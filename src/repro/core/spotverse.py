"""The SpotVerse facade: Monitor + Optimizer + Controller, wired.

This is the library's headline entry point::

    provider = CloudProvider(seed=42)
    spotverse = SpotVerse(provider, SpotVerseConfig(instance_type="m5.xlarge"))
    result = spotverse.run([standard_general_workload(f"w{i}") for i in range(40)])
    print(result.summary())
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import Placement, PolicyContext
from repro.core.result import FleetResult
from repro.core.scoring import RegionMetrics
from repro.workloads.base import Workload


class SpotVerse:
    """The assembled SpotVerse middleware.

    Args:
        provider: The cloud to manage.
        config: Control-plane configuration (threshold, region budget,
            instance type, ...).
        warmup_steps: Market pre-roll before the control plane starts,
            so prices/scores are off their calibrated means the way a
            live market would be.
    """

    def __init__(
        self,
        provider: CloudProvider,
        config: Optional[SpotVerseConfig] = None,
        warmup_steps: int = 48,
    ) -> None:
        self.provider = provider
        self.config = config or SpotVerseConfig()
        if warmup_steps:
            provider.warmup_markets(warmup_steps)
        self.monitor = Monitor(
            provider,
            instance_types=[self.config.instance_type],
            collect_interval=self.config.collect_interval,
        )
        # Section 4: build the customized Galaxy AMI once and propagate
        # it to every region, so relaunches boot straight into Galaxy.
        # Propagation is setup work done before the experiment clock
        # starts, hence instant.
        self.galaxy_image = provider.ami.register_image(
            "spotverse-galaxy",
            region=self.config.results_region,
            description="Galaxy + admin API key + sra-toolkit + Planemo",
        )
        provider.ami.propagate_everywhere(self.galaxy_image.image_id, instant=True)
        self.optimizer = SpotVerseOptimizer(self.monitor, self.config)
        self.controller = FleetController(
            provider,
            self.optimizer,
            self.config,
            monitor=self.monitor,
            image_id=self.galaxy_image.image_id,
        )

    def run(self, workloads: Sequence[Workload], max_hours: float = 120.0) -> FleetResult:
        """Run a fleet to completion under Algorithm 1."""
        return self.controller.run(workloads, max_hours=max_hours)

    # ------------------------------------------------------------------
    # Advisory views (the "strategic recommendations" of Section 3.2)
    # ------------------------------------------------------------------
    def recommended_regions(self) -> List[RegionMetrics]:
        """Current top-R qualifying regions, cheapest first."""
        ctx = PolicyContext(
            provider=self.provider,
            monitor=self.monitor,
            rng=self.provider.engine.streams.get("spotverse:advice"),
        )
        return self.optimizer.top_regions(ctx)

    def recommends_on_demand(self) -> bool:
        """Whether SpotVerse would currently steer to on-demand."""
        return not self.recommended_regions()

    def recommendation(self) -> Placement:
        """The single placement SpotVerse would pick for a new workload."""
        ctx = PolicyContext(
            provider=self.provider,
            monitor=self.monitor,
            rng=self.provider.engine.streams.get("spotverse:advice"),
        )
        placements = self.optimizer.initial_placements(
            [_PROBE_WORKLOAD], ctx
        )
        return placements[0]


# A one-segment probe used only to ask the optimizer for a placement.
from repro.workloads.base import WorkloadKind  # noqa: E402

_PROBE_WORKLOAD = Workload(
    workload_id="probe",
    kind=WorkloadKind.STANDARD,
    segment_durations=(1.0,),
    description="placement probe",
)
