"""DAG-aware placement: the step planner behind ``run_dags``.

The paper's Galaxy workloads are DAGs of tool steps, but the fleet
controller historically placed one spot instance per monolithic
:class:`~repro.workloads.base.Workload` — independent steps serialized
on one instance and a migration always restarted the whole remaining
tail.  This module makes the *step* the first-class scheduling entity
(the SkyNomad / Spot-on argument from PAPERS.md: egress and rework
costs only make sense per schedulable unit):

* :class:`StepTask` / :class:`StepGraph` — a validated step DAG with
  Kahn-based cycle rejection and per-edge output bytes (the data a
  step ships to each downstream consumer).
* **Stage condensation** — maximal linear chains of steps collapse
  into one :class:`Stage`, executed through the existing
  :class:`~repro.core.execution.WorkloadExecution` with one segment
  per step.  Segments are exactly the checkpoint granularity, so
  step-level checkpointing rides the existing
  :class:`~repro.core.fleet.checkpoint.CheckpointBackend` protocol
  unchanged, and an interruption reschedules only the interrupted
  stage (plus the egress of re-fetching its inputs cross-region).
* :func:`compile_workload` — a linear workload compiles into a DAG
  whose single stage *is* the original ``Workload`` object, so the
  whole-workload path is the degenerate single-chain case and stays
  bit-identical to the pre-DAG controller.
* :func:`compile_workflow` — a Galaxy
  :class:`~repro.galaxy.workflow.Workflow` compiles directly into a
  step graph; each :class:`~repro.galaxy.workflow.WorkflowStep` keeps
  its configured duration, and its input wiring becomes the dependency
  edges.

Cross-*stage* edges carry data: when a stage is released, the
:class:`~repro.core.fleet.coordinator.DagCoordinator` resolves each
input edge to the region its producer stage completed in, and the
consuming execution pays the cross-region transfer at boot (and again
after every migration — moving a step moves its inputs).  Edges inside
one chain are free: the data never leaves the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DagValidationError
from repro.workloads.base import SegmentPayload, Workload, WorkloadKind

#: A step's payload: zero-argument callable run when the step's
#: segment completes (the miniature real computation).
StepPayload = Callable[[], None]


@dataclass(frozen=True)
class StepTask:
    """One schedulable node of a step graph.

    Attributes:
        label: Unique label within the graph.
        duration: Simulated execution seconds (one execution segment).
        deps: Labels of steps whose outputs this step consumes.
        payload: Optional real computation run on step completion.
        output_bytes: Bytes this step ships to *each* downstream
            consumer — the per-edge data-transfer cost model.  Zero
            (the default) models steps whose outputs stay on shared
            storage in the results region.
    """

    label: str
    duration: float
    deps: Tuple[str, ...] = ()
    payload: Optional[StepPayload] = None
    output_bytes: int = 0


class StepGraph:
    """A validated DAG of :class:`StepTask` nodes.

    Raises:
        DagValidationError: On an empty graph, duplicate labels,
            unknown or self dependencies, non-positive durations, or a
            dependency cycle (Kahn's algorithm leaves nodes behind).
    """

    def __init__(self, name: str, steps: Sequence[StepTask]) -> None:
        if not steps:
            raise DagValidationError(f"step graph {name!r} has no steps")
        self.name = name
        self.steps: Tuple[StepTask, ...] = tuple(steps)
        self._by_label: Dict[str, StepTask] = {}
        for step in self.steps:
            if step.label in self._by_label:
                raise DagValidationError(
                    f"step graph {name!r}: duplicate step label {step.label!r}"
                )
            if step.duration <= 0:
                raise DagValidationError(
                    f"step graph {name!r}: step {step.label!r} duration must be positive"
                )
            self._by_label[step.label] = step
        self._successors: Dict[str, List[str]] = {step.label: [] for step in self.steps}
        for step in self.steps:
            for dep in step.deps:
                if dep == step.label:
                    raise DagValidationError(
                        f"step graph {name!r}: step {step.label!r} depends on itself"
                    )
                if dep not in self._by_label:
                    raise DagValidationError(
                        f"step graph {name!r}: step {step.label!r} depends on "
                        f"unknown step {dep!r}"
                    )
                self._successors[dep].append(step.label)
        self._topo_order = self._kahn(name)

    def _kahn(self, name: str) -> Tuple[str, ...]:
        in_degree = {step.label: len(set(step.deps)) for step in self.steps}
        ready = [step.label for step in self.steps if in_degree[step.label] == 0]
        order: List[str] = []
        while ready:
            label = ready.pop(0)
            order.append(label)
            for succ in self._successors[label]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.steps):
            stuck = sorted(label for label, deg in in_degree.items() if deg > 0)
            raise DagValidationError(
                f"step graph {name!r} has a dependency cycle through: "
                f"{', '.join(stuck)}"
            )
        return tuple(order)

    def step(self, label: str) -> StepTask:
        """The step called *label*."""
        step = self._by_label.get(label)
        if step is None:
            raise DagValidationError(f"step graph {self.name!r} has no step {label!r}")
        return step

    def labels(self) -> List[str]:
        """Step labels in definition order."""
        return [step.label for step in self.steps]

    def topological_order(self) -> Tuple[str, ...]:
        """Labels in a deterministic topological order (Kahn, stable)."""
        return self._topo_order

    def successors(self, label: str) -> List[str]:
        """Labels that consume *label*'s outputs, in definition order."""
        self.step(label)
        return list(self._successors[label])

    def predecessors(self, label: str) -> List[str]:
        """Labels *label* consumes, in declaration order (deduplicated)."""
        seen: List[str] = []
        for dep in self.step(label).deps:
            if dep not in seen:
                seen.append(dep)
        return seen

    def serial_duration(self) -> float:
        """Total step seconds — the one-instance serial makespan."""
        return sum(step.duration for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class StageWorkload(Workload):
    """A condensed chain of steps, schedulable as one workload.

    The extra fields let downstream consumers (lifecycle telemetry,
    decision provenance, ``obs explain``) attribute the workload back
    to its DAG and steps without a registry lookup.
    """

    dag_id: str = ""
    step_labels: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Stage:
    """One placement unit of a compiled DAG.

    Attributes:
        stage_id: The stage's workload id (``<dag id>:<first step>``
            for compiled graphs; the original workload id for the
            degenerate single-chain case).
        workload: The schedulable workload (one segment per step).
        step_labels: The condensed chain's step labels, in order.
        deps: Stage ids that must complete before this stage is ready.
        input_edges: ``(producer stage id, bytes)`` pairs — the data
            this stage downloads at boot.  The coordinator resolves
            each producer to its completion region and the execution
            pays the cross-region transfer.
    """

    stage_id: str
    workload: Workload
    step_labels: Tuple[str, ...]
    deps: Tuple[str, ...] = ()
    input_edges: Tuple[Tuple[str, int], ...] = ()


class DagWorkload:
    """A compiled DAG: stages in topological order, ready to submit.

    Raises:
        DagValidationError: On an empty DAG, duplicate stage ids, or a
            stage depending on an unknown stage.
    """

    def __init__(self, dag_id: str, stages: Sequence[Stage]) -> None:
        if not dag_id:
            raise DagValidationError("dag_id must be non-empty")
        if not stages:
            raise DagValidationError(f"dag {dag_id!r} has no stages")
        self.dag_id = dag_id
        self.stages: Tuple[Stage, ...] = tuple(stages)
        self._by_id: Dict[str, Stage] = {}
        for stage in self.stages:
            if stage.stage_id in self._by_id:
                raise DagValidationError(
                    f"dag {dag_id!r}: duplicate stage id {stage.stage_id!r}"
                )
            self._by_id[stage.stage_id] = stage
        for stage in self.stages:
            for dep in stage.deps:
                if dep not in self._by_id:
                    raise DagValidationError(
                        f"dag {dag_id!r}: stage {stage.stage_id!r} depends on "
                        f"unknown stage {dep!r}"
                    )

    def stage(self, stage_id: str) -> Stage:
        """The stage with id *stage_id*."""
        stage = self._by_id.get(stage_id)
        if stage is None:
            raise DagValidationError(f"dag {self.dag_id!r} has no stage {stage_id!r}")
        return stage

    def stage_ids(self) -> List[str]:
        """Stage ids in topological order."""
        return [stage.stage_id for stage in self.stages]

    def roots(self) -> List[Stage]:
        """Stages with no dependencies (the initial ready set)."""
        return [stage for stage in self.stages if not stage.deps]

    @property
    def workloads(self) -> List[Workload]:
        """The stage workloads, in topological order."""
        return [stage.workload for stage in self.stages]

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def n_steps(self) -> int:
        """Total steps across all stages."""
        return sum(len(stage.step_labels) for stage in self.stages)

    def serial_duration(self) -> float:
        """Total compute seconds — the one-instance serial makespan."""
        return sum(stage.workload.total_duration for stage in self.stages)

    def __len__(self) -> int:
        return len(self.stages)


class StepPlanner:
    """Ready-set tracking over a compiled DAG.

    Pure bookkeeping — the
    :class:`~repro.core.fleet.coordinator.DagCoordinator` drives one
    planner per DAG and owns all cloud-side effects.
    """

    def __init__(self, dag: DagWorkload) -> None:
        self.dag = dag
        self._done: set = set()
        self._released: set = set()

    @property
    def done(self) -> frozenset:
        """Completed stage ids."""
        return frozenset(self._done)

    @property
    def released(self) -> frozenset:
        """Stage ids already handed to the controller."""
        return frozenset(self._released)

    def ready(self) -> List[Stage]:
        """Unreleased stages whose dependencies have all completed."""
        return [
            stage
            for stage in self.dag.stages
            if stage.stage_id not in self._released
            and all(dep in self._done for dep in stage.deps)
        ]

    def mark_released(self, stage_id: str) -> None:
        """Record that *stage_id* was handed to the controller."""
        self.dag.stage(stage_id)
        self._released.add(stage_id)

    def mark_done(self, stage_id: str) -> List[Stage]:
        """Record a completion; returns the stages it made ready.

        Raises:
            DagValidationError: On an unknown stage or a completion
                for a stage that was never released.
        """
        if stage_id not in self._released:
            raise DagValidationError(
                f"dag {self.dag.dag_id!r}: stage {stage_id!r} completed "
                "without being released"
            )
        self._done.add(stage_id)
        return self.ready()

    @property
    def all_done(self) -> bool:
        """Whether every stage has completed."""
        return len(self._done) == len(self.dag.stages)


# ----------------------------------------------------------------------
# Compilation: graphs / workflows / linear workloads -> DagWorkload
# ----------------------------------------------------------------------
def condense_chains(graph: StepGraph) -> List[List[StepTask]]:
    """Condense *graph* into maximal linear chains, in topological order.

    A chain extends from step ``u`` to ``v`` only when ``v`` is ``u``'s
    sole successor and ``u`` is ``v``'s sole predecessor — the pair can
    never run concurrently and shares data locally, so one instance
    runs both.  Every step lands in exactly one chain; a purely linear
    graph condenses to a single chain (the degenerate whole-workload
    case).
    """
    chains: List[List[StepTask]] = []
    assigned: set = set()
    for label in graph.topological_order():
        if label in assigned:
            continue
        chain = [label]
        current = label
        while True:
            successors = graph.successors(current)
            if len(successors) != 1:
                break
            nxt = successors[0]
            if len(graph.predecessors(nxt)) != 1:
                break
            chain.append(nxt)
            current = nxt
        assigned.update(chain)
        chains.append([graph.step(step_label) for step_label in chain])
    return chains


def _chain_payload(chain: Sequence[StepTask]) -> Optional[SegmentPayload]:
    """One segment payload dispatching to the chain's step payloads."""
    payloads = [task.payload for task in chain]
    if not any(payload is not None for payload in payloads):
        return None

    def run(index: int) -> None:
        payload = payloads[index]
        if payload is not None:
            payload()

    return run


def compile_graph(
    graph: StepGraph,
    dag_id: str,
    kind: WorkloadKind = WorkloadKind.CHECKPOINT,
    checkpoint_bytes: int = 4 * 1024 * 1024,
    input_bytes: int = 0,
) -> DagWorkload:
    """Compile a step graph into a schedulable :class:`DagWorkload`.

    Args:
        graph: The validated step DAG.
        dag_id: Fleet-unique DAG id; stage ids are
            ``<dag_id>:<first step label>``.
        kind: Interruption semantics of every stage.  Checkpoint (the
            default) gives step-level checkpointing: each step is one
            segment, persisted through the fleet's backend.
        checkpoint_bytes: Per-checkpoint payload bytes per stage.
        input_bytes: External input bytes downloaded by *root* stages
            at every boot (the SRA dataset fetch); internal stages
            get their inputs from producer stages instead.
    """
    chains = condense_chains(graph)
    stage_of_label: Dict[str, str] = {}
    stage_ids: List[str] = []
    for chain in chains:
        stage_id = f"{dag_id}:{chain[0].label}"
        stage_ids.append(stage_id)
        for task in chain:
            stage_of_label[task.label] = stage_id
    stages: List[Stage] = []
    for stage_id, chain in zip(stage_ids, chains):
        labels = tuple(task.label for task in chain)
        in_chain = set(labels)
        deps: List[str] = []
        # Per-producer-stage byte totals: two steps of this chain
        # consuming the same upstream output download it once per boot,
        # but distinct upstream steps each ship their own bytes.
        edge_sources: Dict[str, Dict[str, int]] = {}
        for task in chain:
            for dep in task.deps:
                if dep in in_chain:
                    continue
                producer_stage = stage_of_label[dep]
                if producer_stage not in deps:
                    deps.append(producer_stage)
                edge_sources.setdefault(producer_stage, {})[dep] = graph.step(
                    dep
                ).output_bytes
        input_edges = tuple(
            (producer, sum(by_label.values()))
            for producer in deps
            for by_label in [edge_sources[producer]]
        )
        workload = StageWorkload(
            workload_id=stage_id,
            kind=kind,
            segment_durations=tuple(task.duration for task in chain),
            payload=_chain_payload(chain),
            checkpoint_bytes=checkpoint_bytes,
            input_bytes=input_bytes if not deps else 0,
            description=(
                f"dag {dag_id} stage [{' -> '.join(labels)}] of {graph.name}"
            ),
            dag_id=dag_id,
            step_labels=labels,
        )
        stages.append(
            Stage(
                stage_id=stage_id,
                workload=workload,
                step_labels=labels,
                deps=tuple(deps),
                input_edges=input_edges,
            )
        )
    return DagWorkload(dag_id, stages)


def compile_workload(workload: Workload) -> DagWorkload:
    """Compile a linear workload into its degenerate single-stage DAG.

    The stage's workload **is** the original object — same id, same
    segments, same payload — so submitting the compiled DAG drives the
    exact ``register -> initial_placements -> acquire`` sequence the
    monolithic path does, and the run is bit-identical to it (the
    golden-equivalence guarantee the DAG refactor preserves).
    """
    return DagWorkload(
        workload.workload_id,
        [
            Stage(
                stage_id=workload.workload_id,
                workload=workload,
                step_labels=(workload.workload_id,),
            )
        ],
    )


def compile_workflow(
    workflow: "object",
    dag_id: str,
    kind: WorkloadKind = WorkloadKind.CHECKPOINT,
    checkpoint_bytes: int = 4 * 1024 * 1024,
    input_bytes: int = 0,
    output_bytes: int = 0,
    payloads: Optional[Dict[str, StepPayload]] = None,
) -> DagWorkload:
    """Compile a Galaxy :class:`~repro.galaxy.workflow.Workflow`.

    Each :class:`~repro.galaxy.workflow.WorkflowStep` becomes one
    :class:`StepTask` keeping its configured duration; its input wiring
    becomes the dependency edges.

    Args:
        workflow: The validated Galaxy workflow.
        dag_id: Fleet-unique DAG id.
        kind: Interruption semantics of every stage.
        checkpoint_bytes: Per-checkpoint payload bytes per stage.
        input_bytes: External input bytes for root stages.
        output_bytes: Bytes every step ships per downstream edge
            (uniform; build a :class:`StepGraph` directly for per-step
            sizes).
        payloads: Optional ``{step label: callable}`` real computations.
    """
    payloads = payloads or {}
    tasks = [
        StepTask(
            label=step.label,
            duration=step.duration,
            deps=tuple(workflow.upstream_of(step.label)),
            payload=payloads.get(step.label),
            output_bytes=output_bytes,
        )
        for step in workflow.steps
    ]
    graph = StepGraph(workflow.name, tasks)
    return compile_graph(
        graph,
        dag_id,
        kind=kind,
        checkpoint_bytes=checkpoint_bytes,
        input_bytes=input_bytes,
    )


__all__ = [
    "DagWorkload",
    "Stage",
    "StageWorkload",
    "StepGraph",
    "StepPlanner",
    "StepTask",
    "compile_graph",
    "compile_workflow",
    "compile_workload",
    "condense_chains",
    "StepPayload",
]
