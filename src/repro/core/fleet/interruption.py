"""InterruptionService: the EventBridge → Lambda → Step Functions path.

Owns the paper's Section 4 reaction chain: an EventBridge rule routes
EC2's two-minute spot interruption warnings to the interruption-handler
Lambda, which checkpoints/records the loss and starts a Step Functions
execution that re-acquires capacity per the placement policy (with
retries for failed requests).

All deployed resources target the state store's
:class:`~repro.core.fleet.state.ControlPlaneRouter`, never this object:
warnings and retry attempts already in flight keep working across a
controller teardown/rebuild, exactly as real Lambda/Step Functions
survive a control-plane redeploy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.cloud.retry import note_dead_letter
from repro.cloud.services.stepfunctions import RetryPolicy
from repro.core.execution import ExecutionState
from repro.errors import ThrottlingError
from repro.obs import EventType
from repro.obs.tracing import traced_hop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.fleet.capacity import CapacityService
    from repro.core.fleet.lifecycle import LifecycleService
    from repro.core.fleet.state import FleetStateStore
    from repro.core.policy import PlacementPolicy, PolicyContext


class InterruptionService:
    """Handles interruption warnings and drives re-acquisition.

    Args:
        provider: The simulated cloud.
        policy: Placement policy consulted for migration targets.
        store: Durable fleet state (instance bindings).
        lifecycle: Registry resolving workload ids to live executions.
        capacity: Acquisition service used for the replacement instance.
        ctx: Policy context shared across the control plane.
    """

    def __init__(
        self,
        provider: "CloudProvider",
        policy: "PlacementPolicy",
        store: "FleetStateStore",
        lifecycle: "LifecycleService",
        capacity: "CapacityService",
        ctx: "PolicyContext",
    ) -> None:
        self._provider = provider
        self._policy = policy
        self._store = store
        self._lifecycle = lifecycle
        self._capacity = capacity
        self._ctx = ctx
        self._telemetry = provider.telemetry

    def deploy(self) -> None:
        """Create the Lambda, EventBridge rule, and state machine."""
        router = self._store.router
        self._provider.lambda_.create_function(
            "spotverse-interruption-handler",
            handler=router.interruption_event,
            memory_mb=128,
            simulated_duration=1.0,
        )
        self._provider.eventbridge.put_rule(
            "spotverse-on-interruption",
            source="aws.ec2",
            detail_type="EC2 Spot Instance Interruption Warning",
        )
        self._provider.eventbridge.add_target(
            "spotverse-on-interruption",
            self._provider.lambda_.as_target("spotverse-interruption-handler"),
        )
        self._provider.stepfunctions.create_state_machine(
            "spotverse-reacquire",
            task=router.reacquire,
            retry=RetryPolicy(max_attempts=4, interval=30.0, backoff_rate=2.0),
        )

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------
    def handle_event(self, event: Dict[str, Any], context: object) -> str:
        """Lambda: record the warning, checkpoint, and re-acquire."""
        instance_id = event.get("detail", {}).get("instance-id", "")
        workload_id = self._store.pop_instance(instance_id)
        execution = (
            self._lifecycle.find(workload_id) if workload_id is not None else None
        )
        if execution is None or execution.state is ExecutionState.DONE:
            return "ignored"
        with traced_hop(
            self._telemetry.tracer,
            "interruption:handle",
            "interruption",
            trace_id=execution.workload.workload_id,
            instance_id=instance_id,
        ):
            lost_region = execution.handle_interruption_notice()
            self._telemetry.bus.emit(
                EventType.MIGRATION_STARTED,
                workload_id=execution.workload.workload_id,
                region=lost_region,
                instance_id=instance_id,
            )
            self._telemetry.metrics.counter(
                "migrations_started_total", "reacquisitions kicked off by interruptions"
            ).inc(region=lost_region)
            self._provider.stepfunctions.start_execution(
                "spotverse-reacquire",
                input={
                    "workload_id": execution.workload.workload_id,
                    "exclude_region": lost_region,
                },
            )
            return "handled"

    def reacquire_task(self, input: Dict[str, Any]) -> str:
        """Step Functions task: pick a migration target and request it."""
        workload_id = input["workload_id"]
        execution = self._lifecycle.execution(workload_id)
        if not execution.needs_instance:
            return "noop"
        placement = self._policy.migration_placement(
            execution.workload, input["exclude_region"], self._ctx
        )
        self._capacity.acquire(execution, placement, phase="migration")
        return placement.region

    # ------------------------------------------------------------------
    # Reconciliation (fault repair)
    # ------------------------------------------------------------------
    def reconcile_missed_interruptions(self) -> int:
        """Repair event-path losses the sweep can observe durably.

        The normal reaction chain (EventBridge → Lambda → Step
        Functions) can lose work under injected faults: a delivery
        dropped past its redelivery budget, or a handler Lambda that
        crashed after the instance binding was already popped.  This
        sweep walks the live executions — not the store's bindings,
        which a half-finished handler may have consumed — and repairs
        two symptoms:

        * an execution that believes it is booting/running on an
          instance that is no longer alive (a missed interruption);
        * an execution waiting for capacity with no tracked spot
          request and no pending retry to produce one (a stranded
          workload).

        Gated on a chaos controller being attached: fault-free runs
        must stay bit-identical, and the golden failure-injection
        tests rely on the unrepaired behavior.

        Returns:
            Number of executions repaired this sweep.
        """
        if self._provider.chaos is None:
            return 0
        try:
            return self._reconcile_once()
        except ThrottlingError as exc:
            # Durable state stayed unreadable through every retry; the
            # next sweep sees the same symptoms and repairs them then.
            note_dead_letter(self._telemetry, "reconcile:sweep", str(exc))
            return 0

    def _reconcile_once(self) -> int:
        repaired = 0
        reacquiring = set()
        for execution in self._lifecycle.executions():
            instance = execution.instance
            if instance is None or instance.is_live:
                continue
            if execution.state not in (ExecutionState.BOOTING, ExecutionState.RUNNING):
                continue
            workload_id = execution.workload.workload_id
            self._store.pop_instance(instance.instance_id)
            lost_region = execution.handle_interruption_notice()
            self._telemetry.bus.emit(
                EventType.MIGRATION_STARTED,
                workload_id=workload_id,
                region=lost_region,
                instance_id=instance.instance_id,
                reconciled=True,
            )
            self._telemetry.metrics.counter(
                "reconciled_interruptions_total",
                "missed interruptions repaired by the sweep",
            ).inc(region=lost_region)
            with traced_hop(
                self._telemetry.tracer,
                "interruption:reconcile",
                "interruption",
                trace_id=workload_id,
                instance_id=instance.instance_id,
                region=lost_region,
            ):
                self._provider.stepfunctions.start_execution(
                    "spotverse-reacquire",
                    input={"workload_id": workload_id, "exclude_region": lost_region},
                )
            reacquiring.add(workload_id)
            repaired += 1
        tracked = {workload_id for _, workload_id in self._store.tracked_requests()}
        for execution in self._lifecycle.executions():
            workload_id = execution.workload.workload_id
            if (
                not execution.needs_instance
                or workload_id in tracked
                or workload_id in reacquiring
            ):
                continue
            self._telemetry.metrics.counter(
                "reconciled_stranded_total",
                "stranded capacity waits restarted by the sweep",
            ).inc()
            with traced_hop(
                self._telemetry.tracer,
                "interruption:restrand",
                "interruption",
                trace_id=workload_id,
            ):
                self._provider.stepfunctions.start_execution(
                    "spotverse-reacquire",
                    input={"workload_id": workload_id, "exclude_region": ""},
                )
            repaired += 1
        return repaired
