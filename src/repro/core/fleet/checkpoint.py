"""Unified checkpoint backends for the fleet control plane.

The paper has two checkpoint storage designs: the primary S3 path
(Section 4 — per-segment progress in DynamoDB, interruption-time state
uploads to the results bucket) and the Section 7 EFS alternative
(intra-region file systems with a replica toward the results region).
The reproduction used to split these across
``galaxy.checkpoint.DynamoCheckpointStore`` and an ad-hoc
``EFSCheckpointArtifacts`` helper inside ``core.execution``;
:class:`CheckpointBackend` unifies them behind one protocol so a
:class:`~repro.core.execution.WorkloadExecution` no longer knows which
storage design is in play.

Both backends keep *progress* (the monotonic completed-segment count)
in a :class:`~repro.galaxy.checkpoint.CheckpointStore` — DynamoDB by
default, exactly as the paper does even when artifacts go to EFS — and
differ only in where the interruption-time *artifact* bytes land.

Resilience: every artifact carries a SHA-256 checksum and the segment
count it encodes in its (corruption-proof) metadata, so a replacement
instance can detect an artifact whose bytes were damaged in flight and
fall back to the newest one that still verifies
(:meth:`CheckpointBackend.verify_artifacts`).  Writes rejected by an
injected storage outage are retried on a backoff schedule and
dead-lettered past it; progress reads/writes retry synchronously
against injected DynamoDB throttling.  None of this runs — not one
extra call — when no chaos controller is attached, because the
injected error types are never raised then.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, MutableMapping, Optional, Tuple

from repro.cloud.retry import RetryPolicy, call_with_retries, note_dead_letter, note_retry
from repro.errors import ServiceUnavailableError, ThrottlingError
from repro.galaxy.checkpoint import CheckpointStore, DynamoCheckpointStore
from repro.obs.events import EventType
from repro.obs.tracing import TraceContext, traced_resume

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider

#: Synchronous retry schedule for progress reads/writes against an
#: injected DynamoDB throttle (no simulated time passes in-event).
PROGRESS_RETRY_POLICY = RetryPolicy(max_attempts=5, interval=0.0, backoff_rate=1.0)

#: Backoff schedule for artifact writes rejected by an injected storage
#: outage; past ``max_attempts`` the artifact is dead-lettered (the
#: checkpoint chain tolerates gaps — older artifacts still verify).
ARTIFACT_RETRY_POLICY = RetryPolicy(max_attempts=4, interval=5.0, backoff_rate=2.0, jitter=0.5)


def _checksum(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


# Stored artifact bodies are all-zero buffers whose content depends only
# on their (capped) size, so the buffer and its digest are shared per
# size instead of re-allocating and re-hashing ~1 MiB per checkpoint.
# bytes are immutable, so handing the same object to every put is safe.
_ZERO_BODIES: Dict[int, Tuple[bytes, str]] = {}


def _zero_body(stored: int) -> Tuple[bytes, str]:
    cached = _ZERO_BODIES.get(stored)
    if cached is None:
        body = b"\x00" * stored
        cached = _ZERO_BODIES[stored] = (body, _checksum(body))
    return cached


@dataclass(frozen=True)
class ArtifactCheck:
    """Outcome of verifying a workload's checkpoint artifacts.

    Attributes:
        newest_valid: Whether the most recent artifact's checksum holds
            (the fault-free case; no fallback needed).
        valid_segments: Segment count recorded by the newest artifact
            that verifies (0 when none does).
        corrupt_count: Artifacts newer than the first valid one whose
            bytes no longer match their checksum.
    """

    newest_valid: bool
    valid_segments: int
    corrupt_count: int


def _check_entries(
    entries: List[Tuple[int, bytes, Dict[str, str]]]
) -> Optional[ArtifactCheck]:
    """Verify ``(sequence, body, metadata)`` artifacts, newest first."""
    if not entries:
        return None
    entries.sort(key=lambda entry: entry[0], reverse=True)
    corrupt = 0
    for index, (_sequence, body, metadata) in enumerate(entries):
        expected = metadata.get("sha256", "")
        if expected and _checksum(body) == expected:
            return ArtifactCheck(
                newest_valid=index == 0,
                valid_segments=int(metadata.get("segments", "0")),
                corrupt_count=corrupt,
            )
        corrupt += 1
    return ArtifactCheck(newest_valid=False, valid_segments=0, corrupt_count=corrupt)


class CheckpointBackend(ABC):
    """Progress tracking plus interruption-time artifact persistence.

    Subclasses must set ``_provider`` (the simulated cloud) and
    ``_progress`` (the :class:`CheckpointStore`) in their ``__init__``;
    the progress methods and retry plumbing here use both.

    Attributes:
        name: Stable backend identifier used as the ``backend`` attr of
            ``checkpoint.saved`` telemetry events ("s3" or "efs").
    """

    name: str = ""
    _provider: "CloudProvider"
    _progress: CheckpointStore

    # ------------------------------------------------------------------
    # Progress (shared: DynamoDB in both designs)
    # ------------------------------------------------------------------
    def save_progress(
        self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Record monotonic per-segment progress; see ``CheckpointStore.save``.

        Injected throttling is retried in place; a write exhausted past
        the schedule is dropped (the next segment's save supersedes it).
        """
        telemetry = self._provider.telemetry

        def exhausted(exc: BaseException) -> bool:
            note_dead_letter(
                telemetry, "checkpoint:progress-save", str(exc), workload_id=workload_id
            )
            return False

        return call_with_retries(
            lambda: self._progress.save(workload_id, completed_segments, detail=detail),
            PROGRESS_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(
                telemetry, "checkpoint:progress-save", attempt, exc, workload_id=workload_id
            ),
            on_exhausted=exhausted,
        )

    def load_progress(self, workload_id: str) -> int:
        """Latest completed-segment count (0 when never saved).

        Raises:
            ThrottlingError: When injected throttling outlasted every
                retry; the caller falls back to its in-memory count.
        """
        telemetry = self._provider.telemetry
        return call_with_retries(
            lambda: self._progress.load(workload_id),
            PROGRESS_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(
                telemetry, "checkpoint:progress-load", attempt, exc, workload_id=workload_id
            ),
        )

    def progress_detail(self, workload_id: str) -> Dict[str, Any]:
        """Detail payload of the latest progress write."""
        telemetry = self._provider.telemetry
        return call_with_retries(
            lambda: self._progress.detail(workload_id),
            PROGRESS_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(
                telemetry, "checkpoint:progress-load", attempt, exc, workload_id=workload_id
            ),
        )

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    @abstractmethod
    def persist_artifact(
        self,
        workload_id: str,
        sequence: int,
        checkpoint_bytes: int,
        region: str,
        segments: int = 0,
    ) -> None:
        """Persist the interruption-time checkpoint state itself.

        Args:
            workload_id: Owning workload.
            sequence: Per-workload artifact sequence number (the
                interruption count, so paths never collide).
            checkpoint_bytes: Logical checkpoint size to bill.
            region: Region the dying instance writes from.
            segments: Completed-segment count the artifact encodes,
                recorded in metadata for integrity fallback.
        """

    @abstractmethod
    def verify_artifacts(self, workload_id: str) -> Optional[ArtifactCheck]:
        """Checksum-verify the workload's artifacts, newest first.

        Uses uncharged control-plane reads so verification never
        perturbs the billed cost model.  Returns ``None`` when the
        workload has no artifacts at all.
        """

    def _persist_with_retries(
        self,
        write: Callable[[], None],
        scope: str,
        workload_id: str,
        attempt: int = 1,
        started: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """Run *write*, rescheduling it on an injected storage outage.

        The first call captures the sim time (and, when tracing is on,
        the ambient trace context) so retried writes report their full
        submit-to-landed latency and stay on the causal chain.
        """
        telemetry = self._provider.telemetry
        tracer = telemetry.tracer
        if started is None:
            started = self._provider.engine.now
            if tracer is not None and trace is None:
                trace = tracer.current
        try:
            with traced_resume(tracer, trace if attempt > 1 else None):
                write()
        except ServiceUnavailableError as exc:
            if attempt >= ARTIFACT_RETRY_POLICY.max_attempts:
                if tracer is not None and trace is not None:
                    tracer.event(
                        scope, "lifecycle", parent=trace,
                        status="dead_letter", attempt=attempt,
                    )
                note_dead_letter(
                    telemetry,
                    scope,
                    f"checkpoint artifact write lost after {attempt} attempts",
                    workload_id=workload_id,
                )
                return
            if tracer is not None and trace is not None:
                tracer.event(
                    scope, "lifecycle", parent=trace, status="retry", attempt=attempt
                )
            note_retry(telemetry, scope, attempt, exc, workload_id=workload_id)
            chaos = self._provider.chaos
            rng = chaos.retry_rng if chaos is not None else None
            delay = ARTIFACT_RETRY_POLICY.delay_before_attempt(attempt + 1, rng=rng)
            self._provider.engine.call_in(
                delay,
                lambda: self._persist_with_retries(
                    write, scope, workload_id, attempt + 1, started, trace
                ),
                label=f"checkpoint:retry:{workload_id}",
            )
            return
        latency = self._provider.engine.now - started
        telemetry.metrics.histogram(
            "checkpoint_write_latency_seconds",
            "sim-time latency of checkpoint artifact writes",
        ).observe(latency, backend=self.name)
        if attempt > 1:
            # Fault-free writes land synchronously and stay silent; an
            # event only appears when the asynchronous retry path ran,
            # so pre-existing fault-free streams are unchanged.
            if tracer is not None and trace is not None:
                tracer.event(
                    scope, "lifecycle", parent=trace,
                    attempt=attempt, latency=latency,
                )
            telemetry.bus.emit(
                EventType.CHECKPOINT_PERSISTED,
                workload_id=workload_id,
                scope=scope,
                attempts=attempt,
                latency=latency,
            )


class DynamoCheckpointBackend(CheckpointBackend):
    """The paper's primary design: DynamoDB progress, S3 artifacts.

    Artifact uploads pay cross-region transfer when the results bucket
    lives elsewhere.  The stored object is capped at 1 MiB to keep
    simulator memory flat; the remaining logical bytes are charged
    directly (same cost, no storage).

    Args:
        provider: The simulated cloud.
        results_bucket: Bucket receiving checkpoint artifacts.
        progress_store: Override for the progress store (tests pass an
            in-memory one); defaults to DynamoDB.
    """

    name = "s3"

    def __init__(
        self,
        provider: "CloudProvider",
        results_bucket: str,
        progress_store: Optional[CheckpointStore] = None,
    ) -> None:
        self._provider = provider
        self._bucket = results_bucket
        self._progress = (
            progress_store
            if progress_store is not None
            else DynamoCheckpointStore(provider.dynamodb)
        )

    def persist_artifact(
        self,
        workload_id: str,
        sequence: int,
        checkpoint_bytes: int,
        region: str,
        segments: int = 0,
    ) -> None:
        from repro.cloud.billing import S3_CROSS_REGION_TRANSFER_PRICE, CostCategory

        stored = min(checkpoint_bytes, 1 << 20)
        body, digest = _zero_body(stored)
        metadata = {
            "actual_bytes": str(checkpoint_bytes),
            "sha256": digest,
            "segments": str(segments),
        }

        def write() -> None:
            self._provider.s3.put_object(
                self._bucket,
                f"checkpoints/{workload_id}/{sequence}.bin",
                body=body,
                metadata=metadata,
                source_region=region,
                tag=workload_id,
            )
            remaining = checkpoint_bytes - stored
            bucket_region = self._provider.s3.bucket_region(self._bucket)
            if remaining > 0 and region != bucket_region:
                self._provider.ledger.charge(
                    time=self._provider.engine.now,
                    category=CostCategory.S3_TRANSFER,
                    amount=(remaining / (1024 ** 3)) * S3_CROSS_REGION_TRANSFER_PRICE,
                    region=region,
                    tag=workload_id,
                    detail=f"checkpoint transfer remainder {workload_id}",
                )

        self._persist_with_retries(write, scope="checkpoint:s3", workload_id=workload_id)

    def verify_artifacts(self, workload_id: str) -> Optional[ArtifactCheck]:
        prefix = f"checkpoints/{workload_id}/"
        entries: List[Tuple[int, bytes, Dict[str, str]]] = []
        for key in self._provider.s3.list_objects(self._bucket, prefix):
            stem = key[len(prefix):]
            if not stem.endswith(".bin"):
                continue
            try:
                sequence = int(stem[:-4])
            except ValueError:
                continue
            obj = self._provider.s3.peek_object(self._bucket, key)
            if obj is not None:
                entries.append((sequence, obj.body, obj.metadata))
        return _check_entries(entries)


class EFSCheckpointBackend(CheckpointBackend):
    """Section 7 alternative: regional EFS mounts for artifact state.

    Each region workloads run in gets a file system on first use, with
    a replica toward the results region so the control plane can read
    state without S3.  Writes are intra-region (fast — they comfortably
    fit the two-minute notice window), and replication cost replaces
    the S3 cross-region transfer charge.  Progress still lives in
    DynamoDB (the paper keeps per-file status there in both designs).

    Args:
        provider: The simulated cloud.
        results_region: Region replicas converge toward.
        progress_store: Override for the progress store; defaults to
            DynamoDB.
        fs_registry: region -> file-system-id mapping.  Pass a durable
            mapping (``FleetStateStore.mapping``) so a rebuilt control
            plane reuses the file systems the torn-down one created
            instead of provisioning fresh ones.
    """

    name = "efs"

    def __init__(
        self,
        provider: "CloudProvider",
        results_region: str,
        progress_store: Optional[CheckpointStore] = None,
        fs_registry: Optional[MutableMapping] = None,
    ) -> None:
        self._provider = provider
        self._results_region = results_region
        self._progress = (
            progress_store
            if progress_store is not None
            else DynamoCheckpointStore(provider.dynamodb)
        )
        self._fs_by_region: MutableMapping = fs_registry if fs_registry is not None else {}

    def persist_artifact(
        self,
        workload_id: str,
        sequence: int,
        checkpoint_bytes: int,
        region: str,
        segments: int = 0,
    ) -> None:
        try:
            fs_id = self._fs_by_region.get(region)
            if fs_id is None:
                fs = self._provider.efs.create_file_system(region)
                if region != self._results_region:
                    self._provider.efs.create_replica(fs.fs_id, self._results_region)
                fs_id = fs.fs_id
                self._fs_by_region[region] = fs_id
        except ThrottlingError as exc:
            # The durable fs registry stayed throttled through every
            # retry: this artifact is lost (older ones still verify).
            note_dead_letter(
                self._provider.telemetry, "checkpoint:efs", str(exc), workload_id=workload_id
            )
            return
        stored = min(checkpoint_bytes, 1 << 20)
        body, digest = _zero_body(stored)
        metadata = {
            "actual_bytes": str(checkpoint_bytes),
            "sha256": digest,
            "segments": str(segments),
        }

        def write() -> None:
            self._provider.efs.write_file(
                fs_id,
                f"checkpoints/{workload_id}/{sequence}.bin",
                body=body,
                source_region=region,
                tag=workload_id,
                logical_bytes=checkpoint_bytes,
                metadata=metadata,
            )

        self._persist_with_retries(write, scope="checkpoint:efs", workload_id=workload_id)

    def verify_artifacts(self, workload_id: str) -> Optional[ArtifactCheck]:
        prefix = f"checkpoints/{workload_id}/"
        entries: List[Tuple[int, bytes, Dict[str, str]]] = []
        for fs_id in sorted(str(fs) for fs in self._fs_by_region.values()):
            for path in self._provider.efs.list_files(fs_id, prefix):
                stem = path[len(prefix):]
                if not stem.endswith(".bin"):
                    continue
                try:
                    sequence = int(stem[:-4])
                except ValueError:
                    continue
                file = self._provider.efs.peek_file(fs_id, path)
                if file is not None:
                    entries.append((sequence, file.body, file.metadata))
        return _check_entries(entries)
