"""Unified checkpoint backends for the fleet control plane.

The paper has two checkpoint storage designs: the primary S3 path
(Section 4 — per-segment progress in DynamoDB, interruption-time state
uploads to the results bucket) and the Section 7 EFS alternative
(intra-region file systems with a replica toward the results region).
The reproduction used to split these across
``galaxy.checkpoint.DynamoCheckpointStore`` and an ad-hoc
``EFSCheckpointArtifacts`` helper inside ``core.execution``;
:class:`CheckpointBackend` unifies them behind one protocol so a
:class:`~repro.core.execution.WorkloadExecution` no longer knows which
storage design is in play.

Both backends keep *progress* (the monotonic completed-segment count)
in a :class:`~repro.galaxy.checkpoint.CheckpointStore` — DynamoDB by
default, exactly as the paper does even when artifacts go to EFS — and
differ only in where the interruption-time *artifact* bytes land.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, MutableMapping, Optional

from repro.galaxy.checkpoint import CheckpointStore, DynamoCheckpointStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider


class CheckpointBackend(ABC):
    """Progress tracking plus interruption-time artifact persistence.

    Attributes:
        name: Stable backend identifier used as the ``backend`` attr of
            ``checkpoint.saved`` telemetry events ("s3" or "efs").
    """

    name: str = ""

    @abstractmethod
    def save_progress(
        self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Record monotonic per-segment progress; see ``CheckpointStore.save``."""

    @abstractmethod
    def load_progress(self, workload_id: str) -> int:
        """Latest completed-segment count (0 when never saved)."""

    @abstractmethod
    def progress_detail(self, workload_id: str) -> Dict[str, Any]:
        """Detail payload of the latest progress write."""

    @abstractmethod
    def persist_artifact(
        self, workload_id: str, sequence: int, checkpoint_bytes: int, region: str
    ) -> None:
        """Persist the interruption-time checkpoint state itself.

        Args:
            workload_id: Owning workload.
            sequence: Per-workload artifact sequence number (the
                interruption count, so paths never collide).
            checkpoint_bytes: Logical checkpoint size to bill.
            region: Region the dying instance writes from.
        """


class DynamoCheckpointBackend(CheckpointBackend):
    """The paper's primary design: DynamoDB progress, S3 artifacts.

    Artifact uploads pay cross-region transfer when the results bucket
    lives elsewhere.  The stored object is capped at 1 MiB to keep
    simulator memory flat; the remaining logical bytes are charged
    directly (same cost, no storage).

    Args:
        provider: The simulated cloud.
        results_bucket: Bucket receiving checkpoint artifacts.
        progress_store: Override for the progress store (tests pass an
            in-memory one); defaults to DynamoDB.
    """

    name = "s3"

    def __init__(
        self,
        provider: "CloudProvider",
        results_bucket: str,
        progress_store: Optional[CheckpointStore] = None,
    ) -> None:
        self._provider = provider
        self._bucket = results_bucket
        self._progress = (
            progress_store
            if progress_store is not None
            else DynamoCheckpointStore(provider.dynamodb)
        )

    def save_progress(
        self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None
    ) -> bool:
        return self._progress.save(workload_id, completed_segments, detail=detail)

    def load_progress(self, workload_id: str) -> int:
        return self._progress.load(workload_id)

    def progress_detail(self, workload_id: str) -> Dict[str, Any]:
        return self._progress.detail(workload_id)

    def persist_artifact(
        self, workload_id: str, sequence: int, checkpoint_bytes: int, region: str
    ) -> None:
        from repro.cloud.billing import S3_CROSS_REGION_TRANSFER_PRICE, CostCategory

        self._provider.s3.put_object(
            self._bucket,
            f"checkpoints/{workload_id}/{sequence}.bin",
            body=b"\x00" * min(checkpoint_bytes, 1 << 20),
            metadata={"actual_bytes": str(checkpoint_bytes)},
            source_region=region,
            tag=workload_id,
        )
        stored = min(checkpoint_bytes, 1 << 20)
        remaining = checkpoint_bytes - stored
        bucket_region = self._provider.s3.bucket_region(self._bucket)
        if remaining > 0 and region != bucket_region:
            self._provider.ledger.charge(
                time=self._provider.engine.now,
                category=CostCategory.S3_TRANSFER,
                amount=(remaining / (1024 ** 3)) * S3_CROSS_REGION_TRANSFER_PRICE,
                region=region,
                tag=workload_id,
                detail=f"checkpoint transfer remainder {workload_id}",
            )


class EFSCheckpointBackend(CheckpointBackend):
    """Section 7 alternative: regional EFS mounts for artifact state.

    Each region workloads run in gets a file system on first use, with
    a replica toward the results region so the control plane can read
    state without S3.  Writes are intra-region (fast — they comfortably
    fit the two-minute notice window), and replication cost replaces
    the S3 cross-region transfer charge.  Progress still lives in
    DynamoDB (the paper keeps per-file status there in both designs).

    Args:
        provider: The simulated cloud.
        results_region: Region replicas converge toward.
        progress_store: Override for the progress store; defaults to
            DynamoDB.
        fs_registry: region -> file-system-id mapping.  Pass a durable
            mapping (``FleetStateStore.mapping``) so a rebuilt control
            plane reuses the file systems the torn-down one created
            instead of provisioning fresh ones.
    """

    name = "efs"

    def __init__(
        self,
        provider: "CloudProvider",
        results_region: str,
        progress_store: Optional[CheckpointStore] = None,
        fs_registry: Optional[MutableMapping] = None,
    ) -> None:
        self._provider = provider
        self._results_region = results_region
        self._progress = (
            progress_store
            if progress_store is not None
            else DynamoCheckpointStore(provider.dynamodb)
        )
        self._fs_by_region: MutableMapping = fs_registry if fs_registry is not None else {}

    def save_progress(
        self, workload_id: str, completed_segments: int, detail: Optional[Dict[str, Any]] = None
    ) -> bool:
        return self._progress.save(workload_id, completed_segments, detail=detail)

    def load_progress(self, workload_id: str) -> int:
        return self._progress.load(workload_id)

    def progress_detail(self, workload_id: str) -> Dict[str, Any]:
        return self._progress.detail(workload_id)

    def persist_artifact(
        self, workload_id: str, sequence: int, checkpoint_bytes: int, region: str
    ) -> None:
        fs_id = self._fs_by_region.get(region)
        if fs_id is None:
            fs = self._provider.efs.create_file_system(region)
            if region != self._results_region:
                self._provider.efs.create_replica(fs.fs_id, self._results_region)
            fs_id = fs.fs_id
            self._fs_by_region[region] = fs_id
        self._provider.efs.write_file(
            fs_id,
            f"checkpoints/{workload_id}/{sequence}.bin",
            body=b"\x00" * min(checkpoint_bytes, 1 << 20),
            source_region=region,
            tag=workload_id,
            logical_bytes=checkpoint_bytes,
        )
