"""Durable fleet state in the simulated DynamoDB.

The paper's Section 4 control plane keeps *all* durable state in
DynamoDB: the serverless components (Lambdas, the Step Functions
re-acquire machine) are stateless and can die or redeploy at any time.
:class:`FleetStateStore` reproduces that property for the fleet
controller — workload progress, instance bindings, and open spot
requests live in DynamoDB tables rather than in-process dicts, so a
controller can be torn down mid-run and a fresh one rebuilt from the
store alone (see ``LifecycleService.restore``).

The store's tables are *unmetered* (see
:class:`~repro.cloud.services.dynamodb.Table`): the paper bills its
checkpoint/metrics tables, which stay metered, but the state mirror's
request volume is a reproduction artifact and must not perturb the
cost model the evaluation compares.

:class:`ControlPlaneRouter` is the non-durable half: the stand-in for
the *deployed* serverless endpoints.  Cloud-side wiring (EventBridge
targets, the CloudWatch sweep rule, EC2 fulfillment callbacks) holds a
reference to the router's stable methods, and the router forwards to
whichever service instances are currently bound — exactly how a real
Lambda survives a control-plane redeploy: the endpoint is stable, the
code behind it is replaced.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, MutableMapping, Optional, Tuple

from repro.cloud.retry import RetryPolicy, call_with_retries, note_dead_letter, note_retry
from repro.errors import ExperimentError, ThrottlingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cloud.services.dynamodb import DynamoDBService
    from repro.cloud.services.ec2 import Instance, SpotRequest
    from repro.core.execution import WorkloadExecution

#: Synchronous retry schedule for store reads/writes against an injected
#: DynamoDB throttle.  The retries happen inside the calling event (no
#: simulated time passes), so only ``max_attempts`` matters here.
STORE_RETRY_POLICY = RetryPolicy(max_attempts=5, interval=0.0, backoff_rate=1.0)

#: Tenant every workload belongs to unless the tenancy layer says
#: otherwise — single-tenant runs never mention tenants at all.
DEFAULT_TENANT = "default"


def shard_index(tenant_id: str, workload_id: str, n_shards: int) -> int:
    """Stable shard of one workload: ``hash(tenant_id, workload_id) % n``.

    Uses CRC-32 rather than Python's builtin ``hash`` so the partition
    map survives process restarts and ``PYTHONHASHSEED`` — the same
    (tenant, workload) pair must land on the same shard in a resumed
    controller or a replayed run.
    """
    if n_shards <= 1:
        return 0
    return zlib.crc32(f"{tenant_id}/{workload_id}".encode("utf-8")) % n_shards


class _MetaMapping(MutableMapping):
    """Dict-like view over one partition of the store's meta table.

    Lets components (e.g. the EFS checkpoint backend's per-region file
    system registry) keep small key-value state durably without knowing
    about DynamoDB.
    """

    def __init__(self, store: "FleetStateStore", section: str) -> None:
        self._store = store
        self._section = section

    def __getitem__(self, key: str) -> Any:
        store = self._store
        pending = store._pending[store.meta_table]
        pending_key = (self._section, key)
        if pending_key in pending:
            staged = pending[pending_key]
            if staged is None:
                raise KeyError(key)
            return staged["value"]
        item = store._read(
            lambda: store._dynamodb.get_item(store.meta_table, self._section, key),
            scope=f"fleet-state:meta:{self._section}",
        )
        if item is None:
            raise KeyError(key)
        return item["value"]

    def __setitem__(self, key: str, value: Any) -> None:
        self._store._stage_put(
            self._store.meta_table,
            (self._section, key),
            {"section": self._section, "key": key, "value": value},
            scope=f"fleet-state:meta:{self._section}",
        )

    def __delitem__(self, key: str) -> None:
        self.__getitem__(key)  # raise KeyError when absent
        self._store._stage_delete(
            self._store.meta_table,
            (self._section, key),
            scope=f"fleet-state:meta:{self._section}",
        )

    def __iter__(self) -> Iterator[str]:
        rows = self._store._read(
            lambda: self._store._dynamodb.query(self._store.meta_table, self._section),
            scope=f"fleet-state:meta:{self._section}",
        )
        keys = {row["key"] for row in rows}
        for (section, key), staged in self._store._pending[self._store.meta_table].items():
            if section != self._section:
                continue
            if staged is None:
                keys.discard(key)
            else:
                keys.add(key)
        # The flushed path reads through ``query``, which returns rows
        # sorted by sort key; sorting the merged set keeps iteration
        # order independent of flush timing.
        return iter(sorted(keys))

    def __len__(self) -> int:
        return len(list(iter(self)))


class FleetStateStore:
    """Workload / instance / request state, durably in DynamoDB.

    Args:
        dynamodb: The simulated DynamoDB service to keep state in.
        namespace: Table-name namespace; controllers default to a fresh
            one minted by the DynamoDB service (``ctl000``, ``ctl001``,
            ... *per provider*, so two runs on fresh providers — e.g. a
            plain run and its instrumented chaos twin — mint identical
            namespaces and stay bit-identical).  Pass the same store
            object to a new controller to rebuild from it.
        n_shards: Partition count for the workload / instance / request
            tables.  The default of 1 is byte-identical to the
            unsharded store (same table names, same flush batches, same
            scan orders).  With more shards, items partition by
            :func:`shard_index` over ``(tenant_id, workload_id)`` —
            the tenancy layer assigns tenants via
            :meth:`assign_tenant` before registration, everything else
            defaults to :data:`DEFAULT_TENANT` — so per-shard scans,
            flush batches, and :meth:`state_counts` stay O(shard)
            instead of O(fleet).  The meta / dags / tenants tables are
            control-plane-small and stay unsharded.
    """

    def __init__(
        self,
        dynamodb: "DynamoDBService",
        namespace: Optional[str] = None,
        n_shards: int = 1,
    ) -> None:
        if int(n_shards) < 1:
            raise ExperimentError(f"n_shards must be >= 1, got {n_shards}")
        self._dynamodb = dynamodb
        self.n_shards = int(n_shards)
        self.namespace = (
            namespace if namespace is not None else dynamodb.next_store_namespace()
        )
        prefix = f"spotverse-fleet-{self.namespace}"
        self._prefix = prefix
        self.workloads_table = f"{prefix}-workloads"
        self.instances_table = f"{prefix}-instances"
        self.requests_table = f"{prefix}-requests"
        self.meta_table = f"{prefix}-meta"
        self.dags_table = f"{prefix}-dags"
        self.tenants_table = f"{prefix}-tenants"

        def shard_names(base: str) -> List[str]:
            # Shard 0 keeps the historical unsuffixed name so a
            # 1-shard store is indistinguishable from pre-shard builds.
            return [base] + [f"{base}-s{i:02d}" for i in range(1, self.n_shards)]

        self._workload_shards = shard_names(self.workloads_table)
        self._instance_shards = shard_names(self.instances_table)
        self._request_shards = shard_names(self.requests_table)
        for table in self._workload_shards:
            dynamodb.create_table(table, partition_key="workload_id", metered=False)
        for table in self._instance_shards:
            dynamodb.create_table(table, partition_key="instance_id", metered=False)
        for table in self._request_shards:
            dynamodb.create_table(table, partition_key="request_id", metered=False)
        dynamodb.create_table(
            self.meta_table, partition_key="section", sort_key="key", metered=False
        )
        dynamodb.create_table(self.dags_table, partition_key="dag_id", metered=False)
        dynamodb.create_table(self.tenants_table, partition_key="tenant_id", metered=False)
        # Write-through overlay: mutations stage here (keyed by the
        # table's ``(partition, sort)`` tuple; ``None`` is a tombstone)
        # and land in DynamoDB as one ``batch_write_item`` per table at
        # the next engine tick boundary.  Reads consult the overlay
        # first, so staged state is always visible.
        self._pending: Dict[str, Dict[Tuple[Any, Any], Optional[Dict[str, Any]]]] = {}
        flush_tables: List[Tuple[str, str]] = []
        for group in (self._workload_shards, self._instance_shards, self._request_shards):
            for table in group:
                flush_tables.append((table, table[len(prefix) + 1:]))
        flush_tables.append((self.meta_table, "meta"))
        flush_tables.append((self.dags_table, "dags"))
        flush_tables.append((self.tenants_table, "tenants"))
        self._flush_tables = tuple(flush_tables)
        for table, _ in self._flush_tables:
            self._pending[table] = {}
        # Shard routing state.  Both maps are in-process conveniences
        # over durable data: tenants are re-assigned on resume (the
        # tenancy layer persists its map in the meta table) and
        # instance/request shards fall back to an all-shard probe when
        # unknown, so a rebuilt controller over the same store object —
        # the crash-recovery contract — never loses an item.
        self._tenant_of: Dict[str, str] = {}
        self._entity_shard: Dict[str, int] = {}
        dynamodb.provider.engine.add_tick_hook(self.flush)
        self.router = ControlPlaneRouter()

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    def assign_tenant(self, workload_id: str, tenant_id: str) -> None:
        """Pin *workload_id*'s shard to *tenant_id* (before registration)."""
        self._tenant_of[workload_id] = tenant_id

    def tenant_of(self, workload_id: str) -> str:
        """Tenant a workload was admitted for (:data:`DEFAULT_TENANT` if none)."""
        return self._tenant_of.get(workload_id, DEFAULT_TENANT)

    def shard_of(self, workload_id: str) -> int:
        """The shard *workload_id*'s items live on."""
        if self.n_shards == 1:
            return 0
        return shard_index(self.tenant_of(workload_id), workload_id, self.n_shards)

    # ------------------------------------------------------------------
    # Resilient store access
    # ------------------------------------------------------------------
    # Store traffic is the control plane's most frequent DynamoDB use,
    # so it is the first casualty of an injected throttle window.  Both
    # helpers retry in place (no simulated time passes inside an event);
    # a write exhausted past ``STORE_RETRY_POLICY.max_attempts`` is
    # dropped with a dead letter — the mirror self-heals on the next
    # ``_sync`` — while an exhausted read re-raises, because callers
    # cannot act on state they never saw.

    def _write(self, fn: Callable[[], Any], scope: str) -> None:
        telemetry = self._dynamodb.provider.telemetry
        tracer = telemetry.tracer
        if tracer is not None and tracer.current is not None:
            # Store traffic off a causal chain (setup, bookkeeping
            # sweeps) stays out of every trace tree.
            tracer.event(scope, "dynamodb")
        call_with_retries(
            fn,
            STORE_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(telemetry, scope, attempt, exc),
            on_exhausted=lambda exc: note_dead_letter(telemetry, scope, str(exc)),
        )

    def _read(self, fn: Callable[[], Any], scope: str) -> Any:
        telemetry = self._dynamodb.provider.telemetry
        return call_with_retries(
            fn,
            STORE_RETRY_POLICY,
            retryable=ThrottlingError,
            on_retry=lambda attempt, exc: note_retry(telemetry, scope, attempt, exc),
        )

    # ------------------------------------------------------------------
    # Batched write-through overlay
    # ------------------------------------------------------------------
    # Every mutation stages into ``_pending`` and lands in DynamoDB at
    # the next engine tick boundary as one batch per table.  The tracer
    # event still fires at the *staging* site (the causal chain the
    # write belongs to); the flush itself runs between events, where no
    # span is current.  One semantic caveat: deleting and re-putting the
    # same key inside one tick keeps the row's original scan position,
    # where item-at-a-time writes would move it to the end — no store
    # client does this (instance/request ids are unique per acquisition
    # and workloads are never deleted).

    def _stage(
        self,
        table: str,
        key: Tuple[Any, Any],
        item: Optional[Dict[str, Any]],
        scope: str,
    ) -> None:
        tracer = self._dynamodb.provider.telemetry.tracer
        if tracer is not None and tracer.current is not None:
            tracer.event(scope, "dynamodb")
        # Staged dicts are stored as-is: every staging site passes a
        # freshly built dict, and overlay reads copy on the way out.
        self._pending[table][key] = item

    def _stage_put(
        self, table: str, key: Tuple[Any, Any], item: Dict[str, Any], scope: str
    ) -> None:
        self._stage(table, key, item, scope)

    def _stage_delete(self, table: str, key: Tuple[Any, Any], scope: str) -> None:
        self._stage(table, key, None, scope)

    def _overlay_scan(self, table: str, rows: List[Dict[str, Any]], key_attr: str) -> List[Dict[str, Any]]:
        """Merge a table scan with the staged overlay.

        Scanned rows keep their positions (staged replacements swap in
        place, tombstoned rows drop out); keys staged but never flushed
        append in staging order — matching the insertion order a flushed
        table would show.
        """
        pending = self._pending[table]
        if not pending:
            return rows
        merged = []
        seen = set()
        for row in rows:
            key = (row[key_attr], None)
            if key in pending:
                seen.add(key)
                staged = pending[key]
                if staged is None:
                    continue
                merged.append(dict(staged))
            else:
                merged.append(row)
        for key, staged in pending.items():
            if staged is not None and key not in seen:
                merged.append(dict(staged))
        return merged

    def flush(self) -> None:
        """Land every staged write in DynamoDB, one batch per table.

        Runs from the engine's tick hook (and from controller teardown).
        A batch that exhausts its retry budget against an injected
        throttle is dead-lettered and **stays pending**, so the next
        tick's flush retries it — the mirror self-heals instead of
        silently losing state.
        """
        for table, label in self._flush_tables:
            pending = self._pending[table]
            if not pending:
                continue
            puts = [item for item in pending.values() if item is not None]
            deletes = [key for key, item in pending.items() if item is None]
            flushed: List[bool] = []

            def apply(table=table, puts=puts, deletes=deletes, flushed=flushed):
                self._dynamodb.batch_write_item(table, puts=puts, deletes=deletes)
                flushed.append(True)

            self._write(apply, scope=f"fleet-state:flush:{label}")
            if flushed:
                pending.clear()

    # ------------------------------------------------------------------
    # Workload state
    # ------------------------------------------------------------------
    def save_execution(self, execution: "WorkloadExecution") -> None:
        """Persist one execution's full durable state (upsert)."""
        item = execution.state_item()
        self._stage_put(
            self._workload_shards[self.shard_of(item["workload_id"])],
            (item["workload_id"], None),
            item,
            scope="fleet-state:save-execution",
        )

    def _lookup_item(
        self, tables: List[str], routed: int, partition: str, scope: str
    ) -> Optional[Dict[str, Any]]:
        """Read one row, trying the routed shard first, then the rest.

        The fallback probe only runs on a miss with more than one
        shard, so the 1-shard store issues exactly the reads it always
        did; with shards it covers items whose routing state predates
        this process (a rebuilt controller with an unrestored map).
        """
        order = [routed] + [i for i in range(len(tables)) if i != routed]
        for index in order:
            table = tables[index]
            key = (partition, None)
            pending = self._pending[table]
            if key in pending:
                staged = pending[key]
                return dict(staged) if staged is not None else None
            item = self._read(
                lambda table=table: self._dynamodb.get_item(table, partition),
                scope=scope,
            )
            if item is not None:
                return item
        return None

    def workload_item(self, workload_id: str) -> Optional[Dict[str, Any]]:
        """The stored state of one workload, or ``None``."""
        return self._lookup_item(
            self._workload_shards,
            self.shard_of(workload_id),
            workload_id,
            scope="fleet-state:workload-item",
        )

    def workload_items(self, shard: Optional[int] = None) -> List[Dict[str, Any]]:
        """Stored workloads, in registration order (one shard or all).

        With shards, the order is per-shard registration order
        concatenated in shard order — deterministic, but interleaved
        differently than a 1-shard store would show.
        """
        tables = (
            self._workload_shards if shard is None else [self._workload_shards[shard]]
        )
        items: List[Dict[str, Any]] = []
        for table in tables:
            rows = self._read(
                lambda table=table: self._dynamodb.scan(table),
                scope="fleet-state:workload-items",
            )
            items.extend(self._overlay_scan(table, rows, "workload_id"))
        return items

    def workload_ids(self) -> List[str]:
        """Stored workload ids, in registration order."""
        return [item["workload_id"] for item in self.workload_items()]

    def has_workload(self, workload_id: str) -> bool:
        """Whether *workload_id* is registered."""
        return self.workload_item(workload_id) is not None

    def done_count(self) -> int:
        """How many stored workloads have finished."""
        return sum(1 for item in self.workload_items() if item["state"] == "done")

    def state_counts(self, shard: Optional[int] = None) -> Dict[str, int]:
        """Stored workloads per state, name-sorted (one shard or all).

        The flight recorder embeds this in blackbox snapshots: one
        line of fleet shape ("3 running, 2 migrating, 1 done") that
        usually orients an incident before the event ring is read.
        Reads via :meth:`DynamoDBService.peek_items` — snapshots fire
        mid-run from inside event fan-out, and a metered or
        chaos-gated read there would consume fault-stream RNG draws
        and perturb the very run being recorded.
        """
        tables = (
            self._workload_shards if shard is None else [self._workload_shards[shard]]
        )
        counts: Dict[str, int] = {}
        for table in tables:
            rows = self._overlay_scan(
                table, self._dynamodb.peek_items(table), "workload_id"
            )
            for item in rows:
                state = item["state"]
                counts[state] = counts.get(state, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Instance bindings
    # ------------------------------------------------------------------
    def bind_instance(self, instance: "Instance", workload_id: str) -> None:
        """Record that *instance* runs *workload_id*."""
        shard = self.shard_of(workload_id)
        if self.n_shards > 1:
            self._entity_shard[instance.instance_id] = shard
        self._stage_put(
            self._instance_shards[shard],
            (instance.instance_id, None),
            {"instance_id": instance.instance_id, "workload_id": workload_id},
            scope="fleet-state:bind-instance",
        )

    def _pop_row(self, tables: List[str], entity_id: str, scope: str) -> Optional[str]:
        """Remove one binding/tracking row; returns its workload id."""
        routed = self._entity_shard.get(entity_id, 0)
        order = [routed] + [i for i in range(len(tables)) if i != routed]
        for index in order:
            table = tables[index]
            key = (entity_id, None)
            pending = self._pending[table]
            if key in pending:
                staged = pending[key]
                if staged is None:
                    return None
                self._stage_delete(table, key, scope=scope)
                self._entity_shard.pop(entity_id, None)
                return staged["workload_id"]
            item = self._read(
                lambda table=table: self._dynamodb.get_item(table, entity_id),
                scope=scope,
            )
            if item is not None:
                self._stage_delete(table, key, scope=scope)
                self._entity_shard.pop(entity_id, None)
                return item["workload_id"]
            if len(tables) == 1:
                return None
        return None

    def pop_instance(self, instance_id: str) -> Optional[str]:
        """Remove and return the workload bound to *instance_id*."""
        return self._pop_row(
            self._instance_shards, instance_id, scope="fleet-state:pop-instance"
        )

    def instance_bindings(self) -> Dict[str, str]:
        """Current ``instance_id -> workload_id`` map."""
        bindings: Dict[str, str] = {}
        for table in self._instance_shards:
            rows = self._read(
                lambda table=table: self._dynamodb.scan(table),
                scope="fleet-state:instance-bindings",
            )
            rows = self._overlay_scan(table, rows, "instance_id")
            bindings.update(
                {item["instance_id"]: item["workload_id"] for item in rows}
            )
        return bindings

    # ------------------------------------------------------------------
    # Spot request tracking
    # ------------------------------------------------------------------
    def track_request(self, request: "SpotRequest", workload_id: str) -> None:
        """Track an open spot request filed for *workload_id*."""
        shard = self.shard_of(workload_id)
        if self.n_shards > 1:
            self._entity_shard[request.request_id] = shard
        self._stage_put(
            self._request_shards[shard],
            (request.request_id, None),
            {"request_id": request.request_id, "workload_id": workload_id},
            scope="fleet-state:track-request",
        )

    def pop_request(self, request_id: str) -> Optional[str]:
        """Remove and return the workload a request was filed for."""
        return self._pop_row(
            self._request_shards, request_id, scope="fleet-state:pop-request"
        )

    def tracked_requests(self) -> List[Tuple[str, str]]:
        """``(request_id, workload_id)`` pairs, in filing order."""
        pairs: List[Tuple[str, str]] = []
        for table in self._request_shards:
            rows = self._read(
                lambda table=table: self._dynamodb.scan(table),
                scope="fleet-state:tracked-requests",
            )
            rows = self._overlay_scan(table, rows, "request_id")
            pairs.extend((item["request_id"], item["workload_id"]) for item in rows)
        return pairs

    # ------------------------------------------------------------------
    # DAG progress (DAG-aware placement)
    # ------------------------------------------------------------------
    def save_dag(self, item: Dict[str, Any]) -> None:
        """Persist one DAG's durable progress (upsert).

        The item is the coordinator's ``dag_item``: stage ids, the
        completed set, and each completed stage's completion region
        (what the egress model needs to re-price input edges after a
        restore).  Stage *definitions* are code and are re-supplied on
        resume, exactly like workload definitions.
        """
        self._stage_put(
            self.dags_table,
            (item["dag_id"], None),
            item,
            scope="fleet-state:save-dag",
        )

    def dag_item(self, dag_id: str) -> Optional[Dict[str, Any]]:
        """The stored progress of one DAG, or ``None``."""
        pending = self._pending[self.dags_table]
        key = (dag_id, None)
        if key in pending:
            staged = pending[key]
            return dict(staged) if staged is not None else None
        return self._read(
            lambda: self._dynamodb.get_item(self.dags_table, dag_id),
            scope="fleet-state:dag-item",
        )

    def dag_items(self) -> List[Dict[str, Any]]:
        """Every stored DAG, in submission order."""
        rows = self._read(
            lambda: self._dynamodb.scan(self.dags_table),
            scope="fleet-state:dag-items",
        )
        return self._overlay_scan(self.dags_table, rows, "dag_id")

    def has_dag(self, dag_id: str) -> bool:
        """Whether *dag_id* is registered."""
        return self.dag_item(dag_id) is not None

    # ------------------------------------------------------------------
    # Tenant roster (multi-tenant control plane)
    # ------------------------------------------------------------------
    def save_tenant(self, item: Dict[str, Any]) -> None:
        """Persist one tenant spec (upsert).

        The item is the registry's ``TenantSpec.to_dict()``: quota,
        fair-share weight, pending-queue bound, and default policy.
        Specs are durable like workload state — a rebuilt controller
        reloads the roster from this table alone.
        """
        self._stage_put(
            self.tenants_table,
            (item["tenant_id"], None),
            item,
            scope="fleet-state:save-tenant",
        )

    def tenant_item(self, tenant_id: str) -> Optional[Dict[str, Any]]:
        """The stored spec of one tenant, or ``None``."""
        pending = self._pending[self.tenants_table]
        key = (tenant_id, None)
        if key in pending:
            staged = pending[key]
            return dict(staged) if staged is not None else None
        return self._read(
            lambda: self._dynamodb.get_item(self.tenants_table, tenant_id),
            scope="fleet-state:tenant-item",
        )

    def tenant_items(self) -> List[Dict[str, Any]]:
        """Every stored tenant spec, in registration order."""
        rows = self._read(
            lambda: self._dynamodb.scan(self.tenants_table),
            scope="fleet-state:tenant-items",
        )
        return self._overlay_scan(self.tenants_table, rows, "tenant_id")

    # ------------------------------------------------------------------
    # Meta state
    # ------------------------------------------------------------------
    def mapping(self, section: str) -> MutableMapping:
        """A durable dict-like view over one meta-table partition."""
        return _MetaMapping(self, section)


class ControlPlaneRouter:
    """Stable dispatch endpoints for the fleet services.

    All cloud-side wiring targets the router, never a service instance
    directly, so pending deliveries (EventBridge events, EC2
    fulfillment callbacks, Step Functions attempts, the CloudWatch
    sweep) keep working across a controller teardown/rebuild.
    """

    def __init__(self) -> None:
        self._capacity = None
        self._interruption = None
        self._ec2 = None

    def bind(self, capacity, interruption, ec2) -> None:
        """Point the endpoints at freshly constructed services."""
        self._capacity = capacity
        self._interruption = interruption
        self._ec2 = ec2

    def unbind(self) -> None:
        """Detach the services (controller torn down)."""
        self._capacity = None
        self._interruption = None

    # -- endpoints ------------------------------------------------------
    def spot_fulfilled(self, request, instance) -> None:
        """EC2 ``on_fulfilled`` callback endpoint."""
        if self._capacity is not None:
            self._capacity.on_spot_fulfilled(request, instance)
        elif self._ec2 is not None:
            # No controller bound: nothing can use the capacity.
            self._ec2.terminate_instances([instance.instance_id])

    def sweep(self) -> None:
        """CloudWatch 15-minute sweep endpoint."""
        if self._capacity is not None:
            self._capacity.sweep_open_requests()
        if self._interruption is not None:
            # Repair interruptions whose event-path handling was lost to
            # injected faults (dropped deliveries, crashed Lambdas).
            self._interruption.reconcile_missed_interruptions()

    def interruption_event(self, event: Dict[str, Any], context: object) -> str:
        """Interruption-handler Lambda endpoint."""
        if self._interruption is None:
            return "ignored"
        return self._interruption.handle_event(event, context)

    def reacquire(self, input: Dict[str, Any]) -> str:
        """Step Functions re-acquire task endpoint."""
        if self._interruption is None:
            return "noop"
        return self._interruption.reacquire_task(input)
