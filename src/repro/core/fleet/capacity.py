"""CapacityService: spot requests, the open-request sweep, fallback.

Owns every path that turns a policy :class:`~repro.core.policy.Placement`
into running capacity:

* **on-demand fallback** — launch immediately and attach;
* **spot requests** — file the request and track it durably in the
  :class:`~repro.core.fleet.state.FleetStateStore`; the EC2 fulfillment
  callback routes back in through the store's
  :class:`~repro.core.fleet.state.ControlPlaneRouter`, so a request
  filed by one controller incarnation can be consumed by the next;
* **the 15-minute sweep** (Section 4) — retry requests that stayed
  ``open`` and prune or cancel the ones nobody needs any more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cloud.retry import RetryPolicy, note_dead_letter, note_retry
from repro.cloud.services.ec2 import Instance, SpotRequest, SpotRequestState
from repro.core.policy import Placement, PurchasingOption
from repro.errors import RequestLimitExceededError, ThrottlingError
from repro.obs import EventType
from repro.obs.tracing import TraceContext, traced_hop, traced_resume

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.config import SpotVerseConfig
    from repro.core.execution import WorkloadExecution
    from repro.core.fleet.lifecycle import LifecycleService
    from repro.core.fleet.state import FleetStateStore

#: Backoff schedule for ``RequestSpotInstances`` calls rejected by an
#: injected EC2 API fault; past ``max_attempts`` the workload falls back
#: to on-demand so it still reaches a terminal state.
SPOT_REQUEST_RETRY_POLICY = RetryPolicy(
    max_attempts=4, interval=30.0, backoff_rate=2.0, jitter=0.5
)


class CapacityService:
    """Acquires and recycles instances for the fleet.

    Args:
        provider: The simulated cloud.
        config: Control-plane configuration.
        store: Durable fleet state (request tracking, bindings).
        lifecycle: Registry resolving workload ids to live executions.
    """

    def __init__(
        self,
        provider: "CloudProvider",
        config: "SpotVerseConfig",
        store: "FleetStateStore",
        lifecycle: "LifecycleService",
    ) -> None:
        self._provider = provider
        self._config = config
        self._store = store
        self._lifecycle = lifecycle
        self._telemetry = provider.telemetry

    def deploy(self) -> None:
        """Schedule the CloudWatch open-request sweep (once per store).

        A rebuilt control plane skips this: the rule from the first
        deployment still targets the store's router, and re-scheduling
        would shift the sweep's phase.
        """
        if "spotverse-open-request-sweep" in self._provider.cloudwatch.scheduled_rules():
            return
        self._provider.cloudwatch.schedule_rule(
            "spotverse-open-request-sweep",
            interval=self._config.sweep_interval,
            target=self._store.router.sweep,
        )

    # ------------------------------------------------------------------
    # Acquisition paths
    # ------------------------------------------------------------------
    def acquire(
        self, execution: "WorkloadExecution", placement: Placement, phase: str = "initial"
    ) -> None:
        """Turn a placement into capacity for *execution*."""
        workload_id = execution.workload.workload_id
        with traced_hop(
            self._telemetry.tracer,
            "capacity:acquire",
            "capacity",
            trace_id=workload_id,
            phase=phase,
            region=placement.region,
        ):
            if placement.option is PurchasingOption.ON_DEMAND:
                self._launch_on_demand(execution, placement, phase)
                return
            self._file_spot_request(execution, placement, phase, attempt=1)

    def _launch_on_demand(
        self, execution: "WorkloadExecution", placement: Placement, phase: str
    ) -> None:
        workload_id = execution.workload.workload_id
        fallback_attrs = {"phase": phase}
        if placement.reason:
            fallback_attrs["reason"] = placement.reason
        self._telemetry.bus.emit(
            EventType.FALLBACK_ON_DEMAND,
            workload_id=workload_id,
            region=placement.region,
            option=PurchasingOption.ON_DEMAND.value,
            **fallback_attrs,
        )
        self._telemetry.metrics.counter(
            "fallback_on_demand_total", "placements that resolved to on-demand"
        ).inc(region=placement.region)
        instance = self._provider.ec2.run_on_demand(
            placement.region, self._config.instance_type, tag=workload_id
        )
        tracer = self._telemetry.tracer
        if tracer is not None:
            ctx = tracer.event(
                "ec2:run-on-demand",
                "capacity",
                trace_id=workload_id,
                region=placement.region,
                instance_id=instance.instance_id,
            )
            tracer.link(("instance", instance.instance_id), ctx)
        # On-demand instances join the same instance bindings spot
        # fulfillments use, so spans and terminations see one
        # uniform view of running capacity.
        self._store.bind_instance(instance, workload_id)
        execution.attach(instance)

    def _file_spot_request(
        self,
        execution: "WorkloadExecution",
        placement: Placement,
        phase: str,
        attempt: int,
    ) -> None:
        """File a spot request, backing off on injected API rejections.

        Retries are scheduled through the engine (the real call would be
        retried by a later Lambda/Step Functions attempt); when the
        schedule is exhausted the workload falls back to on-demand with
        reason ``"spot-api-exhausted"`` so it still terminates.
        """
        workload_id = execution.workload.workload_id
        tracer = self._telemetry.tracer
        try:
            request = self._provider.ec2.request_spot_instances(
                placement.region,
                self._config.instance_type,
                tag=workload_id,
                on_fulfilled=self._store.router.spot_fulfilled,
            )
        except RequestLimitExceededError as exc:
            scope = f"ec2:request-spot:{placement.region}"
            if attempt >= SPOT_REQUEST_RETRY_POLICY.max_attempts:
                if tracer is not None:
                    tracer.event(
                        "ec2:request-spot",
                        "capacity",
                        trace_id=workload_id,
                        status="dead_letter",
                        attempt=attempt,
                        region=placement.region,
                    )
                note_dead_letter(
                    self._telemetry,
                    scope,
                    f"spot request API exhausted after {attempt} attempts",
                    workload_id=workload_id,
                )
                self._launch_on_demand(
                    execution,
                    Placement(
                        region=placement.region,
                        option=PurchasingOption.ON_DEMAND,
                        reason="spot-api-exhausted",
                    ),
                    phase,
                )
                return
            if tracer is not None:
                tracer.event(
                    "ec2:request-spot",
                    "capacity",
                    trace_id=workload_id,
                    status="throttled",
                    attempt=attempt,
                    region=placement.region,
                )
            note_retry(self._telemetry, scope, attempt, exc, workload_id=workload_id)
            chaos = self._provider.chaos
            rng = chaos.retry_rng if chaos is not None else None
            delay = SPOT_REQUEST_RETRY_POLICY.delay_before_attempt(attempt + 1, rng=rng)
            resume_ctx = tracer.current if tracer is not None else None
            self._provider.engine.call_in(
                delay,
                lambda: self._retry_spot_request(
                    execution, placement, phase, attempt + 1, resume_ctx
                ),
                label=f"capacity:retry-spot:{workload_id}",
            )
            return
        if tracer is not None:
            ctx = tracer.begin(
                "spot:await-fulfillment",
                "capacity",
                trace_id=workload_id,
                region=placement.region,
                request_id=request.request_id,
                attempt=attempt,
            )
            tracer.link(("spot-request", request.request_id), ctx)
        self._store.track_request(request, workload_id)

    def _retry_spot_request(
        self,
        execution: "WorkloadExecution",
        placement: Placement,
        phase: str,
        attempt: int,
        resume_ctx: Optional[TraceContext] = None,
    ) -> None:
        if not execution.needs_instance:
            return
        with traced_resume(self._telemetry.tracer, resume_ctx):
            self._file_spot_request(execution, placement, phase, attempt)

    def on_spot_fulfilled(self, request: SpotRequest, instance: Instance) -> None:
        """A tracked spot request launched an instance; attach or discard."""
        tracer = self._telemetry.tracer
        await_ctx = (
            tracer.take(("spot-request", request.request_id))
            if tracer is not None
            else None
        )
        workload_id = self._store.pop_request(request.request_id)
        if workload_id is None:
            # Request no longer tracked (workload finished meanwhile).
            if tracer is not None:
                tracer.end(await_ctx, status="discarded", reason="untracked-request")
            self._discard(request, instance, reason="untracked-request")
            return
        execution = self._lifecycle.find(workload_id)
        if execution is None or not execution.needs_instance:
            if tracer is not None:
                tracer.end(await_ctx, status="discarded", reason="workload-satisfied")
            self._discard(request, instance, reason="workload-satisfied")
            return
        if tracer is not None:
            tracer.end(await_ctx, instance_id=instance.instance_id)
        with traced_resume(tracer, await_ctx):
            with traced_hop(
                tracer,
                "capacity:attach",
                "capacity",
                trace_id=workload_id,
                region=instance.region,
                instance_id=instance.instance_id,
            ) as attach_ctx:
                if tracer is not None:
                    tracer.link(("instance", instance.instance_id), attach_ctx)
                self._store.bind_instance(instance, workload_id)
                execution.attach(instance)

    def _discard(self, request: SpotRequest, instance: Instance, reason: str) -> None:
        """Terminate a late fulfillment nothing is waiting for."""
        self._telemetry.bus.emit(
            EventType.CAPACITY_DISCARDED,
            workload_id=request.tag,
            region=instance.region,
            instance_id=instance.instance_id,
            request_id=request.request_id,
            option=instance.lifecycle.value,
            reason=reason,
        )
        self._telemetry.metrics.counter(
            "capacity_discarded_total", "late fulfillments terminated unused"
        ).inc(region=instance.region)
        self._provider.ec2.terminate_instances([instance.instance_id])

    # ------------------------------------------------------------------
    # The 15-minute sweep
    # ------------------------------------------------------------------
    def sweep_open_requests(self) -> None:
        """The CloudWatch check for requests that stayed ``open``.

        One ``describe_spot_requests`` call per sweep, indexed by id —
        not one per tracked request, which made large fleets quadratic.
        Tracked requests that left ``open`` without being fulfilled
        (cancelled or failed) are pruned, so dead entries no longer
        accumulate across the run.
        """
        try:
            self._sweep_once()
        except ThrottlingError as exc:
            # The store stayed throttled through every retry: skip this
            # tick; the next sweep sees the same durable state.
            note_dead_letter(self._telemetry, "capacity:sweep", str(exc))

    def _sweep_once(self) -> None:
        open_by_id = {
            request.request_id: request
            for request in self._provider.ec2.describe_spot_requests(
                states=[SpotRequestState.OPEN]
            )
        }
        for request_id, workload_id in self._store.tracked_requests():
            request = open_by_id.get(request_id)
            if request is None:
                # Fulfillments are untracked on attach, so a tracked
                # request that is no longer open was cancelled or
                # failed: drop the stale entry.
                self._store.pop_request(request_id)
                continue
            execution = self._lifecycle.find(workload_id)
            if execution is None or not execution.needs_instance:
                self._provider.ec2.cancel_spot_request(request_id)
                self._store.pop_request(request_id)
                continue
            self._provider.ec2.retry_open_request(
                request_id, on_fulfilled=self._store.router.spot_fulfilled
            )
