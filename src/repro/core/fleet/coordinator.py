"""DagCoordinator: topological release of ready steps into the fleet.

The coordinator is the control-plane face of :mod:`repro.core.dag`.
It owns no placement logic and no execution state — it *drives* the
existing services with stage workloads:

* ``submit`` registers each DAG's root stages through the
  :class:`~repro.core.fleet.lifecycle.LifecycleService` and places
  them via one batched ``policy.initial_placements`` call, exactly as
  a whole-workload fleet launch would.
* A completion listener on the lifecycle service marks stages done,
  records the region each stage completed in (the producer side of
  the egress model), and *coalesces* every stage that became ready at
  the same instant — across all submitted DAGs — into one zero-delay
  release event, so the whole per-tick ready set is scored by a
  single Algorithm-1 round instead of per-step calls.
* Released stages get their ``input_edges`` resolved against the
  recorded producer regions; the execution charges the cross-region
  transfer at every boot (so a migrated step re-pays the egress of
  moving its inputs).
* Interruptions need no coordinator involvement at all: the
  interruption service reschedules the interrupted *stage* through
  ``policy.migration_placement``, which is precisely "reschedule only
  the interrupted step" once the stage is the placement unit.

Progress is durable: the coordinator mirrors each DAG's completed
set and producer regions into the
:class:`~repro.core.fleet.state.FleetStateStore`'s dags table, so a
torn-down controller can :meth:`restore` mid-DAG and release the
remaining steps as their (already completed) dependencies dictate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.dag import DagWorkload, Stage, StepPlanner
from repro.core.execution import WorkloadExecution
from repro.errors import ExperimentError
from repro.obs import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.fleet.capacity import CapacityService
    from repro.core.fleet.lifecycle import LifecycleService
    from repro.core.fleet.state import FleetStateStore
    from repro.core.policy import PlacementPolicy, PolicyContext
    from repro.sim.events import Event
    from repro.workloads.base import Workload


class DagCoordinator:
    """Schedules the ready steps of compiled DAGs onto the fleet.

    Args:
        provider: The simulated cloud.
        policy: The fleet's placement policy (per-step decisions run
            through the same batched ``initial_placements`` entry
            point whole fleets use).
        store: Durable fleet state (gains the dags table).
        lifecycle: Registration/completion accounting service.
        capacity: Spot/on-demand acquisition service.
        ctx: Policy context shared with the controller.
    """

    def __init__(
        self,
        provider: "CloudProvider",
        policy: "PlacementPolicy",
        store: "FleetStateStore",
        lifecycle: "LifecycleService",
        capacity: "CapacityService",
        ctx: "PolicyContext",
    ) -> None:
        self._provider = provider
        self._engine = provider.engine
        self._telemetry = provider.telemetry
        self._policy = policy
        self._store = store
        self._lifecycle = lifecycle
        self._capacity = capacity
        self._ctx = ctx
        self._planners: Dict[str, StepPlanner] = {}
        self._stage_dag: Dict[str, str] = {}
        self._producer_regions: Dict[str, str] = {}
        self._pending_release: List[str] = []
        self._release_event: Optional["Event"] = None
        lifecycle.add_completion_listener(self._on_stage_complete)
        # Decision provenance: any Algorithm-1 round that places a
        # stage workload — initial batches here, migrations deep in
        # the interruption path — gets its step fields annotated.
        self._telemetry.decisions.set_step_resolver(self._step_label)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _step_label(self, workload_id: str) -> Optional[str]:
        dag_id = self._stage_dag.get(workload_id)
        if dag_id is None:
            return None
        stage = self._planners[dag_id].dag.stage(workload_id)
        return stage.step_labels[0] if stage.step_labels else workload_id

    def planner(self, dag_id: str) -> StepPlanner:
        """The live planner for *dag_id* (raises when unknown)."""
        return self._planners[dag_id]

    def all_done(self, dags: Sequence[DagWorkload]) -> bool:
        """Whether every stage of every DAG in *dags* completed."""
        return all(self._planners[dag.dag_id].all_done for dag in dags)

    def released_workloads(self, dags: Sequence[DagWorkload]) -> List["Workload"]:
        """Stage workloads released so far, in topological order.

        After a completed run this is every stage; on a deadline hit,
        stages whose dependencies never finished were never released
        and have no execution (or record) to report.
        """
        workloads: List["Workload"] = []
        for dag in dags:
            released = self._planners[dag.dag_id].released
            workloads.extend(
                stage.workload for stage in dag.stages if stage.stage_id in released
            )
        return workloads

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, dags: Sequence[DagWorkload]) -> None:
        """Admit *dags* and release their root stages (batched).

        Raises:
            ExperimentError: On an empty batch, duplicate DAG ids, or
                ids already used on this control plane.
        """
        if not dags:
            raise ExperimentError("must submit at least one DAG")
        ids = [dag.dag_id for dag in dags]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"duplicate dag ids: {ids!r}")
        known = [
            dag_id
            for dag_id in ids
            if dag_id in self._planners or self._store.has_dag(dag_id)
        ]
        if known:
            raise ExperimentError(
                f"dag ids already used on this control plane: {known!r}"
            )
        roots: List[str] = []
        for dag in dags:
            self._admit(dag)
            self._telemetry.bus.emit(
                EventType.DAG_SUBMITTED,
                dag_id=dag.dag_id,
                stages=dag.n_stages,
                steps=dag.n_steps,
            )
            self._save(dag.dag_id)
            roots.extend(stage.stage_id for stage in dag.roots())
        self._release(roots)

    def _admit(self, dag: DagWorkload) -> None:
        self._planners[dag.dag_id] = StepPlanner(dag)
        for stage in dag.stages:
            self._stage_dag[stage.stage_id] = dag.dag_id

    # ------------------------------------------------------------------
    # Release path (the per-tick batched Algorithm-1 round)
    # ------------------------------------------------------------------
    def _release(self, stage_ids: List[str]) -> None:
        """Register and place *stage_ids* in one batched decision."""
        if not stage_ids:
            return
        stages: List[Stage] = []
        for stage_id in stage_ids:
            planner = self._planners[self._stage_dag[stage_id]]
            planner.mark_released(stage_id)
            stages.append(planner.dag.stage(stage_id))
        workloads = [stage.workload for stage in stages]
        self._lifecycle.register(workloads)
        for stage in stages:
            execution = self._lifecycle.execution(stage.stage_id)
            execution.input_sources = self._resolve_inputs(stage)
            self._telemetry.bus.emit(
                EventType.DAG_STEP_RELEASED,
                workload_id=stage.stage_id,
                dag_id=self._stage_dag[stage.stage_id],
                steps=list(stage.step_labels),
                deps=list(stage.deps),
                ready_set=len(stage_ids),
            )
        # One scoring round for the whole ready set: the policy scores
        # regions once and spreads the batch (SpotVerse's round-robin
        # over the top-R candidates), exactly like a fleet launch.
        placements = self._policy.initial_placements(workloads, self._ctx)
        if len(placements) != len(workloads):
            raise ExperimentError(
                f"policy {self._policy.name!r} returned {len(placements)} placements "
                f"for {len(workloads)} ready steps"
            )
        for workload, placement in zip(workloads, placements):
            self._capacity.acquire(
                self._lifecycle.execution(workload.workload_id), placement
            )

    def _resolve_inputs(self, stage: Stage) -> List[tuple]:
        """Resolve input edges to ``(producer region, bytes)`` pairs."""
        sources = []
        for producer_id, nbytes in stage.input_edges:
            region = self._producer_regions.get(producer_id)
            if region is not None and nbytes > 0:
                sources.append((region, nbytes))
        return sources

    def _queue_release(self, stage_ids: List[str]) -> None:
        """Coalesce releases into one zero-delay batched decision.

        Completions landing at the same sim time each fire their own
        engine event; queuing into a single zero-delay follow-up means
        every step they made ready is scored by *one* Algorithm-1
        round for the whole tick, not one round per completion.

        Stages are marked released at queue time, so a later
        completion in the same tick cannot re-queue a stage the
        planner already reported ready.
        """
        for stage_id in stage_ids:
            self._planners[self._stage_dag[stage_id]].mark_released(stage_id)
        self._pending_release.extend(stage_ids)
        if self._release_event is None and self._pending_release:
            self._release_event = self._engine.call_in(
                0.0, self._flush_releases, label="dag:release"
            )

    def _flush_releases(self) -> None:
        self._release_event = None
        batch = self._pending_release
        self._pending_release = []
        self._release(batch)

    # ------------------------------------------------------------------
    # Completion listener
    # ------------------------------------------------------------------
    def _on_stage_complete(self, execution: WorkloadExecution) -> None:
        stage_id = execution.workload.workload_id
        dag_id = self._stage_dag.get(stage_id)
        if dag_id is None:
            return  # plain workload on the same controller
        planner = self._planners[dag_id]
        if execution.record.regions:
            self._producer_regions[stage_id] = execution.record.regions[-1]
        newly_ready = planner.mark_done(stage_id)
        self._save(dag_id)
        if planner.all_done:
            self._telemetry.bus.emit(
                EventType.DAG_DONE,
                dag_id=dag_id,
                stages=planner.dag.n_stages,
            )
        self._queue_release([stage.stage_id for stage in newly_ready])

    # ------------------------------------------------------------------
    # Durable mirror / restore
    # ------------------------------------------------------------------
    def _save(self, dag_id: str) -> None:
        planner = self._planners[dag_id]
        self._store.save_dag(
            {
                "dag_id": dag_id,
                "stages": planner.dag.stage_ids(),
                "done": sorted(planner.done),
                "regions": {
                    stage_id: self._producer_regions[stage_id]
                    for stage_id in sorted(planner.done)
                    if stage_id in self._producer_regions
                },
            }
        )

    def restore(self, dags: Sequence[DagWorkload]) -> None:
        """Rebuild DAG progress (and stage executions) from the store.

        Args:
            dags: Definitions of the stored DAGs — progress is durable,
                definitions are code the client re-supplies, exactly
                like workload definitions on :meth:`LifecycleService.restore`.

        Raises:
            ExperimentError: When a DAG has no stored progress, or the
                coordinator already tracks DAGs in-memory.
        """
        if self._planners:
            raise ExperimentError("restore() requires a freshly built control plane")
        items: Dict[str, Dict] = {}
        for dag in dags:
            item = self._store.dag_item(dag.dag_id)
            if item is None:
                raise ExperimentError(
                    f"no stored progress for dag {dag.dag_id!r}"
                )
            items[dag.dag_id] = item
            self._admit(dag)
        # Rebuild every stored stage execution (released stages only —
        # unreleased stages never reached the store).
        self._lifecycle.restore(
            [stage.workload for dag in dags for stage in dag.stages]
        )
        for dag in dags:
            planner = self._planners[dag.dag_id]
            item = items[dag.dag_id]
            for stage in dag.stages:
                if self._lifecycle.find(stage.stage_id) is not None:
                    planner.mark_released(stage.stage_id)
            self._producer_regions.update(item.get("regions", {}))
            for stage_id in item.get("done", ()):
                planner.mark_done(stage_id)
            # Releases that were pending when the old controller died
            # (its zero-delay event died with it) are re-queued here.
            self._queue_release(
                [stage.stage_id for stage in planner.ready()]
            )
