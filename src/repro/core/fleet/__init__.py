"""The decomposed fleet control plane (paper Section 4).

Composable services behind the :class:`~repro.core.controller.FleetController`
façade:

* :class:`~repro.core.fleet.state.FleetStateStore` — workload /
  instance / request state, durably in the simulated DynamoDB, plus the
  :class:`~repro.core.fleet.state.ControlPlaneRouter` the cloud-side
  wiring targets;
* :class:`~repro.core.fleet.capacity.CapacityService` — spot requests,
  the 15-minute open-request sweep, on-demand fallback;
* :class:`~repro.core.fleet.interruption.InterruptionService` — the
  EventBridge → Lambda → Step Functions re-acquire path;
* :class:`~repro.core.fleet.lifecycle.LifecycleService` — registration,
  completion accounting, result assembly, and crash/teardown restore;
* :class:`~repro.core.fleet.checkpoint.CheckpointBackend` — one
  protocol over the paper's S3 and EFS checkpoint storage designs.
"""

from repro.core.fleet.capacity import CapacityService
from repro.core.fleet.coordinator import DagCoordinator
from repro.core.fleet.checkpoint import (
    CheckpointBackend,
    DynamoCheckpointBackend,
    EFSCheckpointBackend,
)
from repro.core.fleet.interruption import InterruptionService
from repro.core.fleet.lifecycle import LifecycleService
from repro.core.fleet.state import ControlPlaneRouter, FleetStateStore

__all__ = [
    "CapacityService",
    "CheckpointBackend",
    "ControlPlaneRouter",
    "DagCoordinator",
    "DynamoCheckpointBackend",
    "EFSCheckpointBackend",
    "FleetStateStore",
    "InterruptionService",
    "LifecycleService",
]
