"""LifecycleService: registration, completion accounting, results.

The service owns the in-memory registry of live
:class:`~repro.core.execution.WorkloadExecution` objects — the only
fleet state that is *not* durable, because executions hold the workload
definitions (code: segment durations, payload callables) that clients
re-supply on resume.  Everything the executions *know* is mirrored into
the :class:`~repro.core.fleet.state.FleetStateStore`, which is what
makes :meth:`restore` possible: given the store plus the workload
definitions, the service rebuilds every execution mid-flight, re-arms
its pending boot/segment timer at the original absolute time, and the
fleet finishes as if the teardown never happened.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.core.dag import StageWorkload
from repro.core.execution import ExecutionState, WorkloadExecution
from repro.core.result import FleetResult
from repro.errors import ExperimentError
from repro.obs import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.config import SpotVerseConfig
    from repro.core.fleet.checkpoint import CheckpointBackend
    from repro.core.fleet.state import FleetStateStore
    from repro.core.policy import PolicyContext
    from repro.workloads.base import Workload


class LifecycleService:
    """Start/complete accounting and result assembly for fleets.

    Args:
        provider: The simulated cloud.
        config: Control-plane configuration.
        store: Durable fleet state.
        ctx: Policy context (live records are published into it).
        backend: Checkpoint backend handed to executions.
        strategy: Policy name stamped onto results.
        image_id: Optional AMI whose propagation state shapes boots.
    """

    def __init__(
        self,
        provider: "CloudProvider",
        config: "SpotVerseConfig",
        store: "FleetStateStore",
        ctx: "PolicyContext",
        backend: "CheckpointBackend",
        strategy: str,
        image_id: Optional[str] = None,
    ) -> None:
        self._provider = provider
        self._config = config
        self._store = store
        self._ctx = ctx
        self._backend = backend
        self._strategy = strategy
        self._image_id = image_id
        self._telemetry = provider.telemetry
        self._executions: Dict[str, WorkloadExecution] = {}
        self._completion_listeners: List[Callable[[WorkloadExecution], None]] = []
        self.done = store.done_count()

    def add_completion_listener(
        self, listener: Callable[[WorkloadExecution], None]
    ) -> None:
        """Call *listener* with each execution the moment it completes.

        The DAG coordinator uses this to release downstream steps;
        listeners run synchronously inside the completing event, after
        the ``workload.done`` emission and completion accounting.
        """
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def find(self, workload_id: str) -> Optional[WorkloadExecution]:
        """The live execution for *workload_id*, or ``None``."""
        return self._executions.get(workload_id)

    def execution(self, workload_id: str) -> WorkloadExecution:
        """The live execution for *workload_id* (raises when unknown)."""
        return self._executions[workload_id]

    def executions(self) -> List[WorkloadExecution]:
        """Live executions, in registration order."""
        return list(self._executions.values())

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, workloads: Sequence["Workload"]) -> None:
        """Admit *workloads* into the fleet.

        Raises:
            ExperimentError: On an empty fleet, duplicate ids, or ids
                already used on this control plane.
        """
        if not workloads:
            raise ExperimentError("fleet must contain at least one workload")
        ids = [workload.workload_id for workload in workloads]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"duplicate workload ids in fleet: {ids!r}")
        already_known = [
            wid for wid in ids if wid in self._executions or self._store.has_workload(wid)
        ]
        if already_known:
            raise ExperimentError(
                f"workload ids already used by an earlier fleet on this "
                f"controller: {already_known!r}"
            )
        for workload in workloads:
            execution = WorkloadExecution(
                workload=workload,
                provider=self._provider,
                backend=self._backend,
                results_bucket=self._config.results_bucket,
                boot_delay=self._config.boot_delay,
                execute_payloads=self._config.execute_payloads,
                on_complete=self._on_workload_complete,
                fleet_state=self._store,
                image_id=self._image_id,
            )
            self._executions[workload.workload_id] = execution
            self._store.save_execution(execution)
            # History-aware policies read live records via the context.
            self._ctx.records[workload.workload_id] = execution.record
            # DAG stages carry their provenance (dag id + step labels)
            # onto the root trace hop and the submission event, so
            # per-step placement chains are reconstructible from the
            # stream alone; plain workloads emit exactly as before.
            step_attrs: Dict[str, Any] = {}
            if isinstance(workload, StageWorkload) and workload.dag_id:
                step_attrs = {
                    "dag_id": workload.dag_id,
                    "steps": list(workload.step_labels),
                }
            tracer = self._telemetry.tracer
            if tracer is not None:
                # Root hop of the workload's causal tree; closed by the
                # tracer's WORKLOAD_DONE subscription.
                tracer.open_root(
                    workload.workload_id,
                    "workload:submit",
                    "lifecycle",
                    kind=workload.kind.value,
                    **step_attrs,
                )
            self._telemetry.bus.emit(
                EventType.WORKLOAD_SUBMITTED,
                workload_id=workload.workload_id,
                kind=workload.kind.value,
                segments=len(workload.segment_durations),
                **step_attrs,
            )

    def _on_workload_complete(self, execution: WorkloadExecution) -> None:
        self.done += 1
        for listener in list(self._completion_listeners):
            listener(execution)

    def all_done(self, workloads: Sequence["Workload"]) -> bool:
        """Whether every workload in *workloads* has finished."""
        return all(
            self._executions[w.workload_id].state is ExecutionState.DONE
            for w in workloads
        )

    # ------------------------------------------------------------------
    # Restore (crash/teardown recovery)
    # ------------------------------------------------------------------
    def restore(self, workloads: Sequence["Workload"]) -> None:
        """Rebuild every stored execution from the state store.

        Args:
            workloads: The definitions of the stored workloads (state
                is durable; the definitions are code and must be
                re-supplied by the submitting client, as in Galaxy).

        Raises:
            ExperimentError: When a stored workload has no definition,
                or executions are already registered in-memory.
        """
        if self._executions:
            raise ExperimentError("restore() requires a freshly built control plane")
        definitions = {workload.workload_id: workload for workload in workloads}
        for item in self._store.workload_items():
            workload = definitions.get(item["workload_id"])
            if workload is None:
                raise ExperimentError(
                    f"no workload definition supplied for stored workload "
                    f"{item['workload_id']!r}"
                )
            execution = WorkloadExecution.restore(
                item=item,
                workload=workload,
                provider=self._provider,
                backend=self._backend,
                results_bucket=self._config.results_bucket,
                boot_delay=self._config.boot_delay,
                execute_payloads=self._config.execute_payloads,
                on_complete=self._on_workload_complete,
                fleet_state=self._store,
                image_id=self._image_id,
            )
            self._executions[workload.workload_id] = execution
            self._ctx.records[workload.workload_id] = execution.record
        self.done = self._store.done_count()

    def teardown(self) -> None:
        """Cancel in-process timers and forget the live executions.

        Crash semantics: pending boot/segment events die with the
        controller process; their due times are in the store, so
        :meth:`restore` re-arms them at the original absolute times.
        """
        for execution in self._executions.values():
            execution.detach_timers()
        self._executions.clear()

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def build_result(self, workloads: Sequence["Workload"]) -> FleetResult:
        """Settle billing and assemble the :class:`FleetResult`."""
        self._provider.ec2.settle_billing()
        # Stop anything still running (deadline hit) and release
        # untracked capacity.
        for execution in self._executions.values():
            if execution.instance is not None and execution.instance.is_live:
                self._provider.ec2.terminate_instances([execution.instance.instance_id])
        records = []
        ledger = self._provider.ledger
        for workload in workloads:
            execution = self._executions[workload.workload_id]
            execution.record.cost = ledger.total_for_tag(workload.workload_id)
            self._store.save_execution(execution)
            records.append(execution.record)
        return FleetResult(
            strategy=self._strategy,
            records=records,
            total_cost=ledger.total(),
            instance_cost=ledger.instance_total(),
            overhead_cost=ledger.overhead_total(),
            ended_at=self._provider.engine.now,
        )
