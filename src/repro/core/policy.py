"""The placement-policy interface strategies implement.

A policy answers exactly two questions — where to start each workload,
and where to send an interrupted one — as a (region, purchasing
option) pair.  The shared :class:`~repro.core.controller.FleetController`
does everything else (requests, retries, checkpoints, billing), so
SpotVerse and every baseline differ *only* in their policy, which is
what makes the paper's comparisons apples-to-apples.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.monitor import Monitor


class PurchasingOption(enum.Enum):
    """How an instance is bought."""

    SPOT = "spot"
    ON_DEMAND = "on-demand"


@dataclass(frozen=True)
class Placement:
    """A policy decision: run in *region* with *option*.

    Attributes:
        region: Target region.
        option: Purchasing option (spot unless the policy fell back).
        reason: Why a non-default option was chosen — e.g. Algorithm
            1's "no region cleared threshold" on-demand fallback.  ""
            for ordinary spot placements; the controller copies it
            onto the ``ondemand.fallback`` telemetry event.
    """

    region: str
    option: PurchasingOption = PurchasingOption.SPOT
    reason: str = ""


@dataclass
class PolicyContext:
    """Everything a policy may consult when deciding.

    Attributes:
        provider: The simulated cloud (price book, markets).
        monitor: SpotVerse's Monitor, when deployed (baselines that
            model external frameworks read the cloud directly instead).
        rng: Dedicated random stream (e.g. Algorithm 1's random pick
            among the top-R regions on migration).
        records: Live per-workload records (submission time, attempts,
            interruptions so far) — populated by the controller so
            history-aware policies (deadline escalation, predictors)
            can see how each workload is faring.  Empty before a fleet
            starts.
    """

    provider: "CloudProvider"
    monitor: Optional["Monitor"]
    rng: np.random.Generator
    records: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.records is None:
            self.records = {}


class PlacementPolicy(ABC):
    """Strategy interface for initial placement and migration."""

    #: Human-readable policy name used in reports.
    name: str = "policy"

    @abstractmethod
    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        """Return one placement per workload, in order."""

    @abstractmethod
    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        """Return the placement for a workload interrupted in *interrupted_region*."""
