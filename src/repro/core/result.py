"""Fleet execution records and aggregate results."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import HOUR, format_duration
from repro.workloads.base import WorkloadKind


@dataclass
class WorkloadRecord:
    """Everything measured about one workload's run.

    Attributes:
        workload_id: The workload's id.
        kind: Standard or checkpoint semantics.
        submitted_at: Virtual submission time.
        completed_at: Virtual completion time (None if unfinished).
        interruptions: ``(time, region)`` per interruption suffered.
        regions: Regions visited, in order (repeats allowed).
        attempt_starts: Virtual time each attempt's instance attached
            (parallel to *regions*).
        attempts: Instances that ran (>= 1 once started).
        on_demand_attempts: How many attempts used on-demand capacity.
        cost: USD attributed to this workload (instances + tagged
            transfers).
    """

    workload_id: str
    kind: WorkloadKind
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    interruptions: List[Tuple[float, str]] = field(default_factory=list)
    regions: List[str] = field(default_factory=list)
    attempt_starts: List[float] = field(default_factory=list)
    attempts: int = 0
    on_demand_attempts: int = 0
    cost: float = 0.0

    @property
    def completed(self) -> bool:
        """Whether the workload finished."""
        return self.completed_at is not None

    @property
    def n_interruptions(self) -> int:
        """Interruption count."""
        return len(self.interruptions)

    @property
    def elapsed(self) -> Optional[float]:
        """Seconds from submission to completion (None if unfinished)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    # ------------------------------------------------------------------
    # Durable form (the fleet state store keeps records in DynamoDB)
    # ------------------------------------------------------------------
    def to_item(self) -> Dict[str, object]:
        """Plain-data form for the fleet state store."""
        return {
            "workload_id": self.workload_id,
            "kind": self.kind.value,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "interruptions": [list(pair) for pair in self.interruptions],
            "regions": list(self.regions),
            "attempt_starts": list(self.attempt_starts),
            "attempts": self.attempts,
            "on_demand_attempts": self.on_demand_attempts,
            "cost": self.cost,
        }

    @classmethod
    def from_item(cls, item: Dict[str, object]) -> "WorkloadRecord":
        """Rebuild a record from its :meth:`to_item` form."""
        return cls(
            workload_id=item["workload_id"],
            kind=WorkloadKind(item["kind"]),
            submitted_at=item["submitted_at"],
            completed_at=item["completed_at"],
            interruptions=[(time, region) for time, region in item["interruptions"]],
            regions=list(item["regions"]),
            attempt_starts=list(item["attempt_starts"]),
            attempts=item["attempts"],
            on_demand_attempts=item["on_demand_attempts"],
            cost=item["cost"],
        )


@dataclass
class FleetResult:
    """Aggregate outcome of one strategy running one fleet.

    Attributes:
        strategy: Policy name.
        records: Per-workload records, submission order.
        total_cost: Ledger total (instances + control-plane overhead).
        instance_cost: Spot + on-demand compute spend.
        overhead_cost: Control-plane spend (Lambda, DynamoDB, S3, ...).
        ended_at: Virtual time the run loop stopped.
    """

    strategy: str
    records: List[WorkloadRecord]
    total_cost: float
    instance_cost: float
    overhead_cost: float
    ended_at: float

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def all_complete(self) -> bool:
        """Whether every workload finished."""
        return all(record.completed for record in self.records)

    @property
    def n_complete(self) -> int:
        """Number of finished workloads."""
        return sum(1 for record in self.records if record.completed)

    @property
    def total_interruptions(self) -> int:
        """Interruptions across the fleet."""
        return sum(record.n_interruptions for record in self.records)

    @property
    def makespan(self) -> float:
        """Seconds until the *last* workload finished (the paper's
        "total completion time"); falls back to ``ended_at`` when some
        workload never finished."""
        times = [record.completed_at for record in self.records if record.completed_at]
        if not times or not self.all_complete:
            return self.ended_at
        return max(times) - min(record.submitted_at for record in self.records)

    @property
    def makespan_hours(self) -> float:
        """Makespan in hours."""
        return self.makespan / HOUR

    @property
    def mean_completion_hours(self) -> float:
        """Mean per-workload elapsed hours over finished workloads."""
        elapsed = [record.elapsed for record in self.records if record.elapsed is not None]
        if not elapsed:
            return 0.0
        return sum(elapsed) / len(elapsed) / HOUR

    # ------------------------------------------------------------------
    # Series for the paper's figures
    # ------------------------------------------------------------------
    def cumulative_interruptions(self) -> List[Tuple[float, int]]:
        """Figure 7a/7d series: ``(time, cumulative count)``."""
        times = sorted(
            time for record in self.records for time, _ in record.interruptions
        )
        return [(time, index + 1) for index, time in enumerate(times)]

    def completion_curve(self) -> List[Tuple[float, int]]:
        """Figure 7b series: ``(time, workloads finished)``."""
        times = sorted(
            record.completed_at for record in self.records if record.completed_at is not None
        )
        return [(time, index + 1) for index, time in enumerate(times)]

    def interruptions_by_region(self) -> Dict[str, int]:
        """Figure 7c series: interruption count per region."""
        counter: Counter = Counter(
            region for record in self.records for _, region in record.interruptions
        )
        return dict(counter)

    def regions_used(self) -> Dict[str, int]:
        """How many attempts ran in each region."""
        counter: Counter = Counter(
            region for record in self.records for region in record.regions
        )
        return dict(counter)

    def on_demand_share(self) -> float:
        """Fraction of attempts that used on-demand capacity."""
        attempts = sum(record.attempts for record in self.records)
        if attempts == 0:
            return 0.0
        return sum(record.on_demand_attempts for record in self.records) / attempts

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"strategy            : {self.strategy}",
            f"workloads           : {self.n_complete}/{len(self.records)} complete",
            f"interruptions       : {self.total_interruptions}",
            f"completion time     : {format_duration(self.makespan)}"
            f" ({self.makespan_hours:.2f} h)",
            f"instance cost       : ${self.instance_cost:.2f}",
            f"overhead cost       : ${self.overhead_cost:.4f}",
            f"total cost          : ${self.total_cost:.2f}",
            f"on-demand share     : {100 * self.on_demand_share():.1f}%",
        ]
        regions = self.interruptions_by_region()
        if regions:
            dist = ", ".join(
                f"{region}={count}" for region, count in sorted(regions.items())
            )
            lines.append(f"interruption regions: {dist}")
        return "\n".join(lines)
