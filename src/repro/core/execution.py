"""Per-workload execution state: segments, checkpoints, interruptions.

A :class:`WorkloadExecution` binds one workload to whatever instance
currently runs it.  Segments are scheduled one at a time on the engine;
an interruption cancels the in-flight segment and — depending on the
workload's kind — either keeps completed segments (checkpoint, persisted
through the fleet's :class:`~repro.core.fleet.checkpoint.CheckpointBackend`
during the two-minute notice) or discards everything (standard).

Everything an execution knows — record, state, progress, pending timer
due-times — is mirrored into the fleet's
:class:`~repro.core.fleet.state.FleetStateStore` after each transition,
so a torn-down controller can rebuild the execution mid-flight via
:meth:`WorkloadExecution.restore`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.retry import note_dead_letter
from repro.cloud.services.ec2 import Instance, InstanceLifecycle
from repro.core.result import WorkloadRecord
from repro.errors import ThrottlingError, WorkloadError
from repro.obs import EventType
from repro.sim.events import Event
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider
    from repro.core.fleet.checkpoint import CheckpointBackend
    from repro.core.fleet.state import FleetStateStore


class ExecutionState(enum.Enum):
    """Where a workload execution stands."""

    WAITING = "waiting"  # no instance yet (request open)
    BOOTING = "booting"  # instance up, AMI/tooling still starting
    RUNNING = "running"  # segments executing
    INTERRUPTED = "interrupted"  # lost its instance, awaiting replacement
    DONE = "done"


class WorkloadExecution:
    """Runtime state of one workload within a fleet.

    Args:
        workload: The workload definition.
        provider: The simulated cloud (engine, S3, ledger access).
        backend: Checkpoint backend (progress + artifact persistence).
        results_bucket: S3 bucket for run-log uploads.
        boot_delay: Seconds from instance attach to first segment.
        execute_payloads: Run the workload's real payload per segment.
        on_complete: Callback fired once when the workload finishes.
        fleet_state: Optional durable state store this execution mirrors
            itself into after every transition.
    """

    def __init__(
        self,
        workload: Workload,
        provider: "CloudProvider",
        backend: "CheckpointBackend",
        results_bucket: str,
        boot_delay: float,
        execute_payloads: bool,
        on_complete: Callable[["WorkloadExecution"], None],
        fleet_state: Optional["FleetStateStore"] = None,
        image_id: Optional[str] = None,
    ) -> None:
        self.workload = workload
        self._provider = provider
        self._engine = provider.engine
        self._telemetry = provider.telemetry
        self._backend = backend
        self._bucket = results_bucket
        self._boot_delay = boot_delay
        self._execute_payloads = execute_payloads
        self._on_complete = on_complete
        self._fleet_state = fleet_state
        self._image_id = image_id
        self.state = ExecutionState.WAITING
        self.instance: Optional[Instance] = None
        self.completed_segments = 0
        #: ``(source region, bytes)`` pairs of upstream stage outputs
        #: this execution downloads at every boot (DAG-aware placement:
        #: the coordinator resolves a stage's input edges to the
        #: regions its producer stages completed in).  A migration
        #: re-pays the download — moving a step moves its inputs.
        self.input_sources: List[Tuple[str, int]] = []
        self.record = WorkloadRecord(
            workload_id=workload.workload_id,
            kind=workload.kind,
            submitted_at=self._engine.now,
        )
        self._segment_event: Optional[Event] = None
        self._boot_event: Optional[Event] = None
        self._segment_due: Optional[float] = None
        self._boot_due: Optional[float] = None

    # ------------------------------------------------------------------
    # Durable mirror
    # ------------------------------------------------------------------
    def state_item(self) -> Dict[str, Any]:
        """Full durable state, for the fleet state store."""
        return {
            "workload_id": self.workload.workload_id,
            "state": self.state.value,
            "completed_segments": self.completed_segments,
            "instance_id": self.instance.instance_id if self.instance else None,
            "boot_due": self._boot_due,
            "segment_due": self._segment_due,
            "input_sources": [list(source) for source in self.input_sources],
            "record": self.record.to_item(),
        }

    def _sync(self) -> None:
        """Mirror current state into the fleet state store, if any."""
        if self._fleet_state is not None:
            self._fleet_state.save_execution(self)

    def detach_timers(self) -> None:
        """Cancel in-process timers without touching durable state.

        Crash semantics for a controller teardown: the engine events
        die, but their due times stay in the store so :meth:`restore`
        can re-arm them at the original absolute times.
        """
        if self._segment_event is not None:
            self._segment_event.cancel()
            self._segment_event = None
        if self._boot_event is not None:
            self._boot_event.cancel()
            self._boot_event = None

    @classmethod
    def restore(
        cls,
        item: Dict[str, Any],
        workload: Workload,
        provider: "CloudProvider",
        backend: "CheckpointBackend",
        results_bucket: str,
        boot_delay: float,
        execute_payloads: bool,
        on_complete: Callable[["WorkloadExecution"], None],
        fleet_state: "FleetStateStore",
        image_id: Optional[str] = None,
    ) -> "WorkloadExecution":
        """Rebuild an execution from its stored :meth:`state_item`.

        Pending boot/segment timers are re-armed at their stored
        absolute due times, so the restored execution's future is
        identical to the torn-down one's.
        """
        execution = cls(
            workload=workload,
            provider=provider,
            backend=backend,
            results_bucket=results_bucket,
            boot_delay=boot_delay,
            execute_payloads=execute_payloads,
            on_complete=on_complete,
            fleet_state=fleet_state,
            image_id=image_id,
        )
        execution.state = ExecutionState(item["state"])
        execution.completed_segments = item["completed_segments"]
        execution.input_sources = [
            (str(region), int(nbytes))
            for region, nbytes in item.get("input_sources", [])
        ]
        execution.record = WorkloadRecord.from_item(item["record"])
        if item["instance_id"] is not None:
            execution.instance = provider.ec2.describe_instance(item["instance_id"])
        execution._boot_due = item["boot_due"]
        execution._segment_due = item["segment_due"]
        wid = workload.workload_id
        if execution.state is ExecutionState.BOOTING and execution._boot_due is not None:
            execution._boot_event = provider.engine.call_at(
                execution._boot_due,
                execution._begin_running,
                label=f"exec:{wid}:boot",
            )
        if execution.state is ExecutionState.RUNNING and execution._segment_due is not None:
            execution._segment_event = provider.engine.call_at(
                execution._segment_due,
                execution._segment_done,
                label=f"exec:{wid}:seg{execution.completed_segments}",
            )
        return execution

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------
    def attach(self, instance: Instance) -> None:
        """Bind a freshly launched instance and begin booting.

        Raises:
            WorkloadError: If the execution already has an instance or
                is done.
        """
        if self.state in (ExecutionState.BOOTING, ExecutionState.RUNNING):
            raise WorkloadError(
                f"workload {self.workload.workload_id!r} already has instance "
                f"{self.instance.instance_id if self.instance else '?'}"
            )
        if self.state is ExecutionState.DONE:
            raise WorkloadError(
                f"workload {self.workload.workload_id!r} is already complete"
            )
        was_interrupted = self.state is ExecutionState.INTERRUPTED
        self.instance = instance
        self.state = ExecutionState.BOOTING
        self._telemetry.bus.emit(
            EventType.INSTANCE_ATTACHED,
            workload_id=self.workload.workload_id,
            region=instance.region,
            instance_id=instance.instance_id,
            option=instance.lifecycle.value,
        )
        if was_interrupted and self.record.interruptions:
            lost_at, lost_region = self.record.interruptions[-1]
            latency = self._engine.now - lost_at
            self._telemetry.bus.emit(
                EventType.MIGRATION_COMPLETED,
                workload_id=self.workload.workload_id,
                region=instance.region,
                instance_id=instance.instance_id,
                option=instance.lifecycle.value,
                latency=latency,
                from_region=lost_region,
            )
            self._telemetry.metrics.histogram(
                "migration_latency_seconds",
                "interruption warning to replacement instance attach",
            ).observe(latency, to_region=instance.region)
        self.record.attempts += 1
        self.record.regions.append(instance.region)
        self.record.attempt_starts.append(self._engine.now)
        if instance.lifecycle is InstanceLifecycle.ON_DEMAND:
            self.record.on_demand_attempts += 1
        boot = self._boot_delay
        if self._image_id is not None:
            # Launching where the Galaxy AMI has not been propagated
            # provisions from scratch via user-data (Section 4).
            boot += self._provider.ami.boot_penalty(self._image_id, instance.region)
        self._boot_due = self._engine.now + boot
        self._boot_event = self._engine.call_in(
            boot,
            self._begin_running,
            label=f"exec:{self.workload.workload_id}:boot",
        )
        self._sync()

    def _instance_lost(self) -> bool:
        """Whether chaos killed the instance under a still-armed timer.

        Without faults the interruption notice always cancels pending
        timers before the instance dies, so this can only be true when
        a chaos controller dropped that notice on the floor; the
        reconcile sweep repairs the execution at its next tick.
        """
        return (
            self._provider.chaos is not None
            and self.instance is not None
            and not self.instance.is_live
        )

    def _begin_running(self) -> None:
        if self._instance_lost():
            self._boot_event = None
            return
        self._boot_event = None
        self._boot_due = None
        self.state = ExecutionState.RUNNING
        self._telemetry.bus.emit(
            EventType.WORKLOAD_RUNNING,
            workload_id=self.workload.workload_id,
            region=self.instance.region if self.instance else "",
            instance_id=self.instance.instance_id if self.instance else "",
            completed_segments=self.completed_segments,
        )
        if self.workload.input_bytes > 0 and self.instance is not None:
            # The user-data script downloads the input dataset on every
            # boot; running outside the data's home region pays the
            # cross-region transfer (Section 5.1.2's cost model).
            self._charge_input_download(self.instance.region)
        if self.input_sources and self.instance is not None:
            # DAG stages fetch upstream stage outputs on every boot;
            # running outside a producer's region pays the egress.
            self._charge_step_inputs(self.instance.region)
        if self.workload.checkpointable:
            # Resume from the latest durable checkpoint (the replacement
            # instance downloads state the dying instance uploaded).
            restored = self._restore_progress()
            if restored > self.completed_segments:
                self.completed_segments = restored
            if restored > 0 and self.record.attempts > 1:
                self._telemetry.bus.emit(
                    EventType.CHECKPOINT_RESTORED,
                    workload_id=self.workload.workload_id,
                    region=self.instance.region if self.instance else "",
                    segments=restored,
                )
                self._telemetry.metrics.counter(
                    "checkpoint_restores_total", "resumes from a durable checkpoint"
                ).inc()
        self._schedule_next_segment()

    def _restore_progress(self) -> int:
        """Checkpoint restore with integrity verification under chaos.

        The fault-free path is exactly one ``load_progress`` call.  When
        faults are injected, the recorded progress count may point at an
        artifact whose bytes were corrupted in flight; the replacement
        instance then falls back to the newest artifact whose checksum
        still verifies, re-running the segments in between — the
        measurable price of the corruption.
        """
        workload_id = self.workload.workload_id
        try:
            restored = self._backend.load_progress(workload_id)
        except ThrottlingError as exc:
            # Progress unreadable through every retry: resume from the
            # in-memory count rather than stalling the replacement.
            note_dead_letter(
                self._telemetry, "checkpoint:load", str(exc), workload_id=workload_id
            )
            restored = self.completed_segments
        if self._provider.chaos is None or self.record.attempts <= 1:
            return restored
        check = self._backend.verify_artifacts(workload_id)
        if check is None or check.newest_valid:
            return restored
        self._telemetry.bus.emit(
            EventType.CHECKPOINT_FALLBACK,
            workload_id=workload_id,
            region=self.instance.region if self.instance else "",
            from_segments=restored,
            to_segments=check.valid_segments,
            corrupt=check.corrupt_count,
        )
        self._telemetry.metrics.counter(
            "checkpoint_fallbacks_total",
            "restores demoted to an older valid checkpoint",
        ).inc()
        if self.completed_segments > check.valid_segments:
            self.completed_segments = check.valid_segments
        return min(restored, check.valid_segments)

    def _schedule_next_segment(self) -> None:
        remaining = self.workload.remaining_after(self.completed_segments)
        if not remaining:
            self._complete()
            return
        self._segment_due = self._engine.now + remaining[0]
        self._segment_event = self._engine.call_in(
            remaining[0],
            self._segment_done,
            label=f"exec:{self.workload.workload_id}:seg{self.completed_segments}",
        )
        self._sync()

    def _segment_done(self) -> None:
        if self._instance_lost():
            # The instance died mid-segment and the notice was dropped:
            # the segment cannot have finished.  Freeze progression and
            # let the reconcile sweep restage the workload.
            self._segment_event = None
            return
        self._segment_event = None
        self._segment_due = None
        index = self.completed_segments
        self.completed_segments += 1
        self._telemetry.metrics.counter(
            "segments_completed_total", "workload segments finished"
        ).inc()
        if self._execute_payloads and self.workload.payload is not None:
            self.workload.payload(index)
        if self.workload.checkpointable:
            # Per-segment progress tracking in DynamoDB (the paper's
            # per-file status updates).
            self._backend.save_progress(
                self.workload.workload_id,
                self.completed_segments,
                detail={"region": self.instance.region if self.instance else ""},
            )
        self._schedule_next_segment()

    def _complete(self) -> None:
        self.state = ExecutionState.DONE
        now = self._engine.now
        self.record.completed_at = now
        self._telemetry.bus.emit(
            EventType.WORKLOAD_DONE,
            workload_id=self.workload.workload_id,
            region=self.instance.region if self.instance else "",
            attempts=self.record.attempts,
            interruptions=self.record.n_interruptions,
            elapsed=now - self.record.submitted_at,
        )
        self._telemetry.metrics.counter(
            "workloads_completed_total", "workloads run to completion"
        ).inc()
        self._telemetry.metrics.histogram(
            "workload_completion_seconds", "submission to completion"
        ).observe(now - self.record.submitted_at)
        if self.instance is not None and self.instance.is_live:
            self._provider.ec2.terminate_instances([self.instance.instance_id])
        # Activity log to S3 (the paper stores run details for cost and
        # duration accounting).
        self._provider.s3.put_object(
            self._bucket,
            f"runs/{self.workload.workload_id}/complete.json",
            body=repr(
                {
                    "workload": self.workload.workload_id,
                    "completed_at": now,
                    "attempts": self.record.attempts,
                    "interruptions": self.record.n_interruptions,
                }
            ).encode("utf-8"),
            source_region=self.instance.region if self.instance else None,
            tag=self.workload.workload_id,
        )
        self.instance = None
        self._sync()
        self._on_complete(self)

    # ------------------------------------------------------------------
    # Interruption path
    # ------------------------------------------------------------------
    def handle_interruption_notice(self) -> str:
        """React to the two-minute warning; returns the lost region.

        Cancels in-flight work, persists a final checkpoint (checkpoint
        workloads push their state through the backend within the
        notice window), or resets progress (standard workloads).
        """
        if self.instance is None:
            raise WorkloadError(
                f"workload {self.workload.workload_id!r} got an interruption "
                "notice without an instance"
            )
        region = self.instance.region
        now = self._engine.now
        self.record.interruptions.append((now, region))
        if self._segment_event is not None:
            self._segment_event.cancel()
            self._segment_event = None
        self._segment_due = None
        if self._boot_event is not None:
            self._boot_event.cancel()
            self._boot_event = None
        self._boot_due = None
        if self.workload.checkpointable:
            self._backend.save_progress(
                self.workload.workload_id,
                self.completed_segments,
                detail={"interrupted_in": region},
            )
            self._telemetry.bus.emit(
                EventType.CHECKPOINT_SAVED,
                workload_id=self.workload.workload_id,
                region=region,
                segments=self.completed_segments,
                bytes=self.workload.checkpoint_bytes,
                backend=self._backend.name,
            )
            self._telemetry.metrics.counter(
                "checkpoint_saves_total", "interruption-time checkpoint persists"
            ).inc(region=region)
            self._telemetry.metrics.counter(
                "checkpoint_bytes_total", "checkpoint payload bytes persisted"
            ).inc(float(self.workload.checkpoint_bytes))
            # Checkpoint state persisted during the notice window; the
            # backend decides between the paper's S3 upload (paying
            # cross-region transfer when the bucket lives elsewhere)
            # and the Section 7 EFS write.
            self._backend.persist_artifact(
                self.workload.workload_id,
                self.record.n_interruptions,
                self.workload.checkpoint_bytes,
                region,
                segments=self.completed_segments,
            )
        else:
            self.completed_segments = 0
        self.instance = None
        self.state = ExecutionState.INTERRUPTED
        self._sync()
        return region

    def _charge_input_download(self, dest_region: str) -> None:
        """Charge the per-boot input download (cross-region only)."""
        from repro.cloud.billing import S3_CROSS_REGION_TRANSFER_PRICE, CostCategory

        bucket_region = self._provider.s3.bucket_region(self._bucket)
        if dest_region == bucket_region:
            return
        self._provider.ledger.charge(
            time=self._engine.now,
            category=CostCategory.S3_TRANSFER,
            amount=(self.workload.input_bytes / (1024 ** 3))
            * S3_CROSS_REGION_TRANSFER_PRICE,
            region=bucket_region,
            tag=self.workload.workload_id,
            detail=f"input download {bucket_region}->{dest_region} "
            f"{self.workload.workload_id}",
        )

    def _charge_step_inputs(self, dest_region: str) -> None:
        """Charge cross-region egress for upstream stage outputs.

        Each ``(source region, bytes)`` entry in :attr:`input_sources`
        is one producer stage's output set; fetching it into the same
        region is free, anywhere else pays the S3 cross-region rate —
        the per-edge data-transfer cost the DAG planner models.
        """
        from repro.cloud.billing import S3_CROSS_REGION_TRANSFER_PRICE, CostCategory

        for source_region, nbytes in self.input_sources:
            if source_region == dest_region or nbytes <= 0:
                continue
            self._provider.ledger.charge(
                time=self._engine.now,
                category=CostCategory.S3_TRANSFER,
                amount=(nbytes / (1024 ** 3)) * S3_CROSS_REGION_TRANSFER_PRICE,
                region=source_region,
                tag=self.workload.workload_id,
                detail=f"step input {source_region}->{dest_region} "
                f"{self.workload.workload_id}",
            )

    @property
    def needs_instance(self) -> bool:
        """Whether the execution is waiting for capacity."""
        return self.state in (ExecutionState.WAITING, ExecutionState.INTERRUPTED)
