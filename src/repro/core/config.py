"""SpotVerse configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.sim.clock import MINUTE


@dataclass(frozen=True)
class SpotVerseConfig:
    """All knobs of the SpotVerse control plane.

    Attributes:
        instance_type: Instance type workloads run on.
        score_threshold: Algorithm 1's ``T`` — minimum combined
            (placement + stability) score for a region to qualify for
            spot placement.  The paper sweeps {4, 5, 6} and defaults to
            the reliability-leaning 6.
        max_regions: Algorithm 1's ``R`` — how many qualifying regions
            workloads are spread over (the paper fixes 4).
        initial_distribution: When true, Algorithm 1's round-robin
            spread over the top-R regions is used at launch (Section
            5.2.3).  When false, every workload starts in
            ``start_region`` — the paper's Section 5.2.1 setup for a
            fair single-region comparison.
        start_region: Launch region when *initial_distribution* is off
            (defaults to the cheapest mean-spot region for the type).
        preferred_regions: Optional user-specified region allow-list;
            regions outside it are never considered.
        use_on_demand_fallback: Fall back to the cheapest on-demand
            instance when no region clears the threshold (Algorithm
            1's else-branch).  Disabled only by the ablation bench.
        use_placement_score: Include the Spot Placement Score in the
            combined score.  Disable to model providers without it —
            the paper's Section 7 notes Azure publishes only an
            interruption-frequency equivalent.
        use_stability_score: Include the Stability Score in the
            combined score.  With both metric flags off the Optimizer
            degrades to price-only ranking (the GCP case the paper
            describes, and behaviourally the SkyPilot baseline).
        boot_delay: Seconds between instance launch and useful work
            (AMI boot + Galaxy/tool startup via the user-data script).
        sweep_interval: Period of the Controller's open-spot-request
            retry sweep (the paper uses 15 minutes).
        collect_interval: Monitor metric-collection period.
        execute_payloads: Run workloads' real bioinformatics payloads
            at each segment completion (slower; examples/tests enable).
        results_bucket: S3 bucket for run logs and checkpoints.
        results_region: Region the results bucket lives in (checkpoint
            uploads from other regions pay cross-region transfer).
        checkpoint_backend: Where interruption-time checkpoint state
            goes: ``"s3"`` (the paper's implementation — cross-region
            upload during the two-minute notice) or ``"efs"`` (the
            Section 7 alternative — a regional EFS write, replicated to
            the results region out-of-band).
    """

    instance_type: str = "m5.xlarge"
    score_threshold: float = 6.0
    max_regions: int = 4
    initial_distribution: bool = True
    start_region: Optional[str] = None
    preferred_regions: Optional[Sequence[str]] = None
    use_on_demand_fallback: bool = True
    use_placement_score: bool = True
    use_stability_score: bool = True
    boot_delay: float = 180.0
    sweep_interval: float = 15 * MINUTE
    collect_interval: float = 5 * MINUTE
    execute_payloads: bool = False
    results_bucket: str = "spotverse-results"
    results_region: str = "us-east-1"
    checkpoint_backend: str = "s3"

    def __post_init__(self) -> None:
        if self.checkpoint_backend not in ("s3", "efs"):
            raise ReproError(
                f"checkpoint_backend must be 's3' or 'efs', got "
                f"{self.checkpoint_backend!r}"
            )
        if self.max_regions < 1:
            raise ReproError(f"max_regions must be >= 1, got {self.max_regions}")
        if self.boot_delay < 0:
            raise ReproError(f"boot_delay must be >= 0, got {self.boot_delay}")
        if self.sweep_interval <= 0:
            raise ReproError(f"sweep_interval must be positive, got {self.sweep_interval}")
        if self.collect_interval <= 0:
            raise ReproError(f"collect_interval must be positive, got {self.collect_interval}")
        if self.preferred_regions is not None and not self.preferred_regions:
            raise ReproError("preferred_regions, when given, must be non-empty")
