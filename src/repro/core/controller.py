"""The Controller: executes a placement policy over a fleet.

Wires the paper's Section 4 control plane onto the simulated cloud:

* an **EventBridge rule** routes spot interruption warnings to the
  interruption-handler **Lambda**,
* the handler checkpoints/records and starts a **Step Functions**
  execution that re-acquires capacity per the policy (with retries for
  failed requests),
* a **CloudWatch 15-minute sweep** retries spot requests that stayed
  ``open``,
* run logs and checkpoints land in **S3**, progress in **DynamoDB**.

Every strategy in the paper's evaluation — SpotVerse, single-region,
on-demand, SkyPilot-like — runs through this same controller; only the
:class:`~repro.core.policy.PlacementPolicy` differs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.cloud.provider import CloudProvider
from repro.cloud.services.ec2 import Instance, SpotRequest, SpotRequestState
from repro.cloud.services.stepfunctions import RetryPolicy
from repro.core.config import SpotVerseConfig
from repro.core.execution import ExecutionState, WorkloadExecution
from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.core.result import FleetResult
from repro.errors import ExperimentError
from repro.galaxy.checkpoint import DynamoCheckpointStore
from repro.obs import EventType
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.base import Workload


class FleetController:
    """Runs workload fleets under a placement policy.

    Args:
        provider: The simulated cloud.
        policy: Placement decisions (SpotVerse's Optimizer or a
            baseline).
        config: Control-plane configuration.
        monitor: Optional Monitor handed to the policy context.
    """

    def __init__(
        self,
        provider: CloudProvider,
        policy: PlacementPolicy,
        config: SpotVerseConfig,
        monitor: Optional[object] = None,
        image_id: Optional[str] = None,
    ) -> None:
        self._provider = provider
        self._policy = policy
        self._config = config
        self._image_id = image_id
        self._engine = provider.engine
        self._telemetry = provider.telemetry
        self._ctx = PolicyContext(
            provider=provider,
            monitor=monitor,
            rng=provider.engine.streams.get(f"controller:{policy.name}"),
        )
        self._store = DynamoCheckpointStore(provider.dynamodb)
        provider.s3.create_bucket(config.results_bucket, config.results_region)
        self._efs_artifacts = None
        if config.checkpoint_backend == "efs":
            from repro.core.execution import EFSCheckpointArtifacts

            self._efs_artifacts = EFSCheckpointArtifacts(
                provider, config.results_region
            )

        self._executions: Dict[str, WorkloadExecution] = {}
        self._by_instance: Dict[str, WorkloadExecution] = {}
        self._open_requests: Dict[str, str] = {}  # request_id -> workload_id
        self._done = 0

        # Control-plane wiring (Section 4).
        provider.lambda_.create_function(
            "spotverse-interruption-handler",
            handler=self._interruption_handler,
            memory_mb=128,
            simulated_duration=1.0,
        )
        provider.eventbridge.put_rule(
            "spotverse-on-interruption",
            source="aws.ec2",
            detail_type="EC2 Spot Instance Interruption Warning",
        )
        provider.eventbridge.add_target(
            "spotverse-on-interruption",
            provider.lambda_.as_target("spotverse-interruption-handler"),
        )
        provider.stepfunctions.create_state_machine(
            "spotverse-reacquire",
            task=self._reacquire_task,
            retry=RetryPolicy(max_attempts=4, interval=30.0, backoff_rate=2.0),
        )
        provider.cloudwatch.schedule_rule(
            "spotverse-open-request-sweep",
            interval=config.sweep_interval,
            target=self._sweep_open_requests,
        )

    # ------------------------------------------------------------------
    # Acquisition paths
    # ------------------------------------------------------------------
    def _acquire(
        self, execution: WorkloadExecution, placement: Placement, phase: str = "initial"
    ) -> None:
        workload_id = execution.workload.workload_id
        if placement.option is PurchasingOption.ON_DEMAND:
            fallback_attrs = {"phase": phase}
            if placement.reason:
                fallback_attrs["reason"] = placement.reason
            self._telemetry.bus.emit(
                EventType.FALLBACK_ON_DEMAND,
                workload_id=workload_id,
                region=placement.region,
                option=PurchasingOption.ON_DEMAND.value,
                **fallback_attrs,
            )
            self._telemetry.metrics.counter(
                "fallback_on_demand_total", "placements that resolved to on-demand"
            ).inc(region=placement.region)
            instance = self._provider.ec2.run_on_demand(
                placement.region, self._config.instance_type, tag=workload_id
            )
            # On-demand instances join the same instance map spot
            # fulfillments use, so spans and terminations see one
            # uniform view of running capacity.
            self._by_instance[instance.instance_id] = execution
            execution.attach(instance)
            return
        request = self._provider.ec2.request_spot_instances(
            placement.region,
            self._config.instance_type,
            tag=workload_id,
            on_fulfilled=self._on_spot_fulfilled,
        )
        self._open_requests[request.request_id] = workload_id

    def _on_spot_fulfilled(self, request: SpotRequest, instance: Instance) -> None:
        workload_id = self._open_requests.pop(request.request_id, None)
        if workload_id is None:
            # Request no longer tracked (workload finished meanwhile).
            self._provider.ec2.terminate_instances([instance.instance_id])
            return
        execution = self._executions[workload_id]
        if not execution.needs_instance:
            self._provider.ec2.terminate_instances([instance.instance_id])
            return
        self._by_instance[instance.instance_id] = execution
        execution.attach(instance)

    def _sweep_open_requests(self) -> None:
        """The 15-minute CloudWatch check for open spot requests.

        One ``describe_spot_requests`` call per sweep, indexed by id —
        not one per tracked request, which made large fleets quadratic.
        """
        open_by_id = {
            request.request_id: request
            for request in self._provider.ec2.describe_spot_requests(
                states=[SpotRequestState.OPEN]
            )
        }
        for request_id, workload_id in list(self._open_requests.items()):
            request = open_by_id.get(request_id)
            if request is None:
                continue
            execution = self._executions.get(workload_id)
            if execution is None or not execution.needs_instance:
                self._provider.ec2.cancel_spot_request(request_id)
                self._open_requests.pop(request_id, None)
                continue
            self._provider.ec2.retry_open_request(
                request_id, on_fulfilled=self._on_spot_fulfilled
            )

    # ------------------------------------------------------------------
    # Interruption path
    # ------------------------------------------------------------------
    def _interruption_handler(self, event: Dict[str, Any], context: object) -> str:
        """Lambda: record the warning, checkpoint, and re-acquire."""
        instance_id = event.get("detail", {}).get("instance-id", "")
        execution = self._by_instance.pop(instance_id, None)
        if execution is None or execution.state is ExecutionState.DONE:
            return "ignored"
        lost_region = execution.handle_interruption_notice()
        self._telemetry.bus.emit(
            EventType.MIGRATION_STARTED,
            workload_id=execution.workload.workload_id,
            region=lost_region,
            instance_id=instance_id,
        )
        self._telemetry.metrics.counter(
            "migrations_started_total", "reacquisitions kicked off by interruptions"
        ).inc(region=lost_region)
        self._provider.stepfunctions.start_execution(
            "spotverse-reacquire",
            input={
                "workload_id": execution.workload.workload_id,
                "exclude_region": lost_region,
            },
        )
        return "handled"

    def _reacquire_task(self, input: Dict[str, Any]) -> str:
        """Step Functions task: pick a migration target and request it."""
        workload_id = input["workload_id"]
        execution = self._executions[workload_id]
        if not execution.needs_instance:
            return "noop"
        placement = self._policy.migration_placement(
            execution.workload, input["exclude_region"], self._ctx
        )
        self._acquire(execution, placement, phase="migration")
        return placement.region

    # ------------------------------------------------------------------
    # Fleet entry point
    # ------------------------------------------------------------------
    def run(
        self,
        workloads: Sequence[Workload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Run *workloads* to completion (or the deadline).

        Raises:
            ExperimentError: On duplicate workload ids or an empty fleet.
        """
        if not workloads:
            raise ExperimentError("fleet must contain at least one workload")
        ids = [workload.workload_id for workload in workloads]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"duplicate workload ids in fleet: {ids!r}")
        already_known = [wid for wid in ids if wid in self._executions]
        if already_known:
            raise ExperimentError(
                f"workload ids already used by an earlier fleet on this "
                f"controller: {already_known!r}"
            )

        for workload in workloads:
            execution = WorkloadExecution(
                workload=workload,
                provider=self._provider,
                checkpoint_store=self._store,
                results_bucket=self._config.results_bucket,
                boot_delay=self._config.boot_delay,
                execute_payloads=self._config.execute_payloads,
                on_complete=self._on_workload_complete,
                efs_artifacts=self._efs_artifacts,
                image_id=self._image_id,
            )
            self._executions[workload.workload_id] = execution
            # History-aware policies read live records via the context.
            self._ctx.records[workload.workload_id] = execution.record
            self._telemetry.bus.emit(
                EventType.WORKLOAD_SUBMITTED,
                workload_id=workload.workload_id,
                kind=workload.kind.value,
                segments=len(workload.segment_durations),
            )

        placements = self._policy.initial_placements(workloads, self._ctx)
        if len(placements) != len(workloads):
            raise ExperimentError(
                f"policy {self._policy.name!r} returned {len(placements)} placements "
                f"for {len(workloads)} workloads"
            )
        for workload, placement in zip(workloads, placements):
            self._acquire(self._executions[workload.workload_id], placement)

        # The controller may run several fleets over its lifetime; this
        # run is complete when *its* workloads have all finished.
        target = self._done + len(workloads)
        deadline = self._engine.now + max_hours * HOUR
        while self._done < target and self._engine.now < deadline:
            self._engine.run_until(min(self._engine.now + poll_interval, deadline))

        return self._build_result(workloads)

    def _on_workload_complete(self, execution: WorkloadExecution) -> None:
        self._done += 1

    def _build_result(self, workloads: Sequence[Workload]) -> FleetResult:
        self._provider.ec2.settle_billing()
        # Stop anything still running (deadline hit) and release
        # untracked capacity.
        for execution in self._executions.values():
            if execution.instance is not None and execution.instance.is_live:
                self._provider.ec2.terminate_instances([execution.instance.instance_id])
        records = []
        ledger = self._provider.ledger
        for workload in workloads:
            execution = self._executions[workload.workload_id]
            execution.record.cost = ledger.total_for_tag(workload.workload_id)
            records.append(execution.record)
        return FleetResult(
            strategy=self._policy.name,
            records=records,
            total_cost=ledger.total(),
            instance_cost=ledger.instance_total(),
            overhead_cost=ledger.overhead_total(),
            ended_at=self._engine.now,
        )

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def execution(self, workload_id: str) -> WorkloadExecution:
        """Return the execution for *workload_id*."""
        return self._executions[workload_id]

    def register_instance(self, instance: Instance, execution: WorkloadExecution) -> None:
        """Track an externally attached instance (tests/tools)."""
        self._by_instance[instance.instance_id] = execution
