"""The Controller: a thin façade over the fleet control-plane services.

Wires the paper's Section 4 control plane onto the simulated cloud by
composing the :mod:`repro.core.fleet` services:

* a :class:`~repro.core.fleet.state.FleetStateStore` keeps workload /
  instance / request state durably in **DynamoDB** — the controller
  object itself holds no fleet state and can be torn down mid-run and
  rebuilt from the store (:meth:`FleetController.resume`),
* the :class:`~repro.core.fleet.interruption.InterruptionService`
  deploys the **EventBridge rule** → interruption-handler **Lambda** →
  **Step Functions** re-acquire chain,
* the :class:`~repro.core.fleet.capacity.CapacityService` owns spot
  requests, on-demand fallback, and the **CloudWatch 15-minute sweep**
  for requests that stayed ``open``,
* the :class:`~repro.core.fleet.lifecycle.LifecycleService` owns
  registration, completion accounting, and result assembly; run logs
  and checkpoints land in **S3** via the configured
  :class:`~repro.core.fleet.checkpoint.CheckpointBackend`.

Every strategy in the paper's evaluation — SpotVerse, single-region,
on-demand, SkyPilot-like — runs through this same controller; only the
:class:`~repro.core.policy.PlacementPolicy` differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.cloud.provider import CloudProvider
from repro.core.config import SpotVerseConfig
from repro.core.dag import DagWorkload
from repro.core.execution import WorkloadExecution
from repro.core.fleet.capacity import CapacityService
from repro.core.fleet.checkpoint import (
    CheckpointBackend,
    DynamoCheckpointBackend,
    EFSCheckpointBackend,
)
from repro.core.fleet.coordinator import DagCoordinator
from repro.core.fleet.interruption import InterruptionService
from repro.core.fleet.lifecycle import LifecycleService
from repro.core.fleet.state import FleetStateStore
from repro.core.policy import PlacementPolicy, PolicyContext
from repro.core.result import FleetResult
from repro.errors import ExperimentError
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.services.ec2 import Instance
    from repro.core.monitor import Monitor


class FleetController:
    """Runs workload fleets under a placement policy.

    Args:
        provider: The simulated cloud.
        policy: Placement decisions (SpotVerse's Optimizer or a
            baseline).
        config: Control-plane configuration.
        monitor: Optional Monitor handed to the policy context.
        image_id: Optional Galaxy AMI shaping boot times.
        state_store: Durable fleet state to compose over.  Defaults to
            a fresh store; pass the store of a torn-down controller to
            rebuild its control plane (then call :meth:`resume`).
        n_shards: Shard count for the default store (ignored when
            *state_store* is supplied).  1 — the default — is
            byte-identical to the unsharded store; the multi-tenant
            control plane raises it to keep scans O(shard).
    """

    def __init__(
        self,
        provider: CloudProvider,
        policy: PlacementPolicy,
        config: SpotVerseConfig,
        monitor: Optional["Monitor"] = None,
        image_id: Optional[str] = None,
        state_store: Optional[FleetStateStore] = None,
        n_shards: int = 1,
    ) -> None:
        self._provider = provider
        self._policy = policy
        self._config = config
        self._engine = provider.engine
        self._ctx = PolicyContext(
            provider=provider,
            monitor=monitor,
            rng=provider.engine.streams.get(f"controller:{policy.name}"),
        )
        self.state_store = state_store if state_store is not None else FleetStateStore(
            provider.dynamodb, n_shards=n_shards
        )
        self._backend = self._make_backend(config, provider, self.state_store)
        provider.s3.create_bucket(config.results_bucket, config.results_region)

        self._lifecycle = LifecycleService(
            provider=provider,
            config=config,
            store=self.state_store,
            ctx=self._ctx,
            backend=self._backend,
            strategy=policy.name,
            image_id=image_id,
        )
        self._capacity = CapacityService(
            provider=provider,
            config=config,
            store=self.state_store,
            lifecycle=self._lifecycle,
        )
        self._interruption = InterruptionService(
            provider=provider,
            policy=policy,
            store=self.state_store,
            lifecycle=self._lifecycle,
            capacity=self._capacity,
            ctx=self._ctx,
        )
        self._dag = DagCoordinator(
            provider=provider,
            policy=policy,
            store=self.state_store,
            lifecycle=self._lifecycle,
            capacity=self._capacity,
            ctx=self._ctx,
        )
        self.state_store.router.bind(self._capacity, self._interruption, provider.ec2)

        # Control-plane wiring (Section 4) targets the store's router,
        # so it is deployed once per store: a controller rebuilt over an
        # existing store reuses the live Lambda / rule / state machine /
        # sweep, exactly as a redeployed serverless stack would.
        meta = self.state_store.mapping("control-plane")
        if not meta.get("deployed"):
            self._interruption.deploy()
            self._capacity.deploy()
            meta["deployed"] = True

    @staticmethod
    def _make_backend(
        config: SpotVerseConfig, provider: CloudProvider, store: FleetStateStore
    ) -> CheckpointBackend:
        if config.checkpoint_backend == "efs":
            return EFSCheckpointBackend(
                provider,
                config.results_region,
                fs_registry=store.mapping("efs-filesystems"),
            )
        return DynamoCheckpointBackend(provider, config.results_bucket)

    # ------------------------------------------------------------------
    # Fleet entry points
    # ------------------------------------------------------------------
    def run(
        self,
        workloads: Sequence[Workload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Run *workloads* to completion (or the deadline).

        Raises:
            ExperimentError: On duplicate workload ids or an empty fleet.
        """
        self.submit(workloads)
        return self.wait(workloads, max_hours=max_hours, poll_interval=poll_interval)

    def submit(self, workloads: Sequence[Workload]) -> None:
        """Register *workloads* and acquire their initial capacity."""
        self._lifecycle.register(workloads)
        placements = self._policy.initial_placements(workloads, self._ctx)
        if len(placements) != len(workloads):
            raise ExperimentError(
                f"policy {self._policy.name!r} returned {len(placements)} placements "
                f"for {len(workloads)} workloads"
            )
        for workload, placement in zip(workloads, placements):
            self._capacity.acquire(
                self._lifecycle.execution(workload.workload_id), placement
            )

    def wait(
        self,
        workloads: Sequence[Workload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Drive the engine until *workloads* finish (or the deadline)."""
        deadline = self._engine.now + max_hours * HOUR
        while not self._lifecycle.all_done(workloads) and self._engine.now < deadline:
            self._engine.run_until(min(self._engine.now + poll_interval, deadline))
        return self._lifecycle.build_result(workloads)

    # ------------------------------------------------------------------
    # DAG entry points (DAG-aware placement: the step is the unit)
    # ------------------------------------------------------------------
    def run_dags(
        self,
        dags: Sequence[DagWorkload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Run compiled DAGs to completion (or the deadline).

        Stages are registered and placed as their dependencies
        complete; independent steps fan out across instances, each
        placed by the same batched Algorithm-1 rounds whole fleets
        use.  A linear workload compiled via
        :func:`repro.core.dag.compile_workload` runs bit-identically
        to :meth:`run` — the degenerate single-chain case.
        """
        self.submit_dags(dags)
        return self.wait_dags(dags, max_hours=max_hours, poll_interval=poll_interval)

    def submit_dags(self, dags: Sequence[DagWorkload]) -> None:
        """Register *dags* and acquire capacity for their root stages."""
        self._dag.submit(dags)

    def wait_dags(
        self,
        dags: Sequence[DagWorkload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Drive the engine until every stage finishes (or the deadline).

        The result carries one record per *released* stage workload;
        on a deadline hit, stages whose dependencies never completed
        were never scheduled and do not appear.
        """
        deadline = self._engine.now + max_hours * HOUR
        while not self._dag.all_done(dags) and self._engine.now < deadline:
            self._engine.run_until(min(self._engine.now + poll_interval, deadline))
        return self._lifecycle.build_result(self._dag.released_workloads(dags))

    def restore_dags(self, dags: Sequence[DagWorkload]) -> None:
        """Rebuild DAG progress and stage executions from the store.

        Only for controllers that ran DAGs exclusively: the underlying
        :meth:`LifecycleService.restore` needs a definition for every
        stored workload, and this supplies the stage workloads of
        *dags*.
        """
        self._dag.restore(dags)

    def resume_dags(
        self,
        dags: Sequence[DagWorkload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Rebuild from the state store and finish the DAG run."""
        self.restore_dags(dags)
        return self.wait_dags(dags, max_hours=max_hours, poll_interval=poll_interval)

    # ------------------------------------------------------------------
    # Teardown / restore (crash recovery over the durable store)
    # ------------------------------------------------------------------
    def teardown(self) -> None:
        """Discard this controller's in-process state, mid-run.

        Pending boot/segment timers are cancelled (they lived in the
        dead process) and the router endpoints detach.  The cloud-side
        wiring and every byte of fleet state stay put — build a new
        controller over ``state_store`` and :meth:`resume` to continue.
        """
        # Land staged writes first: the store is the only thing the next
        # controller can rebuild from, so nothing may die in the overlay.
        self.state_store.flush()
        self._lifecycle.teardown()
        self.state_store.router.unbind()

    def restore(self, workloads: Sequence[Workload]) -> None:
        """Rebuild executions from the state store without running.

        Args:
            workloads: Definitions of the stored workloads (state is
                durable; definitions are code the client re-supplies).
        """
        self._lifecycle.restore(workloads)

    def resume(
        self,
        workloads: Sequence[Workload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Rebuild executions from the state store and finish the run."""
        self.restore(workloads)
        return self.wait(workloads, max_hours=max_hours, poll_interval=poll_interval)

    # ------------------------------------------------------------------
    # Introspection (used by tests and tools)
    # ------------------------------------------------------------------
    @property
    def services(self) -> Dict[str, object]:
        """The composed control-plane services, by role."""
        return {
            "capacity": self._capacity,
            "interruption": self._interruption,
            "lifecycle": self._lifecycle,
            "dag": self._dag,
            "state": self.state_store,
        }

    @property
    def checkpoint_backend(self) -> CheckpointBackend:
        """The active checkpoint backend."""
        return self._backend

    def execution(self, workload_id: str) -> WorkloadExecution:
        """Return the execution for *workload_id*."""
        return self._lifecycle.execution(workload_id)

    def register_instance(self, instance: "Instance", execution: WorkloadExecution) -> None:
        """Track an externally attached instance (tests/tools)."""
        self.state_store.bind_instance(instance, execution.workload.workload_id)

    @property
    def _by_instance(self) -> Dict[str, WorkloadExecution]:
        """Live ``instance_id -> execution`` view over the state store."""
        bindings = self.state_store.instance_bindings()
        return {
            instance_id: execution
            for instance_id, workload_id in bindings.items()
            for execution in [self._lifecycle.find(workload_id)]
            if execution is not None
        }
