"""Interruption prediction: the paper's Section 7 future work.

The paper plans to "use machine learning to optimize cloud resource
allocation [and] predict efficient resource configurations".  This
module implements the statistically honest core of that idea:

* :class:`InterruptionPredictor` — an online Bayesian-flavoured hazard
  estimator per (region, instance type).  The Advisor's Interruption
  Frequency provides the prior; observed interruptions over observed
  spot instance-hours (from the EC2 substrate's own records) provide
  the evidence.  A Gamma-Poisson update blends them, so a market whose
  realized reclaim rate exceeds its advisor bucket (the ca-central-1
  trap) is learned quickly.
* :class:`PredictiveOptimizer` — Algorithm 1 with one change: the
  qualifying regions are ranked by *predicted effective cost* (spot
  price x expected rework multiplier for the workload's duration and
  kind) rather than by raw spot price.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.cloud.profiles import HAZARD_SCALE
from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.optimizer import SpotVerseOptimizer
from repro.core.policy import Placement, PolicyContext, PurchasingOption
from repro.core.scoring import RegionMetrics
from repro.sim.clock import HOUR
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.provider import CloudProvider


class InterruptionPredictor:
    """Online hazard estimation per region for one instance type.

    Args:
        provider: Source of observed interruptions and exposure.
        instance_type: Type whose markets are predicted.
        prior_weight_hours: Pseudo-exposure (hours) behind the advisor
            prior; small values trust observations quickly.
    """

    def __init__(
        self,
        provider: "CloudProvider",
        instance_type: str,
        prior_weight_hours: float = 30.0,
    ) -> None:
        self._provider = provider
        self._instance_type = instance_type
        self._prior_weight = prior_weight_hours

    def observed_exposure_hours(self, region: str) -> float:
        """Total spot instance-hours observed in *region* so far."""
        from repro.cloud.services.ec2 import InstanceLifecycle

        now = self._provider.engine.now
        total = 0.0
        for instance in self._provider.ec2.describe_instances(region=region):
            if instance.lifecycle is InstanceLifecycle.SPOT:
                if instance.instance_type == self._instance_type:
                    total += instance.uptime(now) / HOUR
        return total

    def observed_interruptions(self, region: str) -> int:
        """Interruptions logged in *region* so far (all tags)."""
        return sum(
            1
            for _, instance_id, logged_region, _ in self._provider.ec2.interruption_log
            if logged_region == region
            and self._provider.ec2.describe_instance(instance_id).instance_type
            == self._instance_type
        )

    def predicted_hazard(self, metrics: RegionMetrics) -> float:
        """Posterior-mean hourly hazard for a region.

        Gamma-Poisson blend: ``(prior_rate * W + observed_events) /
        (W + observed_hours)`` with ``W = prior_weight_hours``.
        """
        prior_rate = metrics.interruption_frequency * HAZARD_SCALE
        exposure = self.observed_exposure_hours(metrics.region)
        events = self.observed_interruptions(metrics.region)
        return (prior_rate * self._prior_weight + events) / (
            self._prior_weight + exposure
        )

    @staticmethod
    def rework_multiplier(
        hazard_per_hour: float, duration_hours: float, checkpointable: bool
    ) -> float:
        """Expected total-compute over useful-compute for a workload.

        Standard (restart) semantics under a constant hazard give
        ``(e^{lT} - 1) / (lT)``; checkpoint semantics only pay the
        expected lost fragments, approximated as one quarter-hour per
        expected interruption.
        """
        if hazard_per_hour <= 0 or duration_hours <= 0:
            return 1.0
        lam_t = hazard_per_hour * duration_hours
        if checkpointable:
            return 1.0 + hazard_per_hour * 0.25
        if lam_t > 50:  # numerically: essentially never finishes
            return math.inf
        return (math.exp(lam_t) - 1.0) / lam_t

    def effective_price(
        self, metrics: RegionMetrics, duration_hours: float, checkpointable: bool
    ) -> float:
        """Spot price adjusted for predicted rework."""
        hazard = self.predicted_hazard(metrics)
        return metrics.spot_price * self.rework_multiplier(
            hazard, duration_hours, checkpointable
        )


class PredictiveOptimizer(SpotVerseOptimizer):
    """Algorithm 1 ranking by predicted effective cost.

    Args:
        monitor: Metric source (as for the base optimizer).
        config: SpotVerse configuration.
        predictor: Hazard estimator (built lazily from the first
            context when omitted).
        horizon_hours: Duration assumed when adjusting prices.
    """

    name = "spotverse-predictive"

    def __init__(
        self,
        monitor: Monitor,
        config: SpotVerseConfig,
        predictor: Optional[InterruptionPredictor] = None,
        horizon_hours: float = 10.5,
    ) -> None:
        super().__init__(monitor, config)
        self._predictor = predictor
        self._horizon = horizon_hours

    def _get_predictor(self, ctx: PolicyContext) -> InterruptionPredictor:
        if self._predictor is None:
            self._predictor = InterruptionPredictor(
                ctx.provider, self._config.instance_type
            )
        return self._predictor

    def _ranked(
        self, ctx: PolicyContext, checkpointable: bool, exclude_region: Optional[str]
    ) -> List[RegionMetrics]:
        top = self.top_regions(ctx, exclude_region=exclude_region)
        predictor = self._get_predictor(ctx)
        return sorted(
            top,
            key=lambda metrics: (
                predictor.effective_price(metrics, self._horizon, checkpointable),
                metrics.region,
            ),
        )

    def initial_placements(self, workloads, ctx: PolicyContext) -> List[Placement]:
        """Round-robin over regions ranked by predicted effective cost."""
        if not self._config.initial_distribution:
            return super().initial_placements(workloads, ctx)
        checkpointable = bool(workloads) and workloads[0].checkpointable
        ranked = self._ranked(ctx, checkpointable, exclude_region=None)
        if not ranked:
            return super().initial_placements(workloads, ctx)
        return [
            Placement(region=ranked[index % len(ranked)].region)
            for index in range(len(workloads))
        ]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        """Migrate to the best predicted region (deterministic)."""
        ranked = self._ranked(ctx, workload.checkpointable, interrupted_region)
        if not ranked:
            return super().migration_placement(workload, interrupted_region, ctx)
        # Deterministically take the best predicted region: prediction
        # replaces the randomization (that is the point of the model).
        return Placement(region=ranked[0].region, option=PurchasingOption.SPOT)
