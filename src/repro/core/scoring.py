"""Region scoring: the metrics Algorithm 1 ranks regions by."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cloud.profiles import stability_score_from_frequency


@dataclass(frozen=True)
class RegionMetrics:
    """One region's Monitor snapshot for one instance type.

    Attributes:
        region: Region name.
        instance_type: Instance type name.
        spot_price: Current spot price (USD/hour).
        od_price: Current on-demand price (USD/hour).
        placement_score: Spot Placement Score (1-10).
        interruption_frequency: Advisor frequency metric (percent).
        collected_at: Virtual time of collection.
    """

    region: str
    instance_type: str
    spot_price: float
    od_price: float
    placement_score: float
    interruption_frequency: float
    collected_at: float = 0.0

    @property
    def stability_score(self) -> int:
        """1-3 bucket derived from the interruption frequency."""
        return stability_score_from_frequency(self.interruption_frequency)

    @property
    def combined_score(self) -> float:
        """Placement + Stability — Algorithm 1's ranking quantity."""
        return self.placement_score + self.stability_score

    @property
    def savings_fraction(self) -> float:
        """Fractional savings of spot over on-demand (0 when OD is 0)."""
        if self.od_price <= 0:
            return 0.0
        return 1.0 - self.spot_price / self.od_price

    def age(self, now: float) -> float:
        """Seconds elapsed since the Monitor collected this snapshot.

        Decisions act on the last *collected* view, not the live
        market; this is the staleness a decision audit should record.
        """
        return max(0.0, now - self.collected_at)


def combined_score(placement_score: float, interruption_frequency: float) -> float:
    """Compute Algorithm 1's combined score from raw observables."""
    return placement_score + stability_score_from_frequency(interruption_frequency)


def qualifying_regions(
    metrics: Sequence[RegionMetrics], threshold: float
) -> List[RegionMetrics]:
    """Algorithm 1's ``SelectRegions``: filter by combined score >= T."""
    return [metric for metric in metrics if metric.combined_score >= threshold]


def cheapest_first(metrics: Sequence[RegionMetrics]) -> List[RegionMetrics]:
    """Sort metrics by spot price ascending (ties broken by region name).

    The name tiebreak keeps runs deterministic when two markets land on
    identical prices.
    """
    return sorted(metrics, key=lambda metric: (metric.spot_price, metric.region))
