"""Multi-tenant control plane: a fleet of fleets over one simulation.

The paper's controller places one batch of workloads for one user; the
ROADMAP's north star is a service placing work for *many* users at
once.  This module is the tenancy layer that turns the single-user
control plane into that service without touching Algorithm 1 itself:

* :class:`TenantSpec` / :class:`TenantRegistry` — who the tenants are:
  a fair-share weight, an in-flight quota, a pending-queue bound, and
  an advisory default policy, persisted in the state store's tenants
  table so a rebuilt controller reloads the roster durably;
* :class:`AdmissionController` — weighted fair-share queuing over
  per-tenant submission queues.  Admission is start-time weighted fair
  queuing: each tenant carries a virtual time that advances by
  ``1 / effective_weight`` per admission, and the next admitted tenant
  is always the smallest ``(virtual time, tenant id)`` among tenants
  with queued work and free quota — deterministic tie-breaking, so a
  seeded run replays bit-for-bit.  Quota holds admissions back
  (released on workload completion); a full pending queue rejects the
  submission outright with ``tenant.throttled`` telemetry
  (backpressure, not silent loss);
* :class:`MultiTenantController` — the façade over
  :class:`~repro.core.controller.FleetController`.  Submissions queue;
  a coalesced zero-delay engine event (the DAG coordinator's batching
  machinery from ``_queue_release``) drains admission once per tick
  and places the whole admitted batch through **one**
  ``initial_placements`` call — one region-scoring pass per round, one
  :class:`~repro.obs.provenance.DecisionRecord` carrying
  ``batch_size`` / ``tenant_id``, regardless of how many tenants'
  workloads rode the batch.

Determinism contract: with one default tenant and ``n_shards=1`` a
run through this façade is bit-identical to driving
:class:`FleetController` directly — same RNG draws, same placements,
same costs — which is what the golden-equivalence suite pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SpotVerseConfig
from repro.core.controller import FleetController
from repro.core.fleet.state import DEFAULT_TENANT, FleetStateStore
from repro.core.policy import PlacementPolicy
from repro.core.result import FleetResult
from repro.errors import ExperimentError
from repro.obs.events import EventType
from repro.sim.clock import HOUR, MINUTE
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cloud.provider import CloudProvider
    from repro.core.execution import WorkloadExecution
    from repro.core.monitor import Monitor

#: Fair-share weight floor: a zero- (or negative-) weight tenant is
#: clamped here instead of being starved outright — it still advances
#: one admission per ~1/floor admissions of a weight-1 competitor, so
#: every backlogged tenant makes progress (the starvation guard the
#: admission-fairness invariant checks).
ZERO_WEIGHT_FLOOR = 0.1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract with the control plane.

    Attributes:
        tenant_id: Stable tenant identifier.
        weight: Fair-share weight; higher gets proportionally more
            admissions under contention.  Non-positive weights are
            clamped to :data:`ZERO_WEIGHT_FLOOR` at scheduling time.
        max_in_flight: Quota on concurrently admitted (not yet done)
            workloads — one workload occupies one instance, so this is
            also the tenant's concurrent-instance cap.  0 = unlimited.
        max_pending: Bound on the tenant's submission queue; a
            submission past it is rejected with ``tenant.throttled``
            telemetry.  0 = unlimited.
        policy: Advisory default-policy label recorded in the roster
            and rollups (the controller itself runs one policy; the
            label is what a per-tenant-policy deployment would key on).
    """

    tenant_id: str
    weight: float = 1.0
    max_in_flight: int = 0
    max_pending: int = 0
    policy: str = ""

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ExperimentError("tenant_id must be non-empty")
        if self.max_in_flight < 0 or self.max_pending < 0:
            raise ExperimentError(
                f"{self.tenant_id}: max_in_flight/max_pending must be >= 0"
            )

    @property
    def effective_weight(self) -> float:
        """Scheduling weight with the zero-weight starvation guard."""
        return max(float(self.weight), ZERO_WEIGHT_FLOOR)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the tenants-table item)."""
        return {
            "tenant_id": self.tenant_id,
            "weight": self.weight,
            "max_in_flight": self.max_in_flight,
            "max_pending": self.max_pending,
            "policy": self.policy,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TenantSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        return cls(
            tenant_id=str(record["tenant_id"]),
            weight=float(record.get("weight", 1.0)),
            max_in_flight=int(record.get("max_in_flight", 0)),
            max_pending=int(record.get("max_pending", 0)),
            policy=str(record.get("policy", "")),
        )


class TenantRegistry:
    """The durable tenant roster, backed by the store's tenants table."""

    def __init__(self, store: FleetStateStore) -> None:
        self._store = store
        self._specs: Dict[str, TenantSpec] = {}
        self._order: List[str] = []

    def register(self, spec: TenantSpec, bus=None) -> TenantSpec:
        """Add (or update) *spec*; persists it and announces on *bus*."""
        if spec.tenant_id not in self._specs:
            self._order.append(spec.tenant_id)
        self._specs[spec.tenant_id] = spec
        self._store.save_tenant(spec.to_dict())
        if bus is not None:
            bus.emit(
                EventType.TENANT_REGISTERED,
                tenant_id=spec.tenant_id,
                weight=spec.weight,
                max_in_flight=spec.max_in_flight,
                max_pending=spec.max_pending,
                policy=spec.policy,
            )
        return spec

    def reload(self) -> None:
        """Rebuild the roster from the tenants table (controller resume)."""
        self._specs = {}
        self._order = []
        for item in self._store.tenant_items():
            spec = TenantSpec.from_dict(item)
            self._specs[spec.tenant_id] = spec
            self._order.append(spec.tenant_id)

    def has(self, tenant_id: str) -> bool:
        """Whether *tenant_id* is registered."""
        return tenant_id in self._specs

    def get(self, tenant_id: str) -> TenantSpec:
        """The spec for *tenant_id*.

        Raises:
            ExperimentError: For an unregistered tenant.
        """
        spec = self._specs.get(tenant_id)
        if spec is None:
            raise ExperimentError(
                f"unknown tenant {tenant_id!r}; register a TenantSpec first"
            )
        return spec

    def tenants(self) -> List[TenantSpec]:
        """Every spec, in registration order."""
        return [self._specs[tenant_id] for tenant_id in self._order]

    def __len__(self) -> int:
        return len(self._order)


@dataclass(frozen=True)
class Admission:
    """One workload clearing admission in a fair-share round.

    Attributes:
        tenant_id: Tenant the workload was admitted for.
        workload: The admitted workload definition.
        passed_over: Tenants that were eligible (queued work, free
            quota) at selection time but not chosen — what the
            admission-fairness invariant bounds.
    """

    tenant_id: str
    workload: Workload
    passed_over: Tuple[str, ...]


class AdmissionController:
    """Weighted fair-share admission over per-tenant queues.

    Pure deterministic bookkeeping: no RNG, no wall-clock, dict
    iteration always over sorted tenant ids.  The controller façade
    owns durability (queue snapshots live in the store's meta table)
    and telemetry; this class decides *who goes next*.
    """

    def __init__(self, registry: TenantRegistry) -> None:
        self.registry = registry
        self._queues: Dict[str, Deque[Workload]] = {}
        self._in_flight: Dict[str, int] = {}
        self._virtual: Dict[str, float] = {}
        self._global_virtual = 0.0
        self.admitted_counts: Dict[str, int] = {}
        self.done_counts: Dict[str, int] = {}
        self.throttled_counts: Dict[str, int] = {}

    # -- submission ----------------------------------------------------
    def enqueue(self, tenant_id: str, workload: Workload) -> bool:
        """Queue one submission; ``False`` means throttled (queue full)."""
        spec = self.registry.get(tenant_id)
        queue = self._queues.setdefault(tenant_id, deque())
        if spec.max_pending and len(queue) >= spec.max_pending:
            self.throttled_counts[tenant_id] = (
                self.throttled_counts.get(tenant_id, 0) + 1
            )
            return False
        if not queue:
            # A tenant going from idle to backlogged re-joins at the
            # current global virtual time — it competes fairly from
            # *now* instead of burning a credit backlog accrued while
            # it had nothing to run.
            self._virtual[tenant_id] = max(
                self._virtual.get(tenant_id, 0.0), self._global_virtual
            )
        queue.append(workload)
        return True

    def release(self, tenant_id: str) -> None:
        """A workload of *tenant_id* completed; frees one quota slot."""
        self._in_flight[tenant_id] = max(0, self._in_flight.get(tenant_id, 0) - 1)
        self.done_counts[tenant_id] = self.done_counts.get(tenant_id, 0) + 1

    def note_in_flight(self, tenant_id: str, count: int = 1) -> None:
        """Seed quota usage from stored state (controller resume)."""
        self._in_flight[tenant_id] = self._in_flight.get(tenant_id, 0) + count

    # -- scheduling ----------------------------------------------------
    def _eligible(self) -> List[str]:
        eligible = []
        for tenant_id in sorted(self._queues):
            if not self._queues[tenant_id]:
                continue
            spec = self.registry.get(tenant_id)
            if spec.max_in_flight and self._in_flight.get(tenant_id, 0) >= spec.max_in_flight:
                continue
            eligible.append(tenant_id)
        return eligible

    def drain(self) -> List[Admission]:
        """Admit everything quota allows, in weighted fair-share order."""
        admitted: List[Admission] = []
        while True:
            eligible = self._eligible()
            if not eligible:
                break
            chosen = min(
                eligible, key=lambda tenant_id: (self._virtual[tenant_id], tenant_id)
            )
            workload = self._queues[chosen].popleft()
            spec = self.registry.get(chosen)
            self._in_flight[chosen] = self._in_flight.get(chosen, 0) + 1
            self._virtual[chosen] += 1.0 / spec.effective_weight
            self._global_virtual = self._virtual[chosen]
            self.admitted_counts[chosen] = self.admitted_counts.get(chosen, 0) + 1
            admitted.append(
                Admission(
                    tenant_id=chosen,
                    workload=workload,
                    passed_over=tuple(t for t in eligible if t != chosen),
                )
            )
        return admitted

    # -- introspection -------------------------------------------------
    def queued_count(self, tenant_id: Optional[str] = None) -> int:
        """Pending submissions (one tenant or all)."""
        if tenant_id is not None:
            return len(self._queues.get(tenant_id, ()))
        return sum(len(queue) for queue in self._queues.values())

    def queued(self) -> List[Tuple[str, Workload]]:
        """Every queued ``(tenant, workload)``, tenant-sorted FIFO."""
        return [
            (tenant_id, workload)
            for tenant_id in sorted(self._queues)
            for workload in self._queues[tenant_id]
        ]

    def in_flight(self, tenant_id: str) -> int:
        """Currently admitted, not-yet-done workloads of *tenant_id*."""
        return self._in_flight.get(tenant_id, 0)


class MultiTenantController:
    """Fleet-of-fleets façade: per-tenant submission over one control plane.

    Args:
        provider: The simulated cloud.
        policy: Placement policy every admitted batch runs through.
        config: Control-plane configuration.
        monitor: Optional Monitor handed to the policy context.
        image_id: Optional Galaxy AMI shaping boot times.
        state_store: Durable fleet state to compose over; defaults to a
            fresh store with *n_shards* shards.  Pass a torn-down
            controller's store (plus :meth:`resume`) to recover.
        n_shards: Shard count for the default store.
        admit_interval: Coalescing window (sim seconds) for admission
            rounds triggered mid-run.  0.0 — the default — drains in a
            zero-delay event within the same tick (maximally
            responsive); fleet-scale deployments raise it so quota
            freed by many completions rides one batched Algorithm-1
            round instead of one round per completion tick.  The
            synchronous drain at :meth:`wait` entry is unaffected.
    """

    #: Meta-table sections the tenancy layer persists its recovery
    #: state in: the admission queue (one row per queued submission,
    #: keyed by a zero-padded enqueue sequence so iteration order is
    #: submission order) and the workload -> tenant assignment map.
    QUEUE_SECTION = "tenancy-queue"
    TENANT_MAP_SECTION = "tenancy-tenant-of"

    def __init__(
        self,
        provider: "CloudProvider",
        policy: PlacementPolicy,
        config: SpotVerseConfig,
        monitor: Optional["Monitor"] = None,
        image_id: Optional[str] = None,
        state_store: Optional[FleetStateStore] = None,
        n_shards: int = 1,
        admit_interval: float = 0.0,
    ) -> None:
        self._provider = provider
        self._engine = provider.engine
        self._admit_interval = max(0.0, float(admit_interval))
        store = (
            state_store
            if state_store is not None
            else FleetStateStore(provider.dynamodb, n_shards=n_shards)
        )
        self._fleet = FleetController(
            provider, policy, config, monitor=monitor,
            image_id=image_id, state_store=store,
        )
        self.registry = TenantRegistry(store)
        self.admission = AdmissionController(self.registry)
        self._bus = provider.telemetry.bus
        self._queue_meta = store.mapping(self.QUEUE_SECTION)
        self._map_meta = store.mapping(self.TENANT_MAP_SECTION)
        self._tenant_of: Dict[str, str] = {}
        self._queue_keys: Dict[str, str] = {}
        self._queue_defs: Dict[str, Workload] = {}
        self._queue_seq = 0
        self._admitted: List[Workload] = []
        self._drain_pending = False
        provider.telemetry.decisions.set_tenant_resolver(self._tenant_of.get)
        self._fleet.services["lifecycle"].add_completion_listener(self._on_complete)

    # ------------------------------------------------------------------
    # Tenant roster
    # ------------------------------------------------------------------
    def register_tenant(self, spec: TenantSpec) -> TenantSpec:
        """Add *spec* to the durable roster (announced on the bus)."""
        return self.registry.register(spec, bus=self._bus)

    def _ensure_tenant(self, tenant_id: str) -> TenantSpec:
        if not self.registry.has(tenant_id):
            if tenant_id != DEFAULT_TENANT:
                raise ExperimentError(
                    f"unknown tenant {tenant_id!r}; register a TenantSpec first"
                )
            # Single-tenant runs never register anything: the default
            # tenant materialises unlimited on first use.
            return self.register_tenant(TenantSpec(tenant_id=DEFAULT_TENANT))
        return self.registry.get(tenant_id)

    # ------------------------------------------------------------------
    # Submission (queue -> coalesced per-tick admission round)
    # ------------------------------------------------------------------
    def submit(self, tenant_id: str, workload: Workload) -> bool:
        """Queue one workload for *tenant_id*.

        Returns ``True`` when queued (admission happens at the next
        batched placement round) and ``False`` when the tenant's
        bounded pending queue rejected it — the ``tenant.throttled``
        event is the telemetry side of that backpressure.
        """
        spec = self._ensure_tenant(tenant_id)
        if not self.admission.enqueue(tenant_id, workload):
            self._bus.emit(
                EventType.TENANT_THROTTLED,
                workload_id=workload.workload_id,
                tenant_id=tenant_id,
                queued=self.admission.queued_count(tenant_id),
                limit=spec.max_pending,
            )
            return False
        key = f"{self._queue_seq:012d}"
        self._queue_seq += 1
        self._queue_meta[key] = {
            "tenant_id": tenant_id,
            "workload_id": workload.workload_id,
        }
        self._queue_keys[workload.workload_id] = key
        self._queue_defs[workload.workload_id] = workload
        self._queue_drain()
        return True

    def _queue_drain(self) -> None:
        """Coalesce admission into one round per ``admit_interval``."""
        if self._drain_pending:
            return
        self._drain_pending = True
        self._engine.call_in(self._admit_interval, self._drain_event, label="tenancy:admit")

    def _drain_event(self) -> None:
        self._drain_pending = False
        self._admit_batch()

    def _admit_batch(self) -> None:
        """One placement round: drain admission, place the batch at once."""
        admissions = self.admission.drain()
        if not admissions:
            return
        batch: List[Workload] = []
        for admission in admissions:
            workload = admission.workload
            workload_id = workload.workload_id
            spec = self.registry.get(admission.tenant_id)
            self._tenant_of[workload_id] = admission.tenant_id
            self._fleet.state_store.assign_tenant(workload_id, admission.tenant_id)
            self._map_meta[workload_id] = admission.tenant_id
            key = self._queue_keys.pop(workload_id, None)
            if key is not None:
                del self._queue_meta[key]
            self._queue_defs.pop(workload_id, None)
            self._bus.emit(
                EventType.TENANT_ADMITTED,
                workload_id=workload_id,
                tenant_id=admission.tenant_id,
                in_flight=self.admission.in_flight(admission.tenant_id),
                quota=spec.max_in_flight,
                policy=spec.policy,
                passed_over=list(admission.passed_over),
            )
            batch.append(workload)
        self._admitted.extend(batch)
        # One FleetController.submit == one register + ONE
        # ``initial_placements`` over the whole batch + one acquire per
        # placement: the batched-Algorithm-1 contract.  The decision
        # log's tenant resolver annotates the resulting DecisionRecord
        # with ``tenant_id`` / ``batch_size``.
        self._fleet.submit(batch)

    def _on_complete(self, execution: "WorkloadExecution") -> None:
        workload_id = execution.workload.workload_id
        tenant_id = self._tenant_of.get(workload_id)
        if tenant_id is None:
            return
        self.admission.release(tenant_id)
        if self.admission.queued_count():
            # Freed quota may unblock queued submissions; they ride the
            # next coalesced round in this same tick.
            self._queue_drain()

    # ------------------------------------------------------------------
    # Run / wait
    # ------------------------------------------------------------------
    def wait(
        self,
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Drive the engine until every submission finishes (or deadline).

        The first admission round runs synchronously before the engine
        is driven — the same call ordering as
        ``FleetController.run`` — which is what keeps single-tenant
        runs bit-identical to the plain controller.
        """
        self._admit_batch()
        deadline = self._engine.now + max_hours * HOUR
        lifecycle = self._fleet.services["lifecycle"]
        while (
            self.admission.queued_count() or not lifecycle.all_done(self._admitted)
        ) and self._engine.now < deadline:
            self._engine.run_until(min(self._engine.now + poll_interval, deadline))
        return lifecycle.build_result(self._admitted)

    # ------------------------------------------------------------------
    # Teardown / resume (crash recovery over the durable store)
    # ------------------------------------------------------------------
    def teardown(self) -> None:
        """Discard in-process state; queues and roster stay durable."""
        self._provider.telemetry.decisions.set_tenant_resolver(None)
        self._fleet.teardown()

    def restore(self, definitions: Sequence[Workload]) -> None:
        """Rebuild roster, quotas, executions, and queues from the store.

        Args:
            definitions: Workload definitions covering every stored
                *and* still-queued workload (state is durable;
                definitions are code the client re-supplies — the same
                contract as ``FleetController.restore``).
        """
        defs = {workload.workload_id: workload for workload in definitions}
        self.registry.reload()
        for workload_id in sorted(self._map_meta):
            tenant_id = self._map_meta[workload_id]
            self._tenant_of[workload_id] = tenant_id
            self._fleet.state_store.assign_tenant(workload_id, tenant_id)
        stored = self._fleet.state_store.workload_items()
        missing = [item["workload_id"] for item in stored if item["workload_id"] not in defs]
        if missing:
            raise ExperimentError(
                f"restore needs definitions for stored workloads: {sorted(missing)}"
            )
        self._fleet.restore([defs[item["workload_id"]] for item in stored])
        for item in stored:
            workload_id = item["workload_id"]
            self._admitted.append(defs[workload_id])
            tenant_id = self._tenant_of.get(workload_id, DEFAULT_TENANT)
            if item["state"] == "done":
                self.admission.done_counts[tenant_id] = (
                    self.admission.done_counts.get(tenant_id, 0) + 1
                )
            else:
                self.admission.note_in_flight(tenant_id)
        # Re-queue submissions that never cleared admission, in their
        # original enqueue order (the zero-padded meta keys sort by
        # submission sequence).
        for key in sorted(self._queue_meta):
            row = self._queue_meta[key]
            workload = defs.get(row["workload_id"])
            if workload is None:
                raise ExperimentError(
                    f"restore needs a definition for queued workload "
                    f"{row['workload_id']!r}"
                )
            self.admission.enqueue(row["tenant_id"], workload)
            self._queue_keys[workload.workload_id] = key
            self._queue_defs[workload.workload_id] = workload
            self._queue_seq = max(self._queue_seq, int(key) + 1)
        if self.admission.queued_count():
            self._queue_drain()

    def resume(
        self,
        definitions: Sequence[Workload],
        max_hours: float = 120.0,
        poll_interval: float = 5 * MINUTE,
    ) -> FleetResult:
        """Rebuild from the store and run the fleet to completion."""
        self.restore(definitions)
        return self.wait(max_hours=max_hours, poll_interval=poll_interval)

    # ------------------------------------------------------------------
    # Introspection (CLI roster / per-tenant scorecard, tests)
    # ------------------------------------------------------------------
    @property
    def state_store(self) -> FleetStateStore:
        """The durable store the control plane composes over."""
        return self._fleet.state_store

    @property
    def fleet(self) -> FleetController:
        """The wrapped single-plane controller."""
        return self._fleet

    def tenant_of(self, workload_id: str) -> Optional[str]:
        """Tenant a workload was admitted for (None when unknown)."""
        return self._tenant_of.get(workload_id)

    def usage(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant scorecard rows, in registration order."""
        rows: Dict[str, Dict[str, Any]] = {}
        for spec in self.registry.tenants():
            tenant_id = spec.tenant_id
            rows[tenant_id] = {
                "weight": spec.weight,
                "quota": spec.max_in_flight,
                "policy": spec.policy,
                "in_flight": self.admission.in_flight(tenant_id),
                "queued": self.admission.queued_count(tenant_id),
                "admitted": self.admission.admitted_counts.get(tenant_id, 0),
                "done": self.admission.done_counts.get(tenant_id, 0),
                "throttled": self.admission.throttled_counts.get(tenant_id, 0),
            }
        return rows


__all__ = [
    "Admission",
    "AdmissionController",
    "DEFAULT_TENANT",
    "MultiTenantController",
    "TenantRegistry",
    "TenantSpec",
    "ZERO_WEIGHT_FLOOR",
]
