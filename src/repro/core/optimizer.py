"""The Optimizer: Algorithm 1 of the paper.

Scores every region by Spot Placement Score + Stability Score, keeps
those at or above the threshold ``T``, sorts survivors by spot price
ascending, and takes the top ``R``:

* **Initialization** — workloads are assigned to the top-R regions in
  round-robin order (unless initial distribution is disabled, in which
  case everything starts in the configured start region — the paper's
  Section 5.2.1 fair-comparison mode).
* **On interruption** — the interrupted region is removed, the same
  scoring/sorting runs, and the workload migrates to a *random* region
  among the top R.
* **On-demand fallback** — when no region qualifies, the cheapest
  on-demand region is used (Section 5.2.4's reliability escape hatch).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import SpotVerseConfig
from repro.core.monitor import Monitor
from repro.core.policy import Placement, PlacementPolicy, PolicyContext, PurchasingOption
from repro.core.scoring import RegionMetrics, cheapest_first
from repro.errors import NoFeasibleRegionError
from repro.obs.provenance import (
    FALLBACK_BELOW_THRESHOLD,
    DecisionLog,
    RegionEvaluation,
)
from repro.workloads.base import Workload


class SpotVerseOptimizer(PlacementPolicy):
    """Algorithm 1 as a :class:`PlacementPolicy`.

    Args:
        monitor: Source of region metrics (the Monitor's DynamoDB view).
        config: Threshold ``T``, region budget ``R``, and mode flags.
    """

    name = "spotverse"

    def __init__(self, monitor: Monitor, config: SpotVerseConfig) -> None:
        self._monitor = monitor
        self._config = config

    # ------------------------------------------------------------------
    # Scoring machinery
    # ------------------------------------------------------------------
    def _score_regions(self, ctx: PolicyContext) -> List[RegionMetrics]:
        """ScoreRegions(I): metrics for every candidate region."""
        metrics = self._monitor.snapshot(self._config.instance_type)
        preferred = self._config.preferred_regions
        if preferred is not None:
            allowed = set(preferred)
            metrics = [metric for metric in metrics if metric.region in allowed]
        return metrics

    def effective_score(self, metrics: RegionMetrics) -> float:
        """The combined score under the configured metric availability.

        With both metrics enabled this is Algorithm 1's placement +
        stability sum.  Providers lacking a metric (Section 7: Azure
        has no placement score, GCP has neither) drop the missing
        component; with neither, every region scores 0 and only a
        threshold <= 0 admits spot placement (price-only mode).
        """
        score = 0.0
        if self._config.use_placement_score:
            score += metrics.placement_score
        if self._config.use_stability_score:
            score += metrics.stability_score
        return score

    def top_regions(
        self, ctx: PolicyContext, exclude_region: Optional[str] = None
    ) -> List[RegionMetrics]:
        """The top-R qualifying regions, cheapest first.

        Empty when no region clears the threshold — the on-demand
        branch of Algorithm 1.
        """
        metrics = self._score_regions(ctx)
        if exclude_region is not None:
            metrics = [metric for metric in metrics if metric.region != exclude_region]
        survivors = [
            metric
            for metric in metrics
            if self.effective_score(metric) >= self._config.score_threshold
        ]
        return cheapest_first(survivors)[: self._config.max_regions]

    def _cheapest_on_demand(self, ctx: PolicyContext) -> Placement:
        region, _ = ctx.provider.price_book.cheapest_od_region(self._config.instance_type)
        preferred = self._config.preferred_regions
        if preferred is not None and region not in preferred:
            # Restrict the fallback to the user's allowed regions.
            candidates = [
                (ctx.provider.price_book.od_price(name, self._config.instance_type), name)
                for name in preferred
            ]
            region = min(candidates)[1]
        return Placement(
            region=region,
            option=PurchasingOption.ON_DEMAND,
            reason=FALLBACK_BELOW_THRESHOLD,
        )

    # ------------------------------------------------------------------
    # Decision provenance
    # ------------------------------------------------------------------
    def _decision_log(self, ctx: PolicyContext) -> Optional[DecisionLog]:
        """The provider's decision audit trail, when telemetry rides along."""
        telemetry = getattr(ctx.provider, "telemetry", None)
        return getattr(telemetry, "decisions", None)

    def _evaluate(self, metrics: Sequence[RegionMetrics]) -> List[RegionEvaluation]:
        """Threshold verdict per region seen, in snapshot order."""
        threshold = self._config.score_threshold
        evaluations = []
        for metric in metrics:
            score = self.effective_score(metric)
            evaluations.append(
                RegionEvaluation(
                    region=metric.region,
                    spot_price=metric.spot_price,
                    od_price=metric.od_price,
                    placement_score=metric.placement_score,
                    stability_score=metric.stability_score,
                    score=score,
                    threshold=threshold,
                    passed=score >= threshold,
                    margin=score - threshold,
                    collected_at=metric.collected_at,
                )
            )
        return evaluations

    # ------------------------------------------------------------------
    # PlacementPolicy interface
    # ------------------------------------------------------------------
    def initial_placements(
        self, workloads: Sequence[Workload], ctx: PolicyContext
    ) -> List[Placement]:
        """Algorithm 1 initialization: round-robin over the top R.

        Each scoring round is recorded as a ``DecisionRecord`` on the
        provider's telemetry bundle (the no-distribution branch skips
        recording — it never runs Algorithm 1).
        """
        if not self._config.initial_distribution:
            region = self._config.start_region
            if region is None:
                region, _ = ctx.provider.cheapest_mean_spot_region(
                    self._config.instance_type
                )
            return [Placement(region=region) for _ in workloads]
        metrics = self._score_regions(ctx)
        evaluations = self._evaluate(metrics)
        survivors = [
            metric for metric, verdict in zip(metrics, evaluations) if verdict.passed
        ]
        top = cheapest_first(survivors)[: self._config.max_regions]
        log = self._decision_log(ctx)
        workload_ids = [workload.workload_id for workload in workloads]
        if not top:
            if not self._config.use_on_demand_fallback:
                raise NoFeasibleRegionError(
                    f"no region meets threshold {self._config.score_threshold} for "
                    f"{self._config.instance_type!r} and on-demand fallback is disabled"
                )
            fallback = self._cheapest_on_demand(ctx)
            if log is not None:
                log.record(
                    kind="initial",
                    workload_ids=workload_ids,
                    threshold=self._config.score_threshold,
                    max_regions=self._config.max_regions,
                    evaluations=evaluations,
                    candidates=(),
                    chosen_region=fallback.region,
                    chosen_option=PurchasingOption.ON_DEMAND.value,
                    fallback_reason=FALLBACK_BELOW_THRESHOLD,
                )
            return [fallback for _ in workloads]
        if log is not None:
            log.record(
                kind="initial",
                workload_ids=workload_ids,
                threshold=self._config.score_threshold,
                max_regions=self._config.max_regions,
                evaluations=evaluations,
                candidates=[metric.region for metric in top],
                chosen_region="",  # round-robin: the whole candidate set is used
            )
        return [
            Placement(region=top[index % len(top)].region)
            for index in range(len(workloads))
        ]

    def migration_placement(
        self, workload: Workload, interrupted_region: str, ctx: PolicyContext
    ) -> Placement:
        """Algorithm 1 on-interruption: random pick among the top R.

        The decision record keeps the interrupted region's evaluation
        (it was observed) but bars it from the candidate set.
        """
        metrics = self._score_regions(ctx)
        evaluations = self._evaluate(metrics)
        eligible = [
            metric
            for metric, verdict in zip(metrics, evaluations)
            if verdict.passed and metric.region != interrupted_region
        ]
        top = cheapest_first(eligible)[: self._config.max_regions]
        log = self._decision_log(ctx)
        if not top:
            if not self._config.use_on_demand_fallback:
                raise NoFeasibleRegionError(
                    f"no migration target meets threshold "
                    f"{self._config.score_threshold} for {workload.workload_id!r}"
                )
            fallback = self._cheapest_on_demand(ctx)
            if log is not None:
                log.record(
                    kind="migration",
                    workload_ids=[workload.workload_id],
                    threshold=self._config.score_threshold,
                    max_regions=self._config.max_regions,
                    evaluations=evaluations,
                    candidates=(),
                    chosen_region=fallback.region,
                    chosen_option=PurchasingOption.ON_DEMAND.value,
                    excluded_region=interrupted_region,
                    fallback_reason=FALLBACK_BELOW_THRESHOLD,
                )
            return fallback
        draw = int(ctx.rng.integers(len(top)))
        choice = top[draw]
        if log is not None:
            log.record(
                kind="migration",
                workload_ids=[workload.workload_id],
                threshold=self._config.score_threshold,
                max_regions=self._config.max_regions,
                evaluations=evaluations,
                candidates=[metric.region for metric in top],
                chosen_region=choice.region,
                excluded_region=interrupted_region,
                draw_index=draw,
            )
        return Placement(region=choice.region)
